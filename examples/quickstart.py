#!/usr/bin/env python
"""Quickstart: symbolic simulation of a tiny testbench.

Demonstrates the core loop of the paper in ~30 lines of Verilog:

* ``$random`` injects symbolic variables (covering all values at once),
* both branches of data-dependent control flow are simulated,
* ``$assert`` finds the one assignment out of 2^10 that breaks the
  property, and the reported error trace replays concretely.

Run:  python examples/quickstart.py
"""

import repro

SOURCE = r"""
module tb;
  reg [3:0] a, b;
  reg [4:0] sum;
  reg [3:0] prod;
  initial begin
    a = $random;                 // 4 symbolic bits
    b = $random;                 // 4 more
    sum = a + b;
    if (a < b) prod = a;
    else       prod = b;
    // prod is min(a,b); the property below has exactly one hole:
    // a = 15, b = 15 makes sum 30 with prod 15.
    $assert(!(sum == 30 && prod == 15));
    #1 $finish;
  end
endmodule
"""


def main() -> None:
    print("=== compiling and simulating symbolically ===")
    sim = repro.open_sim(SOURCE)
    result = sim.run()

    print(f"simulation ended at t={result.time}; "
          f"{len(result.violations)} violation(s)")
    print(f"stats: {result.stats.summary()}")

    for violation in result.violations:
        print("\n=== violation ===")
        print(violation)

        print("\n=== concrete resimulation ===")
        concrete = sim.resimulate(violation)
        print(f"replayed values: a={concrete.value('a').to_int()} "
              f"b={concrete.value('b').to_int()} "
              f"sum={concrete.value('sum').to_int()}")
        print(f"violation reproduced: {bool(concrete.violations)}")

    # The symbolic store is inspectable: ask for the final expression.
    print("\n=== final symbolic value of sum, bit 4 (the carry) ===")
    carry = sim.value("sum").bits[4][0]
    print(sim.mgr.to_expr(carry)[:200], "...")


if __name__ == "__main__":
    main()
