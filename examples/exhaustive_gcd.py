#!/usr/bin/env python
"""Exhaustive verification of a GCD unit in one symbolic run.

The GCD design (paper Table 1) computes gcd(a, b) with a
data-dependent while loop and a req/ack handshake.  The testbench
checks the hardware against a zero-delay reference model.  Driving the
operands symbolically verifies *all* 2^(2W) operand pairs in a single
simulation — the state-space coverage argument from the paper's
introduction — and demonstrates the effect of event accumulation on a
design whose control flow splits heavily.

Run:  python examples/exhaustive_gcd.py
"""

import time

import repro
from repro import AccumulationMode, SimOptions
from repro.designs import load


def run_mode(mode: AccumulationMode, width: int = 4):
    source, top, defines = load("gcd", rounds=1, width=width)
    sim = repro.open_sim(
        source, top=top, defines=defines,
        options=SimOptions(accumulation=mode))
    started = time.perf_counter()
    result = sim.run(until=5000)
    elapsed = time.perf_counter() - started
    return result, elapsed


def main() -> None:
    width = 4
    print(f"verifying gcd_unit for ALL {2 ** (2 * width)} operand pairs "
          f"({width}-bit operands) in one run\n")
    for mode in AccumulationMode:
        result, elapsed = run_mode(mode, width)
        verdict = "MISMATCH FOUND" if result.violations else "all pairs OK"
        print(f"accumulation={mode.value:18s} {verdict}  "
              f"cpu={elapsed:7.2f}s  "
              f"events={result.stats.events_processed:6d}  "
              f"merged={result.stats.events_merged}")
    print("\nNote the event-count blow-up without accumulation: the while")
    print("loop splits execution paths every iteration, and only event")
    print("accumulation (Section 4 of the paper) re-merges them.")


if __name__ == "__main__":
    main()
