#!/usr/bin/env python
"""The paper's headline experiment (Section 7): finding a planted bug.

An 8051-style micro-controller has a carry-flag bug that only shows
when a *specific* instruction sequence (EI, SETB C, ADDC) coincides
with an interrupt during the ADDC operand fetch — roughly a 2^-20
window per cycle under random stimulus.

This script:

1. runs conventional random simulation with several seeds (fails to
   find the bug, like the paper's 24-hour random run),
2. runs one symbolic simulation with 12 fresh symbolic variables per
   clock cycle (8 code lines + 4 interrupt lines, the paper's ratio),
   which covers *every* stimulus sequence at once and hits the bug
   after a handful of cycles,
3. extracts the error trace and replays it concretely.

Run:  python examples/bug_hunt_mcu.py
"""

import time

import repro
from repro import SimOptions
from repro.designs import load


def random_baseline(seeds=(1, 2, 3), until=500):
    print(f"--- conventional random simulation ({len(seeds)} seeds, "
          f"{until} time units each) ---")
    # a *longer* testbench budget than the symbolic run gets
    source, top, defines = load("mcu8", runtime=until - 20)
    for seed in seeds:
        sim = repro.open_sim(
            source, top=top, defines=defines,
            options=SimOptions(concrete_random=seed))
        started = time.perf_counter()
        result = sim.run(until=until)
        elapsed = time.perf_counter() - started
        status = "BUG FOUND" if result.violations else "bug not found"
        print(f"  seed {seed}: {status} after {result.time} time units "
              f"({elapsed:.2f}s)")


def symbolic_hunt(source, top, defines, until=200):
    print("--- symbolic simulation (12 fresh variables per cycle) ---")
    sim = repro.open_sim(source, top=top,
                                              defines=defines)
    started = time.perf_counter()
    result = sim.run(until=until)
    elapsed = time.perf_counter() - started

    assert result.violations, "expected the planted bug to be found"
    violation = result.violations[0]
    cycles = (violation.time - 12) // 10 + 1
    print(f"  BUG FOUND at t={violation.time} "
          f"(~{cycles} cycles after reset) in {elapsed:.2f}s")
    print(f"  symbolic variables introduced: "
          f"{result.stats.symbols_injected}")
    print(f"  events processed: {result.stats.events_processed}, "
          f"merged: {result.stats.events_merged}")
    print("\n  error trace (the instruction/interrupt sequence):")
    print(violation.trace.describe())
    return sim, violation


def replay(sim, violation):
    print("\n--- concrete resimulation of the error trace ---")
    concrete = sim.resimulate(violation, until=200)
    print(f"  violation reproduced at t={concrete.violations[0].time}: "
          f"{bool(concrete.violations)}")
    print(f"  final ACC = {concrete.kernel.state.value('dut.acc').to_verilog_bits()}")


def main() -> None:
    random_baseline()
    print()
    source, top, defines = load("mcu8", runtime=100)
    sim, violation = symbolic_hunt(source, top, defines)
    replay(sim, violation)


if __name__ == "__main__":
    main()
