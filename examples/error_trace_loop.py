#!/usr/bin/env python
"""Error traces through data-dependent loops (paper Fig. 10).

The trickiest part of reporting an error trace from symbolic RTL
simulation: a ``$random`` inside a loop whose trip count depends on an
*earlier* symbolic value executes a different number of times on every
path, and individual executions can be skipped mid-loop.  The paper's
answer (Section 5) is a per-call-site list of (variable, control)
pairs, filtered by evaluating the controls under the chosen witness.

This script reproduces the paper's exact example, prints several
distinct error traces (including ones where a middle invocation is
skipped), and replays each concretely.

Run:  python examples/error_trace_loop.py
"""

import itertools

import repro
from repro.sim.trace import ErrorTrace, TraceEntry, _concretize

SOURCE = r"""
module tb;
  reg [1:0] a;
  reg [2:0] b;
  reg [4:0] c;
  integer i;
  initial begin
    a = $random;                     // 2-bit loop bound
    c = 0;
    for (i = 0; i <= a; i = i + 1) begin
      if (a != i + 1) begin          // sometimes skipped mid-loop!
        b = $random;
        c = c + b;
      end
    end
    $assert(c < 20);
  end
endmodule
"""


def traces_for(sim, violation, limit=4):
    """Enumerate several distinct witnesses of one violation."""
    mgr = sim.mgr
    where = {c.index: c.where for c in sim.program.callsites}
    support = sorted(mgr.support(violation.condition))
    for cube in itertools.islice(
        mgr.all_sat(violation.condition, levels=support), limit
    ):
        entries = []
        for inv in sim.kernel.random_log:
            executed = mgr.eval(inv.control, cube)
            value = _concretize(mgr, inv.vector, cube) if executed else None
            entries.append(TraceEntry(
                callsite_index=inv.callsite_index,
                where=where.get(inv.callsite_index, "?"),
                seq=inv.seq, time=inv.time, executed=executed, value=value))
        yield ErrorTrace(witness=dict(cube), entries=entries)


def main() -> None:
    sim = repro.open_sim(SOURCE)
    result = sim.run()
    violation = result.violations[0]
    print(f"assertion $assert(c < 20) violated at t={violation.time}")
    print(f"number of violating assignments: "
          f"{sim.mgr.sat_count(violation.condition)}\n")

    for index, trace in enumerate(traces_for(sim, violation)):
        print(f"=== error trace #{index} ===")
        print(trace.describe())
        concrete = sim.resimulate(trace)
        a = concrete.value("a").to_int()
        c = concrete.value("c").to_int()
        skipped = sum(1 for e in trace.entries if not e.executed)
        print(f"  resimulated: a={a}, final c={c} (>= 20), "
              f"{skipped} invocation(s) skipped on this path")
        print()


if __name__ == "__main__":
    main()
