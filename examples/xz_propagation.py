#!/usr/bin/env python
"""Four-valued simulation: X/Z propagation and $randomxz.

The paper's simulator performs "complete four-valued (0,1,X,Z)
symbolic simulation".  This example shows the data layer at work:

* uninitialized registers read X, undriven wires read Z,
* a tri-state bus resolves multiple drivers (Z yields, conflicts X),
* ``$randomxz`` injects a symbolic variable ranging over all *four*
  values, and the simulator finds the assignment where it matters.

Run:  python examples/xz_propagation.py
"""

import repro

SOURCE = r"""
module tb;
  reg drive_a, drive_b;
  reg value_a, value_b;
  wire bus;
  reg [3:0] uninit;
  reg [1:0] mystery;

  assign bus = drive_a ? value_a : 1'bz;
  assign bus = drive_b ? value_b : 1'bz;

  initial begin
    // X/Z basics
    $display("uninitialized reg: %b", uninit);
    drive_a = 0; drive_b = 0;        // both drivers release the bus
    #1 $display("undriven bus:      %b", bus);

    drive_a = 1; value_a = 1;
    #1 $display("single driver:     %b", bus);

    drive_b = 1; value_b = 0;
    #1 $display("conflict:          %b", bus);

    // X poisons arithmetic (IEEE-1364 pessimism)
    $display("x + 1          =   %b", uninit + 4'd1);

    // $randomxz: symbolic over {0,1,x,z}
    mystery = $randomxz;
    if (mystery === 2'b1z) $error("found the 1z assignment");
    #1 $finish;
  end
endmodule
"""


def main() -> None:
    sim = repro.open_sim(SOURCE)
    result = sim.run()
    for line in result.output:
        print(line)
    violation = result.violations[0]
    print(f"\n$error hit at t={violation.time}: {violation.message}")
    print(violation.trace.describe())
    concrete = sim.resimulate(violation)
    print(f"resimulated mystery = "
          f"{concrete.value('mystery').to_verilog_bits()} "
          f"(violation reproduced: {bool(concrete.violations)})")


if __name__ == "__main__":
    main()
