#!/usr/bin/env python
"""Verifying a FIFO with symbolic data and post-simulation analysis.

A synchronous FIFO design is pushed symbolic payloads; the testbench
pops them back and a checker compares against a reference queue.  The
example then uses :mod:`repro.analysis` to interrogate the symbolic
final state: which status-flag combinations were reachable, and under
what stimulus.

Run:  python examples/fifo_verification.py
"""

import repro
from repro import analysis

SOURCE = r"""
module fifo(clk, rst, push, pop, din, dout, full, empty);
  parameter W = 4;
  parameter DEPTH = 4;
  input clk, rst, push, pop;
  input  [W-1:0] din;
  output [W-1:0] dout;
  output full, empty;

  reg [W-1:0] store [0:DEPTH-1];
  reg [2:0] count;
  reg [1:0] rp, wp;

  assign full = (count == DEPTH);
  assign empty = (count == 0);
  assign dout = store[rp];

  always @(posedge clk) begin
    if (rst) begin
      count <= 0; rp <= 0; wp <= 0;
    end
    else begin
      if (push && !full) begin
        store[wp] <= din;
        wp <= wp + 1;
        if (!(pop && !empty)) count <= count + 1;
      end
      if (pop && !empty) begin
        rp <= rp + 1;
        if (!(push && !full)) count <= count - 1;
      end
    end
  end
endmodule

module tb;
  reg clk, rst, push, pop;
  reg [3:0] din;
  wire [3:0] dout;
  wire full, empty;
  reg [3:0] expect0, expect1;
  reg goal;

  fifo dut(.clk(clk), .rst(rst), .push(push), .pop(pop),
           .din(din), .dout(dout), .full(full), .empty(empty));

  always #5 clk = ~clk;

  task cycle;
    begin
      @(posedge clk);
      #1;
    end
  endtask

  initial begin
    clk = 0; rst = 1; push = 0; pop = 0; din = 0; goal = 0;
    $assert(goal == 0);
    cycle;
    rst = 0;

    // push two symbolic payloads
    expect0 = $random;
    expect1 = $random;
    push = 1; din = expect0; cycle;
    din = expect1; cycle;
    push = 0;

    // pop the first back and check order; leave the second in place
    if (dout !== expect0) goal = 1;
    pop = 1; cycle;
    pop = 0;
    if (dout !== expect1) goal = 1;
    if (empty !== 1'b0) goal = 1;   // one element remains
    cycle;
    $finish;
  end
endmodule
"""


def main() -> None:
    print("symbolically verifying FIFO order for all 256 payload pairs...")
    sim = repro.open_sim(SOURCE)
    result = sim.run(until=500)
    verdict = "FAILED" if result.violations else "passed"
    print(f"order/flag checks: {verdict} "
          f"({result.stats.symbols_injected} symbolic bits, "
          f"{result.stats.events_processed} events)\n")

    print("post-simulation analysis of the DUT state:")
    for net in ("dut.count", "empty", "full"):
        values = analysis.reachable_values(sim, net)
        print(f"  reachable {net}: {sorted(values)}")

    histogram = analysis.value_histogram(sim, "dout")
    print(f"  dout takes {len(histogram)} distinct values; counts over "
          f"2^8 stimuli sum to {sum(histogram.values())}")

    witness = analysis.witness_for(sim, "dout", 9)
    if witness is not None:
        concrete = sim.value("dout").substitute(witness)
        print(f"  example stimulus driving dout to 9: bits {witness} "
              f"-> dout={concrete.to_int()}")


if __name__ == "__main__":
    main()
