"""Mutation-campaign benchmark: the checker-scoring trajectory.

One real campaign over the planted-bug corpus's fast member: the
fixed alu4 as clean baseline, opswap/cmpswap/stuck1 mutants of the
ALU datapath, and the buggy edition as an explicit variant.  The
symbolic checker covers all 2^10 stimulus patterns per cycle, so a
datapath mutant can only survive by being semantically equivalent —
the measured mutation score is a *correctness* floor (gate: the score
must not fall below ``SCORE_FLOOR``), while ``mutants_per_second``
tracks campaign throughput for the perf gate.

Appends to ``BENCH_mutate.json``; ``symsim bench compare`` judges the
cells (``*_ratio``/``*_rate``/``*_per_second`` must not fall,
``wall_seconds`` must not blow up).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

import pytest

from repro.designs import load
from repro.mutate import CampaignConfig, Variant, run_campaign

from benchmarks.conftest import report, report_json

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TRAJECTORY = os.path.join(_REPO_ROOT, "BENCH_mutate.json")

#: The campaign's mutation score may never fall below this: every
#: non-equivalent datapath mutant of the checked ALU must be caught.
SCORE_FLOOR = 0.9

OPERATORS = ["opswap", "cmpswap", "stuck1"]
UNTIL = 80
WORKERS = 2

_RESULTS: dict = {}


def _campaign_config() -> CampaignConfig:
    source, top, defines = load("alu4", runtime=60, fixed=True)
    bug_source, bug_top, bug_defines = load("alu4", runtime=60)
    return CampaignConfig(
        source=source, top=top, defines=defines,
        operators=OPERATORS, until=UNTIL, verify_witnesses=True,
        variants=[Variant(name="planted-alu4", source=bug_source,
                          top=bug_top, defines=bug_defines)])


def test_mutation_campaign(benchmark, tmp_path):
    def run():
        started = time.perf_counter()
        campaign = run_campaign(_campaign_config(), workers=WORKERS,
                                out_dir=str(tmp_path / "out"))
        elapsed = time.perf_counter() - started

        assert campaign.baseline_status == "ok"
        planned = campaign.totals["planned"]
        judged = (campaign.totals["detected"]
                  + campaign.totals["undetected"])
        assert judged > 0, "campaign must judge at least one mutant"
        assert campaign.score is not None
        assert campaign.score >= SCORE_FLOOR, (
            f"mutation score {campaign.score:.3f} fell below the "
            f"{SCORE_FLOOR} floor; survivors: "
            f"{[m.id for m in campaign.survivors]}")

        # the planted bug must be detected with a verified witness
        planted = {v.id: v for v in campaign.variants}["planted-alu4"]
        assert planted.classification == "detected"
        assert planted.witness_verified is True

        detected = [m for m in campaign.mutants
                    if m.classification == "detected"]
        verified = [m for m in detected if m.witness_verified]
        _RESULTS.update({
            "wall_seconds": elapsed,
            "planned": planned,
            "score": campaign.score,
            "mutants_per_second": planned / elapsed,
            "witness_verify_rate":
                len(verified) / len(detected) if detected else 1.0,
            "by_operator": {
                op: row["detected"]
                for op, row in campaign.by_operator.items()},
        })

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_mutate_report(benchmark):
    def build_report():
        if "score" not in _RESULTS:
            pytest.skip("campaign benchmark did not run")
        lines = [
            f"Mutation campaign: alu4 (fixed) baseline, "
            f"operators {'/'.join(OPERATORS)}, until={UNTIL}, "
            f"{WORKERS} workers",
            f"  mutants planned   {_RESULTS['planned']}",
            f"  mutation score    {_RESULTS['score']:.3f} "
            f"(floor {SCORE_FLOOR})",
            f"  witness verify    {_RESULTS['witness_verify_rate']:.3f}",
            f"  wall              {_RESULTS['wall_seconds']:.2f}s "
            f"({_RESULTS['mutants_per_second']:.2f} mutants/s)",
            "  detected by operator: " + ", ".join(
                f"{op}={n}" for op, n in _RESULTS["by_operator"].items()),
        ]
        report("mutate", lines)
        report_json("mutate", dict(_RESULTS))

        entry = {
            "recorded": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "bench": "mutate",
            "mutation_score_ratio": round(_RESULTS["score"], 3),
            "witness_verify_rate":
                round(_RESULTS["witness_verify_rate"], 3),
            "mutants_per_second":
                round(_RESULTS["mutants_per_second"], 3),
            "wall_seconds": round(_RESULTS["wall_seconds"], 3),
            "gate": "score_floor",
            "floors": {"score": SCORE_FLOOR},
        }
        trajectory = []
        if os.path.exists(_TRAJECTORY):
            with open(_TRAJECTORY, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        trajectory.append(entry)
        with open(_TRAJECTORY, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    benchmark.pedantic(build_report, rounds=1, iterations=1)
