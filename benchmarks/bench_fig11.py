"""Fig. 11: effect of event accumulation on the micro-controller.

Paper (DAC 2001, Fig. 11): the 8051 is simulated for 730 time units
with symbolic variables at the data-in and interrupt lines.  Both
panels plot *cumulative* quantities against simulation time:

* left — processed events: the curves coincide through the ~300-unit
  initialization phase, then diverge; at the end the run without
  accumulation has processed ~2x the events (67798 vs 33619);
* right — CPU seconds: same shape (2620.2s vs 1086.5s), driven by BDD
  operation cost on the multiplied paths.

Our MCU8 runs a 130-unit window with a 4-cycle concrete init phase
(symbols injected every 3rd cycle thereafter); the same two series are
printed.  The divergence is *stronger* than the paper's 2x because
MCU8's symbolic opcodes split paths more aggressively relative to its
event baseline — the init-phase coincidence and the post-init
divergence are the reproduced shape.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro import (
    AccumulationMode, MetricsRegistry, Observability, SimOptions,
)
from repro.designs import load

from benchmarks.conftest import report, report_json

RUNTIME = 130
QUIET_CYCLES = 4
PERIOD = 3
INIT_END = 12 + 10 * QUIET_CYCLES  # reset + quiet cycles

#: mode -> metrics snapshot; both panels of Fig. 11 read the kernel's
#: ``sim.timeline.*`` series from here (the repro.obs data path).
#: Only the plain-data snapshot is retained — a live registry's
#: callback gauges would pin the cell's BddManager in memory.
_SNAPSHOTS: dict = {}


#: GC knobs for the FULL+GC overlay, scaled to MCU8's ~50k-node runs
GC_KNOBS = dict(gc_threshold=10_000, dyn_reorder=True,
                reorder_threshold=20_000)


def _run_mode(mode: AccumulationMode, gc: bool = False):
    source, top, defines = load("mcu8", runtime=RUNTIME, quiet=QUIET_CYCLES,
                                period=PERIOD)
    registry = MetricsRegistry()
    sim = repro.open_sim(
        source, top=top, defines=defines,
        options=SimOptions(accumulation=mode, trace_stats=True,
                           stop_on_violation=False,
                           obs=Observability(metrics=registry),
                           **(GC_KNOBS if gc else {})))
    result = sim.run(until=RUNTIME + 20)
    _SNAPSHOTS[f"{mode.value}+gc" if gc else mode.value] = \
        registry.snapshot()
    return result


def _series(key: str, name: str):
    """(x, y) samples of one kernel series for one run."""
    for metric in _SNAPSHOTS[key]["metrics"]:
        if metric["name"] == name:
            return [tuple(pair) for pair in metric["value"]]
    raise KeyError(name)


def _gauge(key: str, name: str):
    for metric in _SNAPSHOTS[key]["metrics"]:
        if metric["name"] == name:
            return metric["value"]
    raise KeyError(name)


@pytest.mark.parametrize("mode",
                         [AccumulationMode.FULL, AccumulationMode.NONE])
def test_fig11_run(benchmark, mode):
    benchmark.extra_info["accumulation"] = mode.value
    benchmark.pedantic(_run_mode, args=(mode,), rounds=1, iterations=1)


def test_fig11_gc_run(benchmark):
    benchmark.extra_info["accumulation"] = "full+gc"
    benchmark.pedantic(_run_mode, args=(AccumulationMode.FULL,),
                       kwargs={"gc": True}, rounds=1, iterations=1)


def test_fig11_report(benchmark):
    def build_report():
        full_ev = _series("full", "sim.timeline.events")
        none_ev = _series("none", "sim.timeline.events")
        full_cpu = _series("full", "sim.timeline.cpu_seconds")
        none_cpu = _series("none", "sim.timeline.cpu_seconds")

        def at_or_before(series, sim_time):
            best = series[0][1]
            for x, y in series:
                if x <= sim_time:
                    best = y
            return best

        times = sorted({x for x, _ in full_ev} | {x for x, _ in none_ev})
        lines = [
            "Fig. 11 — cumulative events / CPU seconds vs simulation time",
            f"{'t':>5s} {'events(acc)':>12s} {'events(none)':>13s} "
            f"{'cpu(acc)':>10s} {'cpu(none)':>10s}",
        ]
        for sim_time in times:
            lines.append(
                f"{sim_time:5.0f} "
                f"{at_or_before(full_ev, sim_time):12.0f} "
                f"{at_or_before(none_ev, sim_time):13.0f} "
                f"{at_or_before(full_cpu, sim_time):10.3f} "
                f"{at_or_before(none_cpu, sim_time):10.3f}"
            )
        final_full_ev, final_none_ev = full_ev[-1][1], none_ev[-1][1]
        final_full_cpu, final_none_cpu = full_cpu[-1][1], none_cpu[-1][1]
        ratio_events = final_none_ev / max(final_full_ev, 1)
        ratio_cpu = final_none_cpu / max(final_full_cpu, 1e-9)
        lines.append(
            f"final: events {final_full_ev:.0f} vs {final_none_ev:.0f} "
            f"(x{ratio_events:.1f}); cpu {final_full_cpu:.2f}s vs "
            f"{final_none_cpu:.2f}s (x{ratio_cpu:.1f})"
        )
        # --- FULL+GC overlay: live-node trajectory ------------------
        full_nodes = _series("full", "sim.timeline.bdd_nodes")
        gc_nodes = _series("full+gc", "sim.timeline.bdd_nodes")
        peak_full = max(y for _, y in full_nodes)
        peak_gc = max(y for _, y in gc_nodes)
        cpu_gc = _gauge("full+gc", "sim.cpu_seconds")
        cpu_full = _gauge("full", "sim.cpu_seconds")
        lines.append(
            f"with GC/sifting: peak live nodes {peak_full:.0f} -> "
            f"{peak_gc:.0f}, cpu {cpu_full:.2f}s -> {cpu_gc:.2f}s, "
            f"reclaimed {_gauge('full+gc', 'bdd.gc.reclaimed_nodes'):.0f}n "
            f"in {_gauge('full+gc', 'bdd.gc.runs'):.0f} collections"
        )
        report("fig11", lines)
        report_json("fig11", dict(_SNAPSHOTS))

        # --- shape assertions ---------------------------------------
        # GC reclaims and reduces the trajectory's peak on this workload
        assert _gauge("full+gc", "bdd.gc.reclaimed_nodes") > 0
        assert peak_gc < peak_full
        # events are untouched by memory management
        assert _gauge("full+gc", "sim.events_processed") == \
            _gauge("full", "sim.events_processed")
        # (1) curves coincide during the initialization phase
        init_full = at_or_before(full_ev, INIT_END)
        init_none = at_or_before(none_ev, INIT_END)
        assert abs(init_full - init_none) <= 0.1 * max(init_full, 1), \
            "event curves must coincide during the init phase"
        # (2) strong divergence afterwards (paper: 2x; ours is larger)
        assert ratio_events > 2.0
        assert final_none_cpu > final_full_cpu

    benchmark.pedantic(build_report, rounds=1, iterations=1)
