"""Fig. 11: effect of event accumulation on the micro-controller.

Paper (DAC 2001, Fig. 11): the 8051 is simulated for 730 time units
with symbolic variables at the data-in and interrupt lines.  Both
panels plot *cumulative* quantities against simulation time:

* left — processed events: the curves coincide through the ~300-unit
  initialization phase, then diverge; at the end the run without
  accumulation has processed ~2x the events (67798 vs 33619);
* right — CPU seconds: same shape (2620.2s vs 1086.5s), driven by BDD
  operation cost on the multiplied paths.

Our MCU8 runs a 130-unit window with a 4-cycle concrete init phase
(symbols injected every 3rd cycle thereafter); the same two series are
printed.  The divergence is *stronger* than the paper's 2x because
MCU8's symbolic opcodes split paths more aggressively relative to its
event baseline — the init-phase coincidence and the post-init
divergence are the reproduced shape.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro import AccumulationMode, SimOptions
from repro.designs import load

from benchmarks.conftest import report

RUNTIME = 130
QUIET_CYCLES = 4
PERIOD = 3
INIT_END = 12 + 10 * QUIET_CYCLES  # reset + quiet cycles

_SERIES: dict = {}


def _run_mode(mode: AccumulationMode):
    source, top, defines = load("mcu8", runtime=RUNTIME, quiet=QUIET_CYCLES,
                                period=PERIOD)
    sim = repro.SymbolicSimulator.from_source(
        source, top=top, defines=defines,
        options=SimOptions(accumulation=mode, trace_stats=True,
                           stop_on_violation=False))
    result = sim.run(until=RUNTIME + 20)
    _SERIES[mode] = result.stats.timeline
    return result


@pytest.mark.parametrize("mode",
                         [AccumulationMode.FULL, AccumulationMode.NONE])
def test_fig11_run(benchmark, mode):
    benchmark.extra_info["accumulation"] = mode.value
    benchmark.pedantic(_run_mode, args=(mode,), rounds=1, iterations=1)


def test_fig11_report(benchmark):
    def build_report():
        full = _SERIES[AccumulationMode.FULL]
        none = _SERIES[AccumulationMode.NONE]

        def at_or_before(series, sim_time):
            best = series[0]
            for point in series:
                if point.sim_time <= sim_time:
                    best = point
            return best

        times = sorted({p.sim_time for p in full} | {p.sim_time for p in none})
        lines = [
            "Fig. 11 — cumulative events / CPU seconds vs simulation time",
            f"{'t':>5s} {'events(acc)':>12s} {'events(none)':>13s} "
            f"{'cpu(acc)':>10s} {'cpu(none)':>10s}",
        ]
        for sim_time in times:
            pf = at_or_before(full, sim_time)
            pn = at_or_before(none, sim_time)
            lines.append(
                f"{sim_time:5d} {pf.events:12d} {pn.events:13d} "
                f"{pf.cpu_seconds:10.3f} {pn.cpu_seconds:10.3f}"
            )
        final_full, final_none = full[-1], none[-1]
        ratio_events = final_none.events / max(final_full.events, 1)
        ratio_cpu = final_none.cpu_seconds / max(final_full.cpu_seconds, 1e-9)
        lines.append(
            f"final: events {final_full.events} vs {final_none.events} "
            f"(x{ratio_events:.1f}); cpu {final_full.cpu_seconds:.2f}s vs "
            f"{final_none.cpu_seconds:.2f}s (x{ratio_cpu:.1f})"
        )
        report("fig11", lines)

        # --- shape assertions ---------------------------------------
        # (1) curves coincide during the initialization phase
        init_full = at_or_before(full, INIT_END).events
        init_none = at_or_before(none, INIT_END).events
        assert abs(init_full - init_none) <= 0.1 * max(init_full, 1), \
            "event curves must coincide during the init phase"
        # (2) strong divergence afterwards (paper: 2x; ours is larger)
        assert ratio_events > 2.0
        assert final_none.cpu_seconds > final_full.cpu_seconds

    benchmark.pedantic(build_report, rounds=1, iterations=1)
