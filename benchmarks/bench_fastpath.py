"""Fast-path micro/smoke benchmarks: concrete vs mixed vs symbolic.

The hybrid evaluation engine (docs/PERFORMANCE.md) dispatches fully
concrete operands to pure-int word-level code, applies per-bit
constant-cofactor shortcuts to mixed operands, and only builds BDDs for
genuinely symbolic bits.  This module pins that claim with numbers:

* operator-level throughput in the three regimes, with the fast path
  force-disabled as the baseline — the paper's observation that most of
  an RTL run is concrete only pays off if the concrete case is *cheap*;
* an end-to-end smoke design (all-concrete datapath) run with and
  without ``--no-fastpath``, asserting a conservative speedup floor so
  CI catches a fast-path regression before it reaches Table 1;
* a ``BENCH_fastpath.json`` trajectory entry at the repo root — the
  first recorded perf baseline; later sessions append to it.

Results must be *bit-identical* either way; the differential guarantees
live in tests/unit/test_fastpath_differential.py, the speed claims here.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

import pytest

import repro
from repro import MetricsRegistry, Observability, SimOptions
from repro.bdd import BddManager
from repro.fourval import FourVec, ops

from benchmarks.conftest import report, report_json

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TRAJECTORY = os.path.join(_REPO_ROOT, "BENCH_fastpath.json")

#: conservative CI floors — the measured speedups are far higher, but
#: these runs share a box with everything else in the lane.
MICRO_FLOOR = 3.0
SMOKE_FLOOR = 1.5

_RESULTS: dict = {}


# ---------------------------------------------------------------------
# operator-level throughput
# ---------------------------------------------------------------------

def _concrete_pair(mgr, i, width=32):
    x = FourVec.from_int(mgr, (i * 2654435761) & 0xFFFFFFFF, width)
    y = FourVec.from_int(mgr, (i * 40503 + 7) & 0xFFFFFFFF, width)
    return x, y

def _mixed_pair(mgr, i, width=32):
    x = FourVec.from_int(mgr, (i * 2654435761) & 0xFFFFFFFF, width)
    sym = FourVec.fresh_symbol(mgr, 4, f"m{i}")
    y = FourVec.from_int(mgr, i & 0xFFF, width - 4).concat(sym)
    return x, y

def _symbolic_pair(mgr, i, width=8):
    return (FourVec.fresh_symbol(mgr, width, f"a{i}"),
            FourVec.fresh_symbol(mgr, width, f"b{i}"))


def _time_regime(make_pair, rounds, fastpath):
    """Fresh manager, ``rounds`` (add, xor, and, less_than) quadruples."""
    mgr = BddManager()
    mgr.fastpath = fastpath
    pairs = [make_pair(mgr, i) for i in range(rounds)]
    started = time.perf_counter()
    for x, y in pairs:
        ops.add(x, y)
        ops.bitwise_xor(x, y)
        ops.bitwise_and(x, y)
        ops.less_than(x, y)
    elapsed = time.perf_counter() - started
    return elapsed, 4 * rounds / elapsed, mgr


def test_micro_concrete_vs_disabled(benchmark):
    """Word-level dispatch vs forced per-bit BDD on concrete operands."""
    def run():
        on, on_rate, mgr = _time_regime(_concrete_pair, 400, True)
        off, off_rate, _ = _time_regime(_concrete_pair, 400, False)
        assert mgr.fastpath_word_ops == 4 * 400, \
            "every concrete op must take the word-level path"
        _RESULTS["micro/concrete"] = (on, on_rate)
        _RESULTS["micro/concrete+nofp"] = (off, off_rate)
        _RESULTS["micro/speedup"] = off / on
        assert off / on >= MICRO_FLOOR, (
            f"concrete fast path only {off / on:.1f}x over forced-symbolic"
            f" (floor {MICRO_FLOOR}x)")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_micro_mixed(benchmark):
    """Partially concrete operands: per-bit shortcuts + narrow BDD work."""
    def run():
        on, on_rate, mgr = _time_regime(_mixed_pair, 150, True)
        off, off_rate, _ = _time_regime(_mixed_pair, 150, False)
        assert mgr.fastpath_bit_shortcuts > 0, \
            "mixed operands must trigger per-bit shortcuts"
        _RESULTS["micro/mixed"] = (on, on_rate)
        _RESULTS["micro/mixed+nofp"] = (off, off_rate)
        _RESULTS["micro/mixed_speedup"] = off / on

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_micro_symbolic(benchmark):
    """Fully symbolic operands: the fast path must not slow this down."""
    def run():
        on, on_rate, mgr = _time_regime(_symbolic_pair, 60, True)
        off, off_rate, _ = _time_regime(_symbolic_pair, 60, False)
        assert mgr.fastpath_symbolic_ops == 4 * 60
        _RESULTS["micro/symbolic"] = (on, on_rate)
        _RESULTS["micro/symbolic+nofp"] = (off, off_rate)
        # Generous bound: the known_int() probe on symbolic inputs is a
        # summary-cache lookup, so overhead should be noise-level.
        assert on < 1.5 * off, (
            f"fast-path dispatch costs {100 * (on / off - 1):.0f}% on "
            "fully symbolic operands")

    benchmark.pedantic(run, rounds=1, iterations=1)


# ---------------------------------------------------------------------
# end-to-end smoke design (the CI perf lane's gate)
# ---------------------------------------------------------------------

SMOKE_DESIGN = """
module bench_smoke;
  reg clk;
  reg [31:0] a, b, acc;
  reg [31:0] mem [0:15];

  initial begin
    clk = 0;
    a = 32'h1234_5678;
    b = 3;
    acc = 0;
  end

  always #1 clk = ~clk;

  always @(posedge clk) begin
    acc <= acc + (a ^ (b >> 2)) + (a & 32'hFF00FF00);
    mem[b[3:0]] <= acc + {16'h00FF, a[31:16]};
    a <= a + 17;
    b <= (b << 1) | b[31];
  end

  initial begin
    #3000;
    if (acc === 32'h0)
      $display("acc never moved");
    $finish;
  end
endmodule
"""


def _run_smoke(no_fastpath: bool):
    registry = MetricsRegistry()
    options = SimOptions(obs=Observability(metrics=registry),
                         no_fastpath=no_fastpath)
    sim = repro.open_sim(
        SMOKE_DESIGN, top="bench_smoke", options=options)
    started = time.perf_counter()
    result = sim.run(until=3100)
    elapsed = time.perf_counter() - started
    assert result.finished
    return elapsed, sim, registry


def test_smoke_design_speedup(benchmark):
    """All-concrete datapath: the lane's regression gate."""
    def run():
        fast, sim_fast, registry = _run_smoke(no_fastpath=False)
        slow, sim_slow, _ = _run_smoke(no_fastpath=True)
        # Bit-identical end state either way.
        for net in ("acc", "a", "b"):
            assert sim_fast.value(net).to_verilog_bits() == \
                sim_slow.value(net).to_verilog_bits(), f"{net} diverged"
        word = registry.gauge("sim.fastpath.word_ops").value
        ratio = registry.gauge("sim.fastpath.concrete_ratio").value
        assert word > 0 and ratio > 0.9, \
            f"smoke design should be ~all-concrete (ratio {ratio:.2f})"
        _RESULTS["smoke/fast"] = fast
        _RESULTS["smoke/nofp"] = slow
        _RESULTS["smoke/speedup"] = slow / fast
        _RESULTS["smoke/concrete_ratio"] = ratio
        assert slow / fast >= SMOKE_FLOOR, (
            f"end-to-end fast-path speedup {slow / fast:.2f}x below the "
            f"{SMOKE_FLOOR}x floor")

    benchmark.pedantic(run, rounds=1, iterations=1)


# ---------------------------------------------------------------------
# report + trajectory entry
# ---------------------------------------------------------------------

def test_fastpath_report(benchmark):
    def build_report():
        lines = [
            "Fast-path throughput (4-op quadruple: add/xor/and/lt)",
            f"{'regime':20s} {'fastpath on':>16s} {'forced off':>16s} "
            f"{'speedup':>9s}",
        ]
        for regime, key in (("concrete 32-bit", "concrete"),
                            ("mixed 28c+4s bit", "mixed"),
                            ("symbolic 8-bit", "symbolic")):
            on_t, on_rate = _RESULTS[f"micro/{key}"]
            off_t, off_rate = _RESULTS[f"micro/{key}+nofp"]
            lines.append(
                f"{regime:20s} {on_rate:12.0f}op/s {off_rate:12.0f}op/s "
                f"{off_t / on_t:8.1f}x")
        lines.append("")
        lines.append(
            f"smoke design (all-concrete): "
            f"{_RESULTS['smoke/nofp']:.2f}s -> {_RESULTS['smoke/fast']:.2f}s "
            f"({_RESULTS['smoke/speedup']:.1f}x, concrete ratio "
            f"{_RESULTS['smoke/concrete_ratio']:.3f}, floor {SMOKE_FLOOR}x)")
        report("fastpath", lines)
        report_json("fastpath", dict(_RESULTS))

        # --- trajectory entry (repo-root perf baseline) -------------
        entry = {
            "recorded": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "bench": "fastpath",
            "micro_concrete_speedup": round(_RESULTS["micro/speedup"], 2),
            "micro_mixed_speedup": round(_RESULTS["micro/mixed_speedup"], 2),
            "smoke_speedup": round(_RESULTS["smoke/speedup"], 2),
            "smoke_concrete_ratio": round(
                _RESULTS["smoke/concrete_ratio"], 4),
            "floors": {"micro": MICRO_FLOOR, "smoke": SMOKE_FLOOR},
        }
        trajectory = []
        if os.path.exists(_TRAJECTORY):
            with open(_TRAJECTORY, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        trajectory.append(entry)
        with open(_TRAJECTORY, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    benchmark.pedantic(build_report, rounds=1, iterations=1)
