"""Section 7 headline: the micro-controller bug hunt.

Paper (DAC 2001, Section 7): an 8051 with a known bug whose checker is
non-synthesizable testbench code.  Random simulation did not find the
bug in 24 hours; symbolic simulation hit it after 65 processor cycles
(4 minutes on a 400 MHz UltraSPARC-II), having introduced
65 x 12 = 780 symbolic variables (8 data lines + 4 interrupt lines per
rising clock edge).

Our MCU8 has the same structure: 12 fresh symbolic variables per
cycle, a planted sequence-dependent bug (carry dropped when an
interrupt lands in an ADDC operand cycle), and a single
``$assert(goal == 0)``.  The reproduced shape:

* symbolic simulation finds the bug in a bounded number of cycles,
* conventional random simulation (same testbench, concrete $random)
  finds nothing within a much larger per-seed budget.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro import SimOptions
from repro.designs import load

from benchmarks.conftest import report

RANDOM_SEEDS = (1, 2, 3, 4, 5)
RANDOM_BUDGET = 600  # time units per seed (symbolic needs < 60)

_OUTCOME: dict = {}


def _symbolic_hunt():
    source, top, defines = load("mcu8", runtime=100)
    sim = repro.open_sim(source, top=top,
                                              defines=defines)
    started = time.perf_counter()
    result = sim.run(until=200)
    elapsed = time.perf_counter() - started
    assert result.violations, "the planted bug must be found symbolically"
    violation = result.violations[0]
    _OUTCOME["symbolic"] = {
        "found": True,
        "time_units": violation.time,
        "cycles": (violation.time - 12) // 10 + 1,
        "variables": result.stats.symbols_injected,
        "events": result.stats.events_processed,
        "cpu": elapsed,
        "sim": sim,
        "violation": violation,
    }
    return result


def _random_hunt(seed: int):
    source, top, defines = load("mcu8", runtime=RANDOM_BUDGET)
    sim = repro.open_sim(
        source, top=top, defines=defines,
        options=SimOptions(concrete_random=seed))
    started = time.perf_counter()
    result = sim.run(until=RANDOM_BUDGET + 50)
    elapsed = time.perf_counter() - started
    _OUTCOME[f"random-{seed}"] = {
        "found": bool(result.violations),
        "time_units": result.time,
        "cpu": elapsed,
    }
    return result


def test_bughunt_symbolic(benchmark):
    benchmark.extra_info["mode"] = "symbolic"
    benchmark.pedantic(_symbolic_hunt, rounds=1, iterations=1)


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_bughunt_random(benchmark, seed):
    benchmark.extra_info["mode"] = f"random(seed={seed})"
    benchmark.pedantic(_random_hunt, args=(seed,), rounds=1, iterations=1)


def test_bughunt_report(benchmark):
    def build_report():
        sym = _OUTCOME["symbolic"]
        lines = [
            "Section 7 — MCU8 bug hunt (paper: 8051, 780 vars, 65 cycles)",
            f"{'mode':18s} {'bug found':>10s} {'cycles':>7s} "
            f"{'variables':>10s} {'cpu':>8s}",
            f"{'symbolic':18s} {'YES':>10s} {sym['cycles']:7d} "
            f"{sym['variables']:10d} {sym['cpu']:7.2f}s",
        ]
        for seed in RANDOM_SEEDS:
            rnd = _OUTCOME[f"random-{seed}"]
            found = "YES" if rnd["found"] else "no"
            budget_cycles = (RANDOM_BUDGET - 12) // 10
            lines.append(
                f"{'random seed ' + str(seed):18s} {found:>10s} "
                f"{budget_cycles:7d} {'-':>10s} {rnd['cpu']:7.2f}s"
            )
        lines.append(
            "shape check: symbolic covers all 2^(12n) stimulus sequences at "
            "once and hits the 2^-20-per-cycle bug window; random sampling "
            "does not."
        )
        report("bughunt", lines)

        # --- shape assertions ----------------------------------------
        assert sym["found"] and sym["cycles"] <= 10
        # 12 variables per injected cycle, like the paper's 8+4 lines
        assert sym["variables"] % 12 == 0
        for seed in RANDOM_SEEDS:
            assert not _OUTCOME[f"random-{seed}"]["found"]

        # the error trace must replay concretely (Section 5 round trip)
        concrete = sym["sim"].resimulate(sym["violation"], until=200)
        assert concrete.violations

    benchmark.pedantic(build_report, rounds=1, iterations=1)
