"""Micro-benchmarks for the BDD substrate.

Not a paper table — these pin the cost of the primitive operations the
whole simulator is built from, so performance regressions in the BDD
layer are caught before they show up as mysterious Table-1 slowdowns.
The paper's simulator used CUDD; these numbers document what the
pure-Python substitute costs.
"""

from __future__ import annotations

import pytest

from repro.bdd import BddManager
from repro.fourval import FourVec, ops


def _fresh_manager(nvars: int) -> BddManager:
    mgr = BddManager()
    for i in range(nvars):
        mgr.new_var(f"x{i}")
    return mgr


def test_bdd_ite_chain(benchmark):
    """Deep ite nesting (the control-merge workload)."""
    mgr = _fresh_manager(24)

    def build():
        f = 1
        for i in range(24):
            f = mgr.ite(mgr.var(i), f, mgr.not_(f))
        return f

    benchmark(build)


def test_bdd_adder_16bit(benchmark):
    """Symbolic 16-bit ripple adder — the arithmetic workload."""
    mgr = _fresh_manager(32)

    def build():
        a = FourVec(mgr, [(mgr.var(i), 0) for i in range(16)])
        b = FourVec(mgr, [(mgr.var(16 + i), 0) for i in range(16)])
        return ops.add(a, b)

    benchmark(build)


def test_bdd_multiplier_6bit(benchmark):
    """Symbolic 6x6 multiplier (BDD-hostile structure)."""
    mgr = _fresh_manager(12)

    def build():
        a = FourVec(mgr, [(mgr.var(i), 0) for i in range(6)])
        b = FourVec(mgr, [(mgr.var(6 + i), 0) for i in range(6)])
        return ops.multiply(a, b)

    benchmark(build)


def test_bdd_comparator_16bit(benchmark):
    mgr = _fresh_manager(32)

    def build():
        a = FourVec(mgr, [(mgr.var(i), 0) for i in range(16)])
        b = FourVec(mgr, [(mgr.var(16 + i), 0) for i in range(16)])
        return ops.less_than(a, b)

    benchmark(build)


def test_bdd_sat_count(benchmark):
    mgr = _fresh_manager(20)
    f = 1
    for i in range(0, 20, 2):
        f = mgr.and_(f, mgr.or_(mgr.var(i), mgr.var(i + 1)))

    benchmark(lambda: mgr.sat_count(f))


def test_bdd_change_condition(benchmark):
    """The per-write cost driver of the event machinery."""
    mgr = _fresh_manager(16)
    a = FourVec(mgr, [(mgr.var(i), 0) for i in range(8)])
    b = FourVec(mgr, [(mgr.var(8 + i), 0) for i in range(8)])

    benchmark(lambda: a.change_condition(b))


def test_fourval_conditional_merge(benchmark):
    """ite-merge of two 16-bit four-valued vectors under a control."""
    mgr = _fresh_manager(33)
    control = mgr.var(32)
    a = FourVec(mgr, [(mgr.var(i), 0) for i in range(16)])
    b = FourVec(mgr, [(mgr.var(16 + i), 0) for i in range(16)])

    benchmark(lambda: a.ite(control, b))
