"""Durable-queue benchmarks: what do leases, journaling and retry
bookkeeping cost when nothing fails?

The durability machinery (``repro.batch.queue`` + ``journal``) runs on
*every* batch, so its happy-path overhead is a tax on all of
``bench_batch``'s numbers.  The gate here bounds that tax: the Table-1
mix with the full durability stack armed (journal on, retries on, a
lease timeout ticking) may cost at most ``OVERHEAD_CEIL`` over the
same mix with the stack stripped to its minimum (no journal, no retry
policy).  Two micro cells record the raw component costs — journal
appends and queue lease/fail/complete cycles per second — so a
regression in either is visible even while the end-to-end ratio hides
in simulation noise.  Everything lands in ``BENCH_queue.json`` for the
``bench-gate`` CI lane.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

import pytest

from repro.batch import RetryPolicy, RunRequest, run_batch
from repro.batch.journal import BatchJournal
from repro.batch.queue import JobQueue
from repro.designs import load
from repro.sim import SimOptions

from benchmarks.conftest import report, report_json

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TRAJECTORY = os.path.join(_REPO_ROOT, "BENCH_queue.json")

#: the armed durability stack may cost at most this factor over the
#: stripped pool on the Table-1 mix (best-of-N wall clock).
OVERHEAD_CEIL = 1.05
#: timing rounds per configuration; best-of is compared so one noisy
#: round on a shared runner cannot fail the gate by itself.
ROUNDS = 2

#: the Table-1 design mix, same workload sizes as bench_table1/bench_batch
TABLE1_MIX = {
    "dram": ({"bursts": 2}, 3000),
    "risc8": ({"runtime": 180}, 400),
    "gcd": ({"rounds": 1, "width": 5}, 5000),
}

_RESULTS: dict = {}


def _mix_requests(copies: int = 2):
    requests = []
    for design, (params, until) in TABLE1_MIX.items():
        source, top, defines = load(design, **params)
        for copy in range(copies):
            requests.append(RunRequest(
                name=f"{design}-{copy}", source=source, top=top,
                defines=defines, until=until,
                options=SimOptions(
                    concrete_random=copy if copy else None),
            ))
    return requests


def _timed(requests, out_dir, **kwargs):
    started = time.perf_counter()
    batch = run_batch(requests, workers=2, out_dir=out_dir,
                      trace=False, write_metrics=False, **kwargs)
    elapsed = time.perf_counter() - started
    assert batch.ok, batch.summary()
    assert batch.retries == 0, "happy path must not retry"
    return elapsed, batch


# ---------------------------------------------------------------------
# end-to-end: durability armed vs stripped on the Table-1 mix
# ---------------------------------------------------------------------

def test_queue_overhead(benchmark, tmp_path):
    def run():
        requests = _mix_requests(copies=2)
        policy = RetryPolicy(max_attempts=3, lease_timeout=300.0)
        bare = durable = None
        reference = None
        for round_index in range(ROUNDS):
            # alternate the order so cache warm-up cannot bias one side
            plans = [("bare", dict(journal=False)),
                     ("durable", dict(journal=True, retry=policy))]
            if round_index % 2:
                plans.reverse()
            for tag, kwargs in plans:
                out = str(tmp_path / f"{tag}{round_index}")
                elapsed, batch = _timed(requests, out, **kwargs)
                if tag == "bare":
                    bare = min(bare or elapsed, elapsed)
                else:
                    durable = min(durable or elapsed, elapsed)
                payloads = [outcome.result for outcome in batch]
                if reference is None:
                    reference = payloads
                else:
                    # the durability stack must never touch results
                    assert payloads == reference, \
                        f"results diverged with {tag} durability"
        _RESULTS["overhead/bare_wall"] = bare
        _RESULTS["overhead/durable_wall"] = durable
        _RESULTS["overhead/retry_overhead"] = durable / bare
        assert durable / bare <= OVERHEAD_CEIL, (
            f"durability stack costs {durable / bare:.3f}x the stripped "
            f"pool (ceiling {OVERHEAD_CEIL}x)")

    benchmark.pedantic(run, rounds=1, iterations=1)


# ---------------------------------------------------------------------
# micro: journal append + queue lifecycle throughput
# ---------------------------------------------------------------------

class _Req:
    def __init__(self, name):
        self.name = name


def test_queue_micro(benchmark, tmp_path):
    def run():
        appends = 20_000
        journal = BatchJournal.create(
            str(tmp_path / "journal.jsonl"),
            {"r": "fp"}, "cat-sha")
        started = time.perf_counter()
        for index in range(appends):
            journal.attempt("r", 1, "start", worker_pid=index)
        journal.close()
        elapsed = time.perf_counter() - started
        _RESULTS["micro/journal_appends_per_second"] = appends / elapsed

        cycles = 20_000
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0)
        queue = JobQueue(
            [(_Req(f"r{i}"), f"fp-{i}") for i in range(cycles)], policy)
        started = time.perf_counter()
        while not queue.finished():
            lease = queue.lease(0, 1)
            if lease.attempt == 1:
                queue.fail(lease.name, "worker-lost", "bench")
            else:
                queue.complete(lease.name, _Req(lease.name))
        elapsed = time.perf_counter() - started
        # each job = lease + fail + lease + complete
        _RESULTS["micro/queue_cycles_per_second"] = cycles / elapsed
        assert queue.retries == cycles

    benchmark.pedantic(run, rounds=1, iterations=1)


# ---------------------------------------------------------------------
# report + trajectory
# ---------------------------------------------------------------------

def test_queue_report(benchmark):
    def build_report():
        if "overhead/bare_wall" not in _RESULTS:
            pytest.skip("overhead benchmark did not run")
        ratio = _RESULTS["overhead/retry_overhead"]
        lines = [
            "Durable-queue overhead, Table-1 mix x2 on 2 workers",
            f"  stripped pool (no journal, no retry): "
            f"{_RESULTS['overhead/bare_wall']:.2f}s",
            f"  durability armed (journal + leases + retries): "
            f"{_RESULTS['overhead/durable_wall']:.2f}s",
            f"  overhead: {ratio:.3f}x (gate: <= {OVERHEAD_CEIL}x)",
        ]
        if "micro/journal_appends_per_second" in _RESULTS:
            lines.append(
                f"  journal appends/s: "
                f"{_RESULTS['micro/journal_appends_per_second']:,.0f}")
            lines.append(
                f"  queue lease/fail/complete cycles/s: "
                f"{_RESULTS['micro/queue_cycles_per_second']:,.0f}")
        report("queue", lines)
        report_json("queue", dict(_RESULTS))

        entry = {
            "recorded": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "bench": "queue",
            "bare_wall_seconds": round(
                _RESULTS["overhead/bare_wall"], 3),
            "durable_wall_seconds": round(
                _RESULTS["overhead/durable_wall"], 3),
            "retry_overhead": round(ratio, 4),
            "journal_appends_per_second": round(
                _RESULTS.get("micro/journal_appends_per_second", 0.0), 1),
            "queue_cycles_per_second": round(
                _RESULTS.get("micro/queue_cycles_per_second", 0.0), 1),
            "floors": {"overhead_ceil": OVERHEAD_CEIL},
        }
        trajectory = []
        if os.path.exists(_TRAJECTORY):
            with open(_TRAJECTORY, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        trajectory.append(entry)
        with open(_TRAJECTORY, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    benchmark.pedantic(build_report, rounds=1, iterations=1)
