"""Batch-engine benchmarks: pool scaling on the Table-1 design mix.

Two claims, two tests:

* **smoke** (the CI lane): a small manifest on 2 workers completes,
  survives pool startup/teardown inside the fast-lane timeout, and is
  byte-identical to the 1-worker run — correctness under
  multiprocessing, not speed;
* **scaling**: the Table-1 mix (dram / risc8 / gcd, the workloads of
  ``bench_table1``) fanned over 1/2/4/8 workers.  On a box with >= 4
  effective cores the 4-worker run must beat 1 worker by the
  ``SCALE_FLOOR``; on narrower boxes (CI containers are often pinned
  to one core, where parallel speedup is physically impossible) the
  gate degrades to an overhead bound — the pool may not cost more than
  ``OVERHEAD_CEIL`` over serial.  Either way the measured trajectory
  lands in ``BENCH_batch.json`` with the core count recorded, so
  numbers from different boxes are never compared blind.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

import pytest

from repro.batch import RunRequest, run_batch
from repro.designs import load
from repro.sim import SimOptions

from benchmarks.conftest import report, report_json

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TRAJECTORY = os.path.join(_REPO_ROOT, "BENCH_batch.json")

#: required 4-worker speedup over 1 worker — asserted only with >= 4
#: effective cores (otherwise physically unattainable).
SCALE_FLOOR = 2.5
#: with fewer cores: the 4-worker pool may cost at most this factor
#: over the 1-worker pool (process startup + pickling + shard merge).
OVERHEAD_CEIL = 1.35

POOL_WIDTHS = (1, 2, 4, 8)

#: the Table-1 design mix, same workload sizes as bench_table1
TABLE1_MIX = {
    "dram": ({"bursts": 2}, 3000),
    "risc8": ({"runtime": 180}, 400),
    "gcd": ({"rounds": 1, "width": 5}, 5000),
}

_RESULTS: dict = {}


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _mix_requests(copies: int = 2):
    """``copies`` runs of each Table-1 design (seeds differ, so the
    compile-once cache is exercised while the runs stay distinct)."""
    requests = []
    for design, (params, until) in TABLE1_MIX.items():
        source, top, defines = load(design, **params)
        for copy in range(copies):
            requests.append(RunRequest(
                name=f"{design}-{copy}", source=source, top=top,
                defines=defines, until=until,
                options=SimOptions(
                    concrete_random=copy if copy else None),
            ))
    return requests


def _timed_batch(requests, workers, out_dir):
    started = time.perf_counter()
    batch = run_batch(requests, workers=workers, out_dir=out_dir,
                      trace=False, write_metrics=False)
    elapsed = time.perf_counter() - started
    assert len(batch) == len(requests)
    for outcome in batch:
        assert outcome.status.value in ("ok", "assert_failed"), (
            f"{outcome.name}: {outcome.status.value} {outcome.error}")
    return elapsed, batch


# ---------------------------------------------------------------------
# CI smoke: 2 workers, small manifest, determinism vs 1 worker
# ---------------------------------------------------------------------

SMOKE_SRC = """
module tb;
  reg [3:0] d; reg [7:0] acc;
  initial begin
    acc = 0;
    repeat (6) begin
      #10 d = $random;
      acc = acc + d;
    end
    $finish;
  end
endmodule
"""


def test_batch_smoke(benchmark, tmp_path):
    """The CI gate: a 2-worker pool works and changes nothing."""
    def run():
        requests = [
            RunRequest(name=f"seed-{seed}", source=SMOKE_SRC, vcd=True,
                       options=SimOptions(concrete_random=seed))
            for seed in (1, 2, 3, 4)
        ]
        serial_t, serial = _timed_batch(requests, 1, str(tmp_path / "w1"))
        pool_t, pooled = _timed_batch(requests, 2, str(tmp_path / "w2"))
        for left, right in zip(serial, pooled):
            assert left.result == right.result, left.name
            with open(left.vcd_path, "rb") as a, \
                    open(right.vcd_path, "rb") as b:
                assert a.read() == b.read(), f"VCD differs: {left.name}"
        _RESULTS["smoke/serial"] = serial_t
        _RESULTS["smoke/pool2"] = pool_t

    benchmark.pedantic(run, rounds=1, iterations=1)


# ---------------------------------------------------------------------
# scaling trajectory: Table-1 mix over 1/2/4/8 workers
# ---------------------------------------------------------------------

def test_batch_scaling(benchmark, tmp_path):
    def run():
        requests = _mix_requests(copies=2)
        reference = None
        for workers in POOL_WIDTHS:
            elapsed, batch = _timed_batch(
                requests, workers, str(tmp_path / f"w{workers}"))
            _RESULTS[f"scaling/w{workers}"] = elapsed
            payloads = [outcome.result for outcome in batch]
            if reference is None:
                reference = payloads
            else:
                # pool width must never be observable in the results
                assert payloads == reference, \
                    f"results diverged at {workers} workers"
        cores = _effective_cores()
        speedup4 = _RESULTS["scaling/w1"] / _RESULTS["scaling/w4"]
        _RESULTS["scaling/cores"] = cores
        _RESULTS["scaling/speedup4"] = speedup4
        if cores >= 4:
            assert speedup4 >= SCALE_FLOOR, (
                f"4-worker speedup {speedup4:.2f}x below the "
                f"{SCALE_FLOOR}x floor on a {cores}-core box")
        else:
            overhead = _RESULTS["scaling/w4"] / _RESULTS["scaling/w1"]
            assert overhead <= OVERHEAD_CEIL, (
                f"4-worker pool costs {overhead:.2f}x serial on a "
                f"{cores}-core box (ceiling {OVERHEAD_CEIL}x)")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_batch_report(benchmark):
    def build_report():
        if "scaling/w1" not in _RESULTS:
            pytest.skip("scaling benchmark did not run")
        cores = _RESULTS["scaling/cores"]
        lines = [
            f"Batch scaling, Table-1 mix x2 "
            f"(dram/risc8/gcd), {cores} effective core(s)",
            f"{'workers':>8s} {'wall':>9s} {'speedup':>9s}",
        ]
        base = _RESULTS["scaling/w1"]
        for workers in POOL_WIDTHS:
            wall = _RESULTS[f"scaling/w{workers}"]
            lines.append(f"{workers:8d} {wall:8.2f}s {base / wall:8.2f}x")
        gate = (f"gate: >= {SCALE_FLOOR}x at 4 workers" if cores >= 4
                else f"gate: <= {OVERHEAD_CEIL}x overhead "
                     f"(only {cores} core(s) — speedup unattainable)")
        lines.append(gate)
        if "smoke/serial" in _RESULTS:
            lines.append(
                f"smoke (4 tiny runs): serial {_RESULTS['smoke/serial']:.2f}s,"
                f" 2-worker pool {_RESULTS['smoke/pool2']:.2f}s")
        report("batch", lines)
        report_json("batch", dict(_RESULTS))

        entry = {
            "recorded": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "bench": "batch",
            "effective_cores": cores,
            "wall_seconds": {
                str(workers): round(_RESULTS[f"scaling/w{workers}"], 3)
                for workers in POOL_WIDTHS
            },
            "speedup_4workers": round(_RESULTS["scaling/speedup4"], 3),
            "gate": ("scale_floor" if cores >= 4 else "overhead_ceil"),
            "floors": {"scale": SCALE_FLOOR, "overhead": OVERHEAD_CEIL},
        }
        trajectory = []
        if os.path.exists(_TRAJECTORY):
            with open(_TRAJECTORY, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        trajectory.append(entry)
        with open(_TRAJECTORY, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    benchmark.pedantic(build_report, rounds=1, iterations=1)
