"""Variable-order sensitivity of the BDD substrate.

The paper notes that dynamic variable reordering had to be *disabled*
for the Fig. 11 comparison to be fair — because order matters enormously
for BDD-based simulation.  This bench quantifies that on the classic
structures the simulator builds:

* an N-bit equality comparator: linear nodes when operand bits are
  interleaved, exponential when blocked;
* an N-bit adder: same phenomenon on the carry chain;

and verifies that :meth:`BddManager.rebuild` (static reordering)
recovers the good order from the bad one.
"""

from __future__ import annotations

import pytest

from repro.bdd import TRUE, BddManager
from repro.fourval import FourVec, ops

from benchmarks.conftest import report

N = 10

_RESULTS: dict = {}


def _manager(interleaved: bool):
    mgr = BddManager()
    levels = {}
    if interleaved:
        for i in range(N):
            levels[f"x{i}"] = mgr.new_var(f"x{i}")
            levels[f"y{i}"] = mgr.new_var(f"y{i}")
    else:
        for i in range(N):
            levels[f"x{i}"] = mgr.new_var(f"x{i}")
        for i in range(N):
            levels[f"y{i}"] = mgr.new_var(f"y{i}")
    x = FourVec(mgr, [(levels[f"x{i}"], 0) for i in range(N)])
    y = FourVec(mgr, [(levels[f"y{i}"], 0) for i in range(N)])
    return mgr, x, y


@pytest.mark.parametrize("interleaved", [True, False])
def test_comparator_order(benchmark, interleaved):
    def build():
        mgr, x, y = _manager(interleaved)
        eq = ops.equal(x, y)
        nodes = mgr.node_count(eq.bits[0][0])
        _RESULTS[("eq", interleaved)] = nodes
        return nodes

    benchmark.extra_info["order"] = "interleaved" if interleaved else "blocked"
    benchmark.pedantic(build, rounds=1, iterations=1)


@pytest.mark.parametrize("interleaved", [True, False])
def test_adder_order(benchmark, interleaved):
    def build():
        mgr, x, y = _manager(interleaved)
        total = ops.add(x, y)
        nodes = max(mgr.node_count(a) for a, _ in total.bits)
        _RESULTS[("add", interleaved)] = nodes
        return nodes

    benchmark.extra_info["order"] = "interleaved" if interleaved else "blocked"
    benchmark.pedantic(build, rounds=1, iterations=1)


def test_rebuild_recovers_good_order(benchmark):
    def run():
        mgr, x, y = _manager(interleaved=False)
        eq = ops.equal(x, y).bits[0][0]
        blocked_nodes = mgr.node_count(eq)
        order = [level for i in range(N) for level in (i, N + i)]
        new, mapping = mgr.rebuild(order, [eq])
        rebuilt_nodes = new.node_count(mapping[eq])
        _RESULTS["rebuild"] = (blocked_nodes, rebuilt_nodes)
        assert rebuilt_nodes < blocked_nodes
        return rebuilt_nodes

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ordering_report(benchmark):
    def build_report():
        blocked_before, rebuilt = _RESULTS["rebuild"]
        lines = [
            f"Variable-order sensitivity ({N}-bit operands), BDD nodes",
            f"{'structure':12s} {'interleaved':>12s} {'blocked':>12s}",
            f"{'comparator':12s} {_RESULTS[('eq', True)]:12d} "
            f"{_RESULTS[('eq', False)]:12d}",
            f"{'adder (msb)':12s} {_RESULTS[('add', True)]:12d} "
            f"{_RESULTS[('add', False)]:12d}",
            f"rebuild(): blocked comparator {blocked_before} nodes -> "
            f"{rebuilt} after static reorder",
        ]
        report("ordering", lines)
        assert _RESULTS[("eq", False)] > 10 * _RESULTS[("eq", True)]

    benchmark.pedantic(build_report, rounds=1, iterations=1)
