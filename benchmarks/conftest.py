"""Shared benchmark helpers.

Every benchmark prints a paper-style table/series through
:func:`report`, which bypasses pytest's capture so the rows appear in
the terminal *and* land in ``benchmarks/results/<name>.txt`` for
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def report(name: str, lines) -> None:
    """Print benchmark output unbuffered and persist it to a file."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w",
              encoding="utf-8") as handle:
        handle.write(text + "\n")
    # __stderr__ bypasses pytest capture so the table is always visible
    print(f"\n{text}", file=sys.__stderr__, flush=True)


def report_json(name: str, payload) -> None:
    """Persist machine-readable telemetry next to the text tables.

    Benchmarks route their series through ``repro.obs`` metric
    registries; the registry snapshots land here
    (``results/<name>.metrics.json``) so figures and telemetry share
    one data path.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.metrics.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
