"""Front-door latency: submit→result over HTTP, cold vs cached.

One claim: the content-addressed result cache makes resubmission of an
identical request much cheaper than executing it.  The benchmark boots
a real :class:`~repro.serve.ServeApp` (HTTP server + scheduler + one
worker process), measures the full submit→result wall time for a cold
run (compile + queue + worker round trip), then resubmits the
identical request ``CACHED_ROUNDS`` times and takes the median cache
latency.  The gate: cached submissions must beat the cold path by
``CACHE_SPEEDUP_FLOOR`` — conservative, since the cold path crosses a
process boundary and the cached one never leaves the scheduler lock.

The measured trajectory lands in ``BENCH_serve.json`` (cells:
``cold_ms``, ``cached_ms``, ``cache_speedup``) for the bench-gate
lane, like every other ``BENCH_*.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import time
import urllib.request
from datetime import datetime, timezone

from repro.serve import serve_app

from benchmarks.conftest import report, report_json

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TRAJECTORY = os.path.join(_REPO_ROOT, "BENCH_serve.json")

#: cached submissions must beat the cold submit→result path by this
#: factor (conservative: the cold path spans compile + a worker
#: process round trip, the cached one is an in-memory lookup).
CACHE_SPEEDUP_FLOOR = 2.0

CACHED_ROUNDS = 20

SOURCE = """
module tb;
  reg [7:0] acc; reg [3:0] d;
  initial begin
    acc = 0;
    repeat (8) begin
      #10 d = $random;
      acc = acc + d;
    end
    $finish;
  end
endmodule
"""


def _submit_and_fetch(url: str, spec: dict) -> float:
    """Wall seconds for one full submit→result exchange."""
    started = time.perf_counter()
    request = urllib.request.Request(
        f"{url}/v1/runs", data=json.dumps(spec).encode("utf-8"),
        method="POST")
    with urllib.request.urlopen(request, timeout=60) as resp:
        rid = json.loads(resp.read())["id"]
    with urllib.request.urlopen(
            f"{url}/v1/runs/{rid}/result?wait=30", timeout=60) as resp:
        payload = resp.read()
        cache = resp.headers["X-Serve-Cache"]
    elapsed = time.perf_counter() - started
    outcome = json.loads(payload)
    assert outcome["status"] == "ok", outcome
    return elapsed, cache


def test_serve_latency(benchmark, tmp_path):
    def run():
        spec = {"source": SOURCE, "options": {"seed": 11}}
        with serve_app(workers=1, out_dir=str(tmp_path / "serve")) as app:
            app.start()
            cold, cache = _submit_and_fetch(app.url, spec)
            assert cache == "miss", "first submission must execute"
            laps = []
            for _ in range(CACHED_ROUNDS):
                elapsed, cache = _submit_and_fetch(app.url, spec)
                assert cache == "hit", "resubmission must dedup"
                laps.append(elapsed)
        cached = statistics.median(laps)
        speedup = cold / cached
        assert speedup >= CACHE_SPEEDUP_FLOOR, (
            f"cached submit→result only {speedup:.1f}x faster than cold "
            f"(floor {CACHE_SPEEDUP_FLOOR}x): cold {cold * 1e3:.1f}ms, "
            f"cached {cached * 1e3:.1f}ms")

        results = {
            "cold_ms": round(cold * 1e3, 3),
            "cached_ms": round(cached * 1e3, 3),
            "cache_speedup": round(speedup, 2),
        }
        report("serve", [
            "Front-door submit→result latency (1 worker)",
            f"{'path':>8s} {'wall':>10s}",
            f"{'cold':>8s} {results['cold_ms']:>8.1f}ms",
            f"{'cached':>8s} {results['cached_ms']:>8.1f}ms",
            f"cache speedup {results['cache_speedup']:.1f}x "
            f"(floor {CACHE_SPEEDUP_FLOOR}x, median of {CACHED_ROUNDS})",
        ])
        report_json("serve", results)

        entry = {
            "recorded": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "bench": "serve",
            **results,
            "floors": {"cache_speedup": CACHE_SPEEDUP_FLOOR},
        }
        trajectory = []
        if os.path.exists(_TRAJECTORY):
            with open(_TRAJECTORY, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        trajectory.append(entry)
        with open(_TRAJECTORY, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    benchmark.pedantic(run, rounds=1, iterations=1)
