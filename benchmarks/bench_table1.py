"""Table 1: CPU times for symbolic simulation at three accumulation levels.

Paper (DAC 2001, Table 1)::

    Circuit  #lines  with event-acc.  no acc. merge  w/o event-acc.
    DRAM     1048    37s              37s            37s
    RISC     2531    149s             178s           388s
    GCD      313     302s             353s           64199s

Absolute numbers are testbed-specific; the *shape* to reproduce is:

* DRAM — symbolic data never reaches control statements, so all three
  levels cost the same;
* RISC — moderate splitting: accumulation helps (~2.6x), accumulation
  events add ~19% on top of queue merging;
* GCD — heavy zero-delay splitting in a data-dependent while loop:
  simulation without accumulation is disproportionately slow.

Each (design, mode) cell runs once under pytest-benchmark; the final
report benchmark prints the assembled table and checks the orderings.
Two extra columns ride along: FULL+GC (memory management must be
invisible to results) and FULL+guard (resource budgets armed but never
breached must cost <3% wall clock in aggregate).
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

import repro
from repro import (
    AccumulationMode, MetricsRegistry, Observability, ResourceBudgets,
    SimOptions,
)
from repro.designs import load

from benchmarks.conftest import report, report_json

#: workload per design: loader kwargs + simulation bound
WORKLOADS = {
    "dram": ({"bursts": 2}, 3000),
    "risc8": ({"runtime": 180}, 400),
    "gcd": ({"rounds": 1, "width": 5}, 5000),
}

#: the conventional-simulation cells (concrete ``$random``, the paper's
#: Section-7 baseline) execute ~zero BDD work per cycle, so they run a
#: much longer program for a measurable wall-clock sample
CONV_WORKLOAD = ({"runtime": 6000}, 12500)

#: the FULL+GC column: mark-and-sweep whenever the arena grows 50k
#: nodes past the last collection, sifting between steps once the
#: arena holds 60k (the paper disabled dynamic reordering; this cell
#: measures what CUDD-style memory management buys on the same runs)
GC_KNOBS = dict(gc_threshold=50_000, dyn_reorder=True,
                reorder_threshold=60_000)

#: the FULL+guard column: resource budgets armed but sized so that no
#: rung of the mitigation ladder can fire — measures the pure cost of
#: the guard's per-safe-point bookkeeping (docs/ROBUSTNESS.md promises
#: it stays under 3% of wall clock)
GUARD_BUDGETS = dict(wall_seconds=24 * 3600.0,
                     max_live_nodes=500_000_000,
                     max_events=10 ** 12)

_RESULTS: dict = {}
_SNAPSHOTS: dict = {}
_SAMPLES: dict = {}
#: VCD dumps for the fast-path bit-identity check (FULL vs FULL+nofp)
_VCD_DIR = tempfile.mkdtemp(prefix="table1_vcd_")


def _sampled_tables(sim, max_nets=12, max_cases=16):
    """Deterministic name-keyed truth samples of the final net values.

    Keyed by variable *name*, not level, so a reordered manager yields
    byte-identical tables iff the functions are identical.
    """
    import random as _random

    mgr = sim.mgr
    names = sorted(mgr.var_name(i) for i in range(mgr.var_count))
    level_of = {mgr.var_name(i): i for i in range(mgr.var_count)}
    rng = _random.Random(20010618)  # DAC 2001 started June 18
    cases = [tuple(rng.random() < 0.5 for _ in names)
             for _ in range(max_cases)]
    nets = sorted(sim.kernel.state.snapshot_names())[:max_nets]
    tables = {}
    for bits in cases:
        cube = {level_of[name]: bit for name, bit in zip(names, bits)}
        for net in nets:
            tables[(net, bits)] = \
                sim.value(net).substitute(cube).to_verilog_bits()
    return tables


def _run_cell(design: str, mode: AccumulationMode, gc: bool = False,
              guard: bool = False, nofp: bool = False, vcd: bool = False,
              conv: bool = False):
    kwargs, until = CONV_WORKLOAD if conv else WORKLOADS[design]
    source, top, defines = load(design, **kwargs)
    # Metrics-only observability: the kernel leaves its hot paths
    # un-wrapped, so the timed cell matches an un-instrumented run.
    registry = MetricsRegistry()
    key = (f"{design}/{mode.value}" + ("+gc" if gc else "")
           + ("+guard" if guard else "") + ("+conv" if conv else "")
           + ("+vcd" if vcd else "") + ("+nofp" if nofp else ""))
    # The fast-path twins both dump a VCD: byte-equal files are the
    # strongest bit-identity evidence (every value change over the whole
    # run, not just the end state).
    vcd_path = (os.path.join(_VCD_DIR, key.replace("/", "_") + ".vcd")
                if vcd else None)
    options = SimOptions(accumulation=mode,
                         obs=Observability(metrics=registry),
                         budgets=(ResourceBudgets(**GUARD_BUDGETS)
                                  if guard else None),
                         no_fastpath=nofp,
                         vcd_path=vcd_path,
                         concrete_random=20010618 if conv else None,
                         **(GC_KNOBS if gc else {}))
    sim = repro.open_sim(
        source, top=top, defines=defines, options=options)
    # Drop the previous cell's dead arenas before timing: a ~0.5s cell
    # that happens to follow a multi-million-node run otherwise pays
    # that run's heap in allocator pressure.
    import gc as _gc
    _gc.collect()
    started = time.perf_counter()
    result = sim.run(until=until)
    elapsed = time.perf_counter() - started
    assert not result.violations, f"{design} checker mismatch!"
    if guard:
        assert not sim.mgr.concretized, \
            f"{design}: guard mitigation fired under no-op budgets"
    registry.gauge("bench.wall_seconds",
                   "wall time of the timed run() call").set(elapsed)
    if mode is AccumulationMode.FULL and not conv:
        # bit-identity evidence: FULL, FULL+GC and FULL+nofp sample equal
        _SAMPLES[key] = _sampled_tables(sim)
    # Keep only the plain-data snapshot: the live registry's callback
    # gauges hold the BddManager (and its arena) alive, which would
    # bloat the process and slow every later cell.
    _SNAPSHOTS[key] = registry.snapshot()
    _RESULTS[key] = (elapsed,
                     int(registry.gauge("sim.events_processed").value))
    return result


def _gauge(snapshot, name):
    for metric in snapshot["metrics"]:
        if metric["name"] == name:
            return metric["value"]
    raise KeyError(name)


@pytest.mark.parametrize("design", list(WORKLOADS))
@pytest.mark.parametrize("mode", list(AccumulationMode))
def test_table1_cell(benchmark, design, mode):
    benchmark.extra_info["design"] = design
    benchmark.extra_info["accumulation"] = mode.value
    benchmark.pedantic(_run_cell, args=(design, mode), rounds=1, iterations=1)


@pytest.mark.parametrize("design", list(WORKLOADS))
def test_table1_gc_cell(benchmark, design):
    benchmark.extra_info["design"] = design
    benchmark.extra_info["accumulation"] = "full+gc"
    benchmark.pedantic(_run_cell, args=(design, AccumulationMode.FULL),
                       kwargs={"gc": True}, rounds=1, iterations=1)


@pytest.mark.parametrize("design", list(WORKLOADS))
def test_table1_guard_cell(benchmark, design):
    benchmark.extra_info["design"] = design
    benchmark.extra_info["accumulation"] = "full+guard"
    benchmark.pedantic(_run_cell, args=(design, AccumulationMode.FULL),
                       kwargs={"guard": True}, rounds=1, iterations=1)


@pytest.mark.parametrize("nofp", (False, True), ids=("fastpath", "nofp"))
@pytest.mark.parametrize("design", list(WORKLOADS))
def test_table1_fastpath_cell(benchmark, design, nofp):
    """FULL twins with the hybrid fast paths enabled vs force-disabled.

    Separate from the timed ``test_table1_cell`` runs because both
    twins also dump a VCD for the bit-identity comparison — the plain
    table cells stay free of dump overhead.
    """
    benchmark.extra_info["design"] = design
    benchmark.extra_info["accumulation"] = "full+nofp" if nofp else "full+vcd"
    benchmark.pedantic(_run_cell, args=(design, AccumulationMode.FULL),
                       kwargs={"nofp": nofp, "vcd": True},
                       rounds=1, iterations=1)


@pytest.mark.parametrize("nofp", (False, True), ids=("fastpath", "nofp"))
def test_table1_conventional_cell(benchmark, nofp):
    """Conventional (concrete ``$random``) risc8 runs — the paper's
    Section-7 baseline, where the datapath is fully concrete and the
    word-level fast path carries the whole run.

    These cells are sub-second, so each twin keeps the best of two runs
    — the speedup floor should measure the engine, not scheduler noise.
    """
    benchmark.extra_info["design"] = "risc8"
    benchmark.extra_info["accumulation"] = ("conv+nofp" if nofp
                                            else "conv+fastpath")
    key = "risc8/full+conv+vcd" + ("+nofp" if nofp else "")

    def run():
        best = None
        for _ in range(2):
            _run_cell("risc8", AccumulationMode.FULL,
                      nofp=nofp, vcd=True, conv=True)
            if best is None or _RESULTS[key][0] < best[0]:
                best = _RESULTS[key]
        _RESULTS[key] = best

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_table1_report(benchmark):
    def build_report():
        lines = [
            "Table 1 — CPU seconds (events) for symbolic simulation",
            f"{'Circuit':8s} {'with event-acc.':>22s} "
            f"{'no acc. merge':>22s} {'w/o event-acc.':>22s}",
        ]
        for design in ("dram", "risc8", "gcd"):
            cells = []
            for mode in (AccumulationMode.FULL,
                         AccumulationMode.QUEUE_MERGE_ONLY,
                         AccumulationMode.NONE):
                elapsed, events = _RESULTS[f"{design}/{mode.value}"]
                cells.append(f"{elapsed:9.2f}s ({events:6d}ev)")
            lines.append(f"{design:8s} {cells[0]:>22s} {cells[1]:>22s} "
                         f"{cells[2]:>22s}")
        lines.append("")
        lines.append("BDD work per cell (nodes created / ite-cache hit rate)")
        for design in ("dram", "risc8", "gcd"):
            cells = []
            for mode in (AccumulationMode.FULL,
                         AccumulationMode.QUEUE_MERGE_ONLY,
                         AccumulationMode.NONE):
                snapshot = _SNAPSHOTS[f"{design}/{mode.value}"]
                nodes = int(_gauge(snapshot, "bdd.nodes"))
                hits = _gauge(snapshot, "bdd.ite_cache.hits")
                misses = _gauge(snapshot, "bdd.ite_cache.misses")
                rate = 100.0 * hits / max(hits + misses, 1)
                cells.append(f"{nodes:9d}n {rate:5.1f}%")
            lines.append(f"{design:8s} {cells[0]:>22s} {cells[1]:>22s} "
                         f"{cells[2]:>22s}")
        lines.append("")
        lines.append("FULL + GC/sifting (peak nodes vs FULL, reclaimed, "
                     "reorders)")
        for design in ("dram", "risc8", "gcd"):
            base = _SNAPSHOTS[f"{design}/full"]
            managed = _SNAPSHOTS[f"{design}/full+gc"]
            elapsed, _ = _RESULTS[f"{design}/full+gc"]
            base_peak = int(_gauge(base, "bdd.peak_nodes"))
            peak = int(_gauge(managed, "bdd.peak_nodes"))
            reclaimed = int(_gauge(managed, "bdd.gc.reclaimed_nodes"))
            reorders = int(_gauge(managed, "bdd.reorder.runs"))
            saved = int(_gauge(managed, "bdd.reorder.nodes_saved"))
            lines.append(
                f"{design:8s} {elapsed:9.2f}s peak {base_peak:8d}n -> "
                f"{peak:8d}n  reclaimed {reclaimed:8d}n  "
                f"reorders {reorders:2d} (saved {saved:6d}n)")
        lines.append("")
        lines.append("Guard overhead (budgets armed, never breached)")
        for design in ("dram", "risc8", "gcd"):
            base, base_ev = _RESULTS[f"{design}/full"]
            guarded, guard_ev = _RESULTS[f"{design}/full+guard"]
            overhead = 100.0 * (guarded - base) / base
            lines.append(
                f"{design:8s} {base:9.2f}s -> {guarded:9.2f}s "
                f"({overhead:+5.1f}%)  events {base_ev:6d} -> "
                f"{guard_ev:6d}")
        lines.append("")
        lines.append("Fast path (fast-path-disabled twin -> enabled, "
                     "both dumping VCD)")
        fp_rows = [("dram", "dram/full+vcd", "dram/full+vcd+nofp"),
                   ("risc8", "risc8/full+vcd", "risc8/full+vcd+nofp"),
                   ("gcd", "gcd/full+vcd", "gcd/full+vcd+nofp"),
                   ("risc8/conv", "risc8/full+conv+vcd",
                    "risc8/full+conv+vcd+nofp")]
        for label, fast_key, slow_key in fp_rows:
            fast, _ = _RESULTS[fast_key]
            slow, _ = _RESULTS[slow_key]
            snapshot = _SNAPSHOTS[fast_key]
            word = int(_gauge(snapshot, "sim.fastpath.word_ops"))
            bits = int(_gauge(snapshot, "sim.fastpath.bit_shortcuts"))
            ratio = _gauge(snapshot, "sim.fastpath.concrete_ratio")
            lines.append(
                f"{label:10s} {slow:8.2f}s -> {fast:8.2f}s "
                f"({slow / fast:4.1f}x)  word {word:8d}  "
                f"bit-shortcuts {bits:8d}  concrete {100 * ratio:5.1f}%")
        report("table1", lines)
        report_json("table1", dict(_SNAPSHOTS))

        # --- shape assertions (paper's qualitative claims) ----------
        events = {m: _RESULTS[f"dram/{m.value}"][1]
                  for m in AccumulationMode}
        assert len(set(events.values())) == 1, \
            "DRAM event counts must be identical across modes"

        gcd_full, _ = _RESULTS["gcd/full"]
        gcd_none, _ = _RESULTS["gcd/none"]
        assert gcd_none > 3 * gcd_full, \
            "GCD without accumulation must be disproportionately slow"

        _, risc_full_ev = _RESULTS["risc8/full"]
        _, risc_none_ev = _RESULTS["risc8/none"]
        assert risc_none_ev > risc_full_ev, \
            "RISC event multiplication without accumulation"
        risc_full, _ = _RESULTS["risc8/full"]
        risc_none, _ = _RESULTS["risc8/none"]
        assert risc_none > 1.5 * risc_full

        # --- GC-cell assertions (PR acceptance criteria) ------------
        peak_dropped = []
        for design in ("dram", "risc8", "gcd"):
            managed = _SNAPSHOTS[f"{design}/full+gc"]
            base = _SNAPSHOTS[f"{design}/full"]
            assert _gauge(managed, "bdd.gc.reclaimed_nodes") > 0, \
                f"{design}: GC never reclaimed anything"
            peak_dropped.append(
                _gauge(managed, "bdd.peak_nodes") <
                _gauge(base, "bdd.peak_nodes"))
            # memory management must be invisible to results
            assert _SAMPLES[f"{design}/full+gc"] == \
                _SAMPLES[f"{design}/full"], \
                f"{design}: GC/reordering perturbed final values"
            assert _RESULTS[f"{design}/full+gc"][1] == \
                _RESULTS[f"{design}/full"][1], \
                f"{design}: GC/reordering changed the event count"
        assert any(peak_dropped), \
            "GC must reduce peak live nodes on at least one design"

        # --- guard-overhead assertions (robustness PR criteria) ------
        base_total = guarded_total = 0.0
        for design in ("dram", "risc8", "gcd"):
            base, base_ev = _RESULTS[f"{design}/full"]
            guarded, guard_ev = _RESULTS[f"{design}/full+guard"]
            base_total += base
            guarded_total += guarded
            assert guard_ev == base_ev, \
                f"{design}: an idle guard changed the event count"
        # Aggregated across designs to keep single-run timing noise
        # from dominating the bound (individual cells run once).
        assert guarded_total < 1.03 * base_total, \
            (f"idle guard costs {100 * (guarded_total / base_total - 1):.1f}%"
             " wall clock (must stay under 3%)")

        # --- fast-path assertions (hybrid-engine PR criteria) --------
        speedups = []
        for label, fast_key, slow_key in fp_rows:
            fast, fast_ev = _RESULTS[fast_key]
            slow, slow_ev = _RESULTS[slow_key]
            speedups.append(slow / fast)
            # Bit-identity: sampled truth tables, event counts, and the
            # whole value-change history (byte-equal VCD dumps).
            if fast_key in _SAMPLES:
                assert _SAMPLES[fast_key] == _SAMPLES[slow_key], \
                    f"{label}: fast path perturbed final values"
                assert _SAMPLES[fast_key] == \
                    _SAMPLES[fast_key.split("+", 1)[0]], \
                    f"{label}: VCD twin diverged from the plain FULL run"
            assert slow_ev == fast_ev, \
                f"{label}: fast path changed the event count"
            with open(os.path.join(
                    _VCD_DIR, fast_key.replace("/", "_") + ".vcd"),
                    "rb") as handle:
                fast_vcd = handle.read()
            with open(os.path.join(
                    _VCD_DIR, slow_key.replace("/", "_") + ".vcd"),
                    "rb") as handle:
                slow_vcd = handle.read()
            assert fast_vcd and fast_vcd == slow_vcd, \
                f"{label}: VCD dumps differ between fast paths"
            assert _gauge(_SNAPSHOTS[fast_key],
                          "sim.fastpath.word_ops") > 0 and \
                _gauge(_SNAPSHOTS[fast_key],
                       "sim.fastpath.concrete_ratio") > 0, \
                f"{label}: no concrete hits recorded"
        assert max(speedups) >= 2.0, \
            (f"best fast-path speedup {max(speedups):.2f}x "
             "(need >=2x on at least one design)")

    benchmark.pedantic(build_report, rounds=1, iterations=1)
