"""Table 1: CPU times for symbolic simulation at three accumulation levels.

Paper (DAC 2001, Table 1)::

    Circuit  #lines  with event-acc.  no acc. merge  w/o event-acc.
    DRAM     1048    37s              37s            37s
    RISC     2531    149s             178s           388s
    GCD      313     302s             353s           64199s

Absolute numbers are testbed-specific; the *shape* to reproduce is:

* DRAM — symbolic data never reaches control statements, so all three
  levels cost the same;
* RISC — moderate splitting: accumulation helps (~2.6x), accumulation
  events add ~19% on top of queue merging;
* GCD — heavy zero-delay splitting in a data-dependent while loop:
  simulation without accumulation is disproportionately slow.

Each (design, mode) cell runs once under pytest-benchmark; the final
report benchmark prints the assembled table and checks the orderings.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro import (
    AccumulationMode, MetricsRegistry, Observability, SimOptions,
)
from repro.designs import load

from benchmarks.conftest import report, report_json

#: workload per design: loader kwargs + simulation bound
WORKLOADS = {
    "dram": ({"bursts": 2}, 3000),
    "risc8": ({"runtime": 180}, 400),
    "gcd": ({"rounds": 1, "width": 5}, 5000),
}

_RESULTS: dict = {}
_SNAPSHOTS: dict = {}


def _run_cell(design: str, mode: AccumulationMode):
    kwargs, until = WORKLOADS[design]
    source, top, defines = load(design, **kwargs)
    # Metrics-only observability: the kernel leaves its hot paths
    # un-wrapped, so the timed cell matches an un-instrumented run.
    registry = MetricsRegistry()
    sim = repro.SymbolicSimulator.from_source(
        source, top=top, defines=defines,
        options=SimOptions(accumulation=mode,
                           obs=Observability(metrics=registry)))
    started = time.perf_counter()
    result = sim.run(until=until)
    elapsed = time.perf_counter() - started
    assert not result.violations, f"{design} checker mismatch!"
    registry.gauge("bench.wall_seconds",
                   "wall time of the timed run() call").set(elapsed)
    # Keep only the plain-data snapshot: the live registry's callback
    # gauges hold the BddManager (and its arena) alive, which would
    # bloat the process and slow every later cell.
    _SNAPSHOTS[(design, mode)] = registry.snapshot()
    _RESULTS[(design, mode)] = (elapsed,
                                int(registry.gauge(
                                    "sim.events_processed").value))
    return result


def _gauge(snapshot, name):
    for metric in snapshot["metrics"]:
        if metric["name"] == name:
            return metric["value"]
    raise KeyError(name)


@pytest.mark.parametrize("design", list(WORKLOADS))
@pytest.mark.parametrize("mode", list(AccumulationMode))
def test_table1_cell(benchmark, design, mode):
    benchmark.extra_info["design"] = design
    benchmark.extra_info["accumulation"] = mode.value
    benchmark.pedantic(_run_cell, args=(design, mode), rounds=1, iterations=1)


def test_table1_report(benchmark):
    def build_report():
        lines = [
            "Table 1 — CPU seconds (events) for symbolic simulation",
            f"{'Circuit':8s} {'with event-acc.':>22s} "
            f"{'no acc. merge':>22s} {'w/o event-acc.':>22s}",
        ]
        for design in ("dram", "risc8", "gcd"):
            cells = []
            for mode in (AccumulationMode.FULL,
                         AccumulationMode.QUEUE_MERGE_ONLY,
                         AccumulationMode.NONE):
                elapsed, events = _RESULTS[(design, mode)]
                cells.append(f"{elapsed:9.2f}s ({events:6d}ev)")
            lines.append(f"{design:8s} {cells[0]:>22s} {cells[1]:>22s} "
                         f"{cells[2]:>22s}")
        lines.append("")
        lines.append("BDD work per cell (nodes created / ite-cache hit rate)")
        for design in ("dram", "risc8", "gcd"):
            cells = []
            for mode in (AccumulationMode.FULL,
                         AccumulationMode.QUEUE_MERGE_ONLY,
                         AccumulationMode.NONE):
                snapshot = _SNAPSHOTS[(design, mode)]
                nodes = int(_gauge(snapshot, "bdd.nodes"))
                hits = _gauge(snapshot, "bdd.ite_cache.hits")
                misses = _gauge(snapshot, "bdd.ite_cache.misses")
                rate = 100.0 * hits / max(hits + misses, 1)
                cells.append(f"{nodes:9d}n {rate:5.1f}%")
            lines.append(f"{design:8s} {cells[0]:>22s} {cells[1]:>22s} "
                         f"{cells[2]:>22s}")
        report("table1", lines)
        report_json("table1", {
            f"{design}/{mode.value}": snapshot
            for (design, mode), snapshot in _SNAPSHOTS.items()
        })

        # --- shape assertions (paper's qualitative claims) ----------
        dram = {m: _RESULTS[("dram", m)] for m in AccumulationMode}
        events = {m: e for m, (_, e) in dram.items()}
        assert len(set(events.values())) == 1, \
            "DRAM event counts must be identical across modes"

        gcd_full, _ = _RESULTS[("gcd", AccumulationMode.FULL)]
        gcd_none, _ = _RESULTS[("gcd", AccumulationMode.NONE)]
        assert gcd_none > 3 * gcd_full, \
            "GCD without accumulation must be disproportionately slow"

        _, risc_full_ev = _RESULTS[("risc8", AccumulationMode.FULL)]
        _, risc_none_ev = _RESULTS[("risc8", AccumulationMode.NONE)]
        assert risc_none_ev > risc_full_ev, \
            "RISC event multiplication without accumulation"
        risc_full, _ = _RESULTS[("risc8", AccumulationMode.FULL)]
        risc_none, _ = _RESULTS[("risc8", AccumulationMode.NONE)]
        assert risc_none > 1.5 * risc_full

    benchmark.pedantic(build_report, rounds=1, iterations=1)
