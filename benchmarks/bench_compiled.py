"""Compiled-tier benchmarks: block codegen vs the interpreter.

The compiled tier (:mod:`repro.compile.codegen`, docs/PERFORMANCE.md)
fuses straight-line instruction runs into generated Python blocks with
compile-time-decided word fast paths, writing fully-known results
through the raw-word value store.  This module pins the claim with
numbers, against the interpreter (``compile_tier=False`` — the
differential oracle ``symsim --no-compile`` uses):

* every Table-1 design in the *conventional-simulation* regime (Table
  1's comparison column: concrete ``$random`` stimulus) — the regime
  where dispatch and evaluation dominate, so the tier's win is
  directly visible and stable enough to gate;
* the *compute mix*: the paper's worst-case workload shape (the GCD
  datapath's data-dependent Euclid loop) in its dominant concrete
  regime, where block fusion pays in full — the lane's ≥3x gate;
* *symbolic parity* cells: small symbolic editions where BDD work
  dominates and the tier must simply not cost time.  These runs are
  noise-dominated (±20% on a shared box), so their cells are named
  without a gate direction keyword — ``symsim bench compare`` reports
  them as skipped instead of flapping the lane — and the in-test
  bound only catches catastrophic regressions;
* a ``BENCH_compiled.json`` trajectory entry at the repo root, wired
  into ``symsim bench compare`` by the CI bench-gate lane.

Speed claims only: bit-identity is asserted here on every run pair and
exhaustively in tests/integration/test_compile_differential.py.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

import repro
from repro import SimOptions
from repro.designs import load

from benchmarks.conftest import report, report_json

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TRAJECTORY = os.path.join(_REPO_ROOT, "BENCH_compiled.json")

#: The lane's regression gate: the concrete-dominant compute mix must
#: hold a 3x speedup (measured 3.4-3.9x; the floor leaves CI noise
#: headroom).
MIX_FLOOR = 3.0

#: Conservative floors for the conventional-regime Table-1 cells
#: (measured ~1.85x / ~1.2x / ~1.4x).
TABLE1_FLOORS = {
    "gcd": 1.3,
    "dram": 1.0,
    "risc8": 1.1,
}

#: design -> (loader kwargs, until): conventional-simulation editions,
#: sized so wall time dwarfs the ~5 ms codegen build.
TABLE1_WORKLOADS = {
    "gcd": ({"rounds": 400, "width": 8}, None),
    "dram": ({"bursts": 400}, None),
    "risc8": ({"runtime": 3000}, 3100),
}

#: Small symbolic editions (the paper's actual Table-1 protocol) for
#: the parity cells.
SYMBOLIC_WORKLOADS = {
    "gcd": ({"rounds": 1, "width": 5}, 5000),
    "dram": ({"bursts": 2}, 3000),
}

#: BDD-bound symbolic runs may swing ±20% on a shared box; only a
#: catastrophic slowdown fails the lane.
SYMBOLIC_PARITY_BOUND = 0.5

_RESULTS: dict = {}


def _timed_run(source, top, defines, until, compile_tier, seed=7):
    sim = repro.open_sim(source, top=top, defines=defines,
                         options=SimOptions(compile_tier=compile_tier,
                                            echo_output=False,
                                            concrete_random=seed))
    started = time.perf_counter()
    result = sim.run(until=until)
    elapsed = time.perf_counter() - started
    return elapsed, sim, json.dumps(result.to_dict(), sort_keys=True)


def _compare(source, top, defines, until, seed=7):
    """Interpreter vs compiled wall time; asserts bit-identity."""
    interp, _, ref = _timed_run(source, top, defines, until, False,
                                seed=seed)
    compiled, sim, new = _timed_run(source, top, defines, until, True,
                                    seed=seed)
    assert ref == new, "compiled tier diverged from the interpreter"
    stats = sim.kernel.compile_tier_stats()
    assert stats["blocks"] > 0
    return interp, compiled, stats


# ---------------------------------------------------------------------
# Table-1 designs, conventional-simulation regime
# ---------------------------------------------------------------------


def test_table1_conventional(benchmark):
    def run():
        for name, (kwargs, until) in TABLE1_WORKLOADS.items():
            source, top, defines = load(name, **kwargs)
            interp, compiled, stats = _compare(source, top, defines, until)
            speedup = interp / compiled
            _RESULTS[f"{name}/interp"] = interp
            _RESULTS[f"{name}/compiled"] = compiled
            _RESULTS[f"{name}/speedup"] = speedup
            _RESULTS[f"{name}/blocks"] = stats["blocks"]
            _RESULTS[f"{name}/tier_hits"] = stats["tier_hits"]
            floor = TABLE1_FLOORS[name]
            assert speedup >= floor, (
                f"{name}: compiled tier {speedup:.2f}x vs the "
                f"interpreter (floor {floor}x)")

    benchmark.pedantic(run, rounds=1, iterations=1)


# ---------------------------------------------------------------------
# symbolic parity (the paper's Table-1 protocol)
# ---------------------------------------------------------------------


def test_symbolic_parity(benchmark):
    def run():
        for name, (kwargs, until) in SYMBOLIC_WORKLOADS.items():
            source, top, defines = load(name, **kwargs)
            interp, compiled, _ = _compare(source, top, defines, until,
                                           seed=None)
            parity = interp / compiled
            # "parity" carries no gate direction keyword on purpose —
            # see the module docstring.
            _RESULTS[f"{name}/symbolic_parity"] = parity
            assert parity >= SYMBOLIC_PARITY_BOUND, (
                f"{name} (symbolic): compiled tier {parity:.2f}x vs "
                f"the interpreter (bound {SYMBOLIC_PARITY_BOUND}x)")

    benchmark.pedantic(run, rounds=1, iterations=1)


# ---------------------------------------------------------------------
# the compute mix — the ≥3x gate
# ---------------------------------------------------------------------

#: The Table-1 worst case's dominant regime: the GCD datapath's
#: Euclid loop over concrete operands (the paper's observation that
#: most of an RTL run is concrete).  Dense straight-line bodies are
#: exactly what block fusion compiles away.
MIX_DESIGN = """
module bench_compiled_mix;
  reg [31:0] a, b, t, acc, x, y;
  integer i;
  initial begin
    acc = 0;
    for (i = 0; i < 2000; i = i + 1) begin
      a = (i * 32'h9E3779B9) | 1;
      b = (i * 32'h85EBCA6B) | 1;
      while (b != 0) begin
        t = a % b;
        a = b;
        b = t;
        x = (a ^ b) + (t >> 3);
        y = x & 32'hFFFF00FF;
        acc = acc + y;
      end
      acc = acc ^ a;
    end
    $finish;
  end
endmodule
"""


def test_compute_mix_speedup(benchmark):
    def run():
        interp, compiled, stats = _compare(
            MIX_DESIGN, "bench_compiled_mix", None, None)
        speedup = interp / compiled
        hits = stats["tier_hits"]
        misses = stats["tier_misses"]
        assert hits > 0 and hits / (hits + misses) > 0.9, (
            "the mix must run almost entirely on the word fast path "
            f"({hits} hits / {misses} misses)")
        _RESULTS["mix/interp"] = interp
        _RESULTS["mix/compiled"] = compiled
        _RESULTS["mix/speedup"] = speedup
        _RESULTS["mix/tier_hits"] = hits
        assert speedup >= MIX_FLOOR, (
            f"compute mix speedup {speedup:.2f}x below the "
            f"{MIX_FLOOR}x floor")

    benchmark.pedantic(run, rounds=1, iterations=1)


# ---------------------------------------------------------------------
# report + trajectory entry
# ---------------------------------------------------------------------


def test_compiled_report(benchmark):
    def build_report():
        lines = [
            "Compiled tier vs interpreter (bit-identical runs)",
            f"{'workload':22s} {'interpreter':>12s} {'compiled':>12s} "
            f"{'speedup':>9s} {'floor':>7s}",
        ]
        for name in (*TABLE1_WORKLOADS, "mix"):
            floor = TABLE1_FLOORS.get(name, MIX_FLOOR)
            label = name if name == "mix" else f"{name} (conventional)"
            lines.append(
                f"{label:22s} {_RESULTS[f'{name}/interp']:11.3f}s "
                f"{_RESULTS[f'{name}/compiled']:11.3f}s "
                f"{_RESULTS[f'{name}/speedup']:8.2f}x {floor:6.2f}x")
        for name in SYMBOLIC_WORKLOADS:
            parity = _RESULTS[f"{name}/symbolic_parity"]
            lines.append(
                f"{name + ' (symbolic)':22s} {'':>12s} {'':>12s} "
                f"{parity:8.2f}x {SYMBOLIC_PARITY_BOUND:6.2f}x")
        report("compiled", lines)
        report_json("compiled", dict(_RESULTS))

        # --- trajectory entry (repo-root perf baseline) -------------
        entry = {
            "recorded": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "bench": "compiled",
            "mix_speedup": round(_RESULTS["mix/speedup"], 2),
            "gcd_speedup": round(_RESULTS["gcd/speedup"], 2),
            "dram_speedup": round(_RESULTS["dram/speedup"], 2),
            "risc8_speedup": round(_RESULTS["risc8/speedup"], 2),
            # parity cells: recorded, not gated (noise-dominated)
            "gcd_symbolic_parity": round(
                _RESULTS["gcd/symbolic_parity"], 2),
            "dram_symbolic_parity": round(
                _RESULTS["dram/symbolic_parity"], 2),
            "floors": {"mix": MIX_FLOOR, **TABLE1_FLOORS},
        }
        trajectory = []
        if os.path.exists(_TRAJECTORY):
            with open(_TRAJECTORY, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        trajectory.append(entry)
        with open(_TRAJECTORY, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    benchmark.pedantic(build_report, rounds=1, iterations=1)
