"""Section 5 / Fig. 10: error-trace extraction and resimulation cost.

The paper's Fig. 10 testbench — a for-loop whose trip count depends on
a symbolic value, with a conditionally-skipped ``$random`` inside — is
the stress case for the invocation-list bookkeeping.  This bench
measures the three phases separately:

* symbolic simulation to the violation,
* witness extraction + control filtering (building the error trace),
* concrete resimulation of the trace.

and verifies the round trip: every extracted trace re-triggers the
assertion concretely.
"""

from __future__ import annotations

import itertools

import pytest

import repro
from repro.sim.trace import ErrorTrace, TraceEntry, _concretize, \
    build_error_trace

from benchmarks.conftest import report

SOURCE = r"""
module tb;
  reg [1:0] a;
  reg [2:0] b;
  reg [4:0] c;
  integer i;
  initial begin
    a = $random;
    c = 0;
    for (i = 0; i <= a; i = i + 1) begin
      if (a != i + 1) begin
        b = $random;
        c = c + b;
      end
    end
    $assert(c < 20);
  end
endmodule
"""

_STATE: dict = {}


def _simulate():
    sim = repro.open_sim(SOURCE)
    result = sim.run()
    assert result.violations
    _STATE["sim"] = sim
    _STATE["violation"] = result.violations[0]
    return result


def _extract_trace():
    sim = _STATE["sim"]
    violation = _STATE["violation"]
    where = {c.index: c.where for c in sim.program.callsites}
    trace = build_error_trace(sim.mgr, violation.condition,
                              sim.kernel.random_log, where)
    _STATE["trace"] = trace
    return trace


def _resimulate():
    return _STATE["sim"].resimulate(_STATE["trace"])


def test_trace_simulate(benchmark):
    benchmark.pedantic(_simulate, rounds=1, iterations=1)


def test_trace_extract(benchmark):
    if "sim" not in _STATE:
        _simulate()
    benchmark.pedantic(_extract_trace, rounds=1, iterations=1)


def test_trace_resimulate(benchmark):
    if "trace" not in _STATE:
        _simulate()
        _extract_trace()
    benchmark.pedantic(_resimulate, rounds=1, iterations=1)


def test_trace_report(benchmark):
    def build_report():
        if "trace" not in _STATE:
            _simulate()
            _extract_trace()
        sim = _STATE["sim"]
        violation = _STATE["violation"]
        mgr = sim.mgr
        total = mgr.sat_count(violation.condition)
        where = {c.index: c.where for c in sim.program.callsites}

        lines = [
            "Fig. 10 — error traces through a data-dependent loop",
            f"violating assignments: {total}",
            f"$random invocations logged: {len(sim.kernel.random_log)}",
            "",
            "sample traces (executed / skipped interleave, per the paper):",
        ]
        replayed = 0
        skipped_seen = False
        support = sorted(mgr.support(violation.condition))
        for cube in itertools.islice(
            mgr.all_sat(violation.condition, levels=support), 8
        ):
            entries = []
            for inv in sim.kernel.random_log:
                executed = mgr.eval(inv.control, cube)
                value = _concretize(mgr, inv.vector, cube) if executed \
                    else None
                entries.append(TraceEntry(
                    callsite_index=inv.callsite_index,
                    where=where.get(inv.callsite_index, "?"),
                    seq=inv.seq, time=inv.time, executed=executed,
                    value=value))
            trace = ErrorTrace(witness=dict(cube), entries=entries)
            concrete = sim.resimulate(trace)
            assert concrete.violations, "round trip must reproduce"
            replayed += 1
            flags = "".join("E" if e.executed else "-" for e in entries)
            if "-" in flags[:-1]:
                skipped_seen = True
            lines.append(
                f"  a={concrete.value('a').to_int()} c="
                f"{concrete.value('c').to_int():2d} "
                f"invocations={flags}"
            )
        lines.append(f"replayed {replayed} traces, all reproduced the "
                     "violation")
        report("traces", lines)
        assert replayed >= 4
        assert skipped_seen, \
            "at least one trace must skip a mid-loop invocation (Fig. 10)"

    benchmark.pedantic(build_report, rounds=1, iterations=1)
