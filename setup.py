"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file only
exists so ``pip install -e .`` works on environments without the
``wheel`` package (legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
