// ---------------------------------------------------------------------
// Round-robin bus arbiter with a non-synthesizable fairness checker.
//
// Not one of the paper's Table-1 designs — an additional workload that
// exercises a different symbolic-simulation profile: *all* inputs
// symbolic on every cycle (the four request lines), moderate
// sequential depth, and properties that quantify over time
// (grant-implies-request, one-hot grants, bounded waiting).
//
// The checker is plain testbench Verilog: it snapshots requests and
// grants each cycle, tracks per-master starvation counters in zero
// time, and raises `goal` if any master with a pending request waits
// longer than the round-trip bound — exactly the style of checker the
// paper argues symbolic RTL simulation exists to support.
// ---------------------------------------------------------------------

module arbiter(clk, rst, req, grant);
  input clk, rst;
  input  [3:0] req;
  output [3:0] grant;

  reg [3:0] grant;
  reg [1:0] last;              // most recently granted master

  // rotate priority: masters are scanned starting after `last`
  function [3:0] pick;
    input [3:0] requests;
    input [1:0] from;
    integer k;
    reg [1:0] idx;
    begin
      pick = 4'b0000;
      for (k = 1; k <= 4; k = k + 1) begin
        idx = from + k[1:0];
        if (requests[idx] && pick == 4'b0000)
          pick = 4'b0001 << idx;
      end
    end
  endfunction

  always @(posedge clk) begin
    if (rst) begin
      grant <= 4'b0000;
      last <= 2'd3;
    end
    else begin
      grant <= pick(req, last);
      if (pick(req, last) != 4'b0000) begin
        // record which master won (one-hot to index)
        case (pick(req, last))
          4'b0001: last <= 2'd0;
          4'b0010: last <= 2'd1;
          4'b0100: last <= 2'd2;
          default: last <= 2'd3;
        endcase
      end
    end
  end
endmodule

module arbiter_tb;
  reg clk, rst;
  reg [3:0] req;
  wire [3:0] grant;
  reg goal;
  integer m;

  // checker state
  reg [3:0] waiting [0:3];     // starvation counter per master
  reg [3:0] req_q;             // requests sampled before the edge

  arbiter dut(.clk(clk), .rst(rst), .req(req), .grant(grant));

  always #5 clk = ~clk;

  // fresh symbolic request lines every cycle, changed away from the
  // sampling edge so DUT and checker see a stable value
  always @(negedge clk) begin
    if (!rst) req = $random;
  end

  // ---- non-synthesizable fairness / safety checker -------------------
  always @(posedge clk) begin
    if (!rst) begin
      req_q = req;             // value the DUT just sampled
      #2;                      // after the DUT's NBA updates settle
      // safety: one-hot grants only
      if ((grant & (grant - 1)) != 4'b0000) goal = 1;
      // safety: grant implies the request that was sampled
      if ((grant & ~req_q) != 4'b0000) goal = 1;
      // fairness: a continuously-requesting master is served within 4
      for (m = 0; m < 4; m = m + 1) begin
        if (req_q[m] && !grant[m]) begin
          waiting[m] = waiting[m] + 1;
          if (waiting[m] > 4) goal = 1;
        end
        else begin
          waiting[m] = 0;
        end
      end
    end
  end

  initial begin
    clk = 0; rst = 1; req = 0; goal = 0;
    waiting[0] = 0; waiting[1] = 0; waiting[2] = 0; waiting[3] = 0;
    $assert(goal == 0);
    #12 rst = 0;
    #`ARB_RUNTIME;
    $finish;
  end
endmodule
