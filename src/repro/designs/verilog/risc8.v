// ---------------------------------------------------------------------
// 8-bit accumulator RISC processor with testbench (Table 1, row "RISC").
//
// A small Harvard-architecture CPU: 16-word instruction ROM (concrete
// program), an accumulator datapath, flags, and a data input port that
// the testbench drives with *fresh symbolic variables on every clock
// cycle* — the paper's experimental setup for this design.
//
// Control flow (conditional branches on the symbolic zero flag) splits
// execution paths moderately: enough that event accumulation pays off,
// but the behavioral blocks are small enough that simulation without
// accumulation still terminates — matching the paper's RISC row, where
// accumulation gave ~2.6x and accumulation events an extra ~19%.
//
// The testbench contains a non-synthesizable golden model that mirrors
// the ISA semantics in zero time; `goal` flags any divergence and a
// single $assert watches it.
// ---------------------------------------------------------------------

module risc8(clk, rst, data_in, port_out, pc_out);
  input clk, rst;
  input  [7:0] data_in;
  output [7:0] port_out;
  output [3:0] pc_out;

  // opcode map
  parameter OP_NOP = 4'h0;
  parameter OP_LDI = 4'h1;   // acc = imm
  parameter OP_IN  = 4'h2;   // acc = data_in
  parameter OP_ADD = 4'h3;   // acc = acc + imm
  parameter OP_SUB = 4'h4;   // acc = acc - imm
  parameter OP_AND = 4'h5;   // acc = acc & imm
  parameter OP_XOR = 4'h6;   // acc = acc ^ imm
  parameter OP_JMP = 4'h7;   // pc = imm[3:0]
  parameter OP_JNZ = 4'h8;   // if (!zflag) pc = imm[3:0]
  parameter OP_OUT = 4'h9;   // port_out = acc
  parameter OP_SHL = 4'hA;   // acc = acc << 1
  parameter OP_ADI = 4'hB;   // acc = acc + data_in

  reg [7:0] port_out;
  reg [3:0] pc;
  reg [7:0] acc;
  reg zflag;
  reg [11:0] instr;             // {opcode[3:0], imm[7:0]}
  reg [11:0] imem [0:15];

  assign pc_out = pc;

  // The concrete demo program (also mirrored by the testbench).
  initial begin
    imem[0]  = {4'h2, 8'h00};   // IN          (fresh symbolic data)
    imem[1]  = {4'h8, 8'h04};   // JNZ 4       (split on fresh bits)
    imem[2]  = {4'h1, 8'h55};   // LDI 0x55
    imem[3]  = {4'h7, 8'h05};   // JMP 5
    imem[4]  = {4'h3, 8'h11};   // ADD 0x11
    imem[5]  = {4'hB, 8'h00};   // ADI         (acc += fresh data)
    imem[6]  = {4'h8, 8'h09};   // JNZ 9       (split again)
    imem[7]  = {4'h6, 8'h5A};   // XOR 0x5A
    imem[8]  = {4'h7, 8'h0A};   // JMP 10
    imem[9]  = {4'hA, 8'h00};   // SHL
    imem[10] = {4'h9, 8'h00};   // OUT
    imem[11] = {4'h2, 8'h00};   // IN          (fresh)
    imem[12] = {4'h8, 8'h0F};   // JNZ 15      (third split)
    imem[13] = {4'h5, 8'h0F};   // AND 0x0F
    imem[14] = {4'h9, 8'h00};   // OUT
    imem[15] = {4'h7, 8'h00};   // JMP 0
  end

  always @(posedge clk) begin
    if (rst) begin
      pc = 0;
      acc = 0;
      zflag = 1;
      port_out = 0;
    end
    else begin
      #1 instr = imem[pc];       // fetch (intra-cycle timing)
      pc = pc + 1;
      #1;                        // decode
      case (instr[11:8])
        OP_NOP: ;
        OP_LDI: acc = instr[7:0];
        OP_IN:  acc = data_in;
        OP_ADD: acc = acc + instr[7:0];
        OP_SUB: acc = acc - instr[7:0];
        OP_AND: acc = acc & instr[7:0];
        OP_XOR: acc = acc ^ instr[7:0];
        OP_JMP: pc = instr[3:0];
        OP_JNZ: if (!zflag) pc = instr[3:0];
        OP_OUT: port_out = acc;
        OP_SHL: acc = acc << 1;
        OP_ADI: acc = acc + data_in;
        default: ;
      endcase
      if (instr[11:8] != OP_JMP && instr[11:8] != OP_JNZ &&
          instr[11:8] != OP_OUT && instr[11:8] != OP_NOP)
        zflag = (acc == 0);
    end
  end
endmodule

module risc8_tb;
  reg clk, rst;
  reg [7:0] data_in;
  wire [7:0] port_out;
  wire [3:0] pc_out;

  // golden model state
  reg [3:0] gpc;
  reg [7:0] gacc;
  reg gz;
  reg [11:0] ginstr;
  reg [11:0] gmem [0:15];
  reg goal;

  risc8 dut(.clk(clk), .rst(rst), .data_in(data_in),
            .port_out(port_out), .pc_out(pc_out));

  always #5 clk = ~clk;

  // Fresh symbolic variables at the data-in lines on every rising edge.
  always @(posedge clk) begin
    if (!rst) data_in = $random;
  end

  // Non-synthesizable golden model, executed in zero time at each edge.
  always @(posedge clk) begin
    if (rst) begin
      gpc = 0; gacc = 0; gz = 1;
    end
    else begin
      #3;                         // sample after the DUT settles
      ginstr = gmem[gpc];
      gpc = gpc + 1;
      case (ginstr[11:8])
        4'h1: gacc = ginstr[7:0];
        4'h2: gacc = data_in;
        4'h3: gacc = gacc + ginstr[7:0];
        4'h4: gacc = gacc - ginstr[7:0];
        4'h5: gacc = gacc & ginstr[7:0];
        4'h6: gacc = gacc ^ ginstr[7:0];
        4'h7: gpc = ginstr[3:0];
        4'h8: if (!gz) gpc = ginstr[3:0];
        4'h9: if (port_out !== gacc) goal = 1;
        4'hA: gacc = gacc << 1;
        4'hB: gacc = gacc + data_in;
        default: ;
      endcase
      if (ginstr[11:8] != 4'h7 && ginstr[11:8] != 4'h8 &&
          ginstr[11:8] != 4'h9 && ginstr[11:8] != 4'h0)
        gz = (gacc == 0);
    end
  end

  initial begin
    gmem[0]  = {4'h2, 8'h00};   // IN          (fresh symbolic data)
    gmem[1]  = {4'h8, 8'h04};   // JNZ 4       (split on fresh bits)
    gmem[2]  = {4'h1, 8'h55};   // LDI 0x55
    gmem[3]  = {4'h7, 8'h05};   // JMP 5
    gmem[4]  = {4'h3, 8'h11};   // ADD 0x11
    gmem[5]  = {4'hB, 8'h00};   // ADI         (acc += fresh data)
    gmem[6]  = {4'h8, 8'h09};   // JNZ 9       (split again)
    gmem[7]  = {4'h6, 8'h5A};   // XOR 0x5A
    gmem[8]  = {4'h7, 8'h0A};   // JMP 10
    gmem[9]  = {4'hA, 8'h00};   // SHL
    gmem[10] = {4'h9, 8'h00};   // OUT
    gmem[11] = {4'h2, 8'h00};   // IN          (fresh)
    gmem[12] = {4'h8, 8'h0F};   // JNZ 15      (third split)
    gmem[13] = {4'h5, 8'h0F};   // AND 0x0F
    gmem[14] = {4'h9, 8'h00};   // OUT
    gmem[15] = {4'h7, 8'h00};   // JMP 0

    clk = 0; rst = 1; goal = 0; data_in = 0;
    $assert(goal == 0);
    #12 rst = 0;
    #`RISC_RUNTIME;
    $finish;
  end
endmodule
