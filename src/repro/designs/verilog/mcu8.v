// ---------------------------------------------------------------------
// MCU8 — an 8051-style micro-controller with a planted bug
// (paper Section 7, the headline experiment).
//
// Like the paper's 8051 setup, the core fetches its code stream from
// external data-in lines (8 bits) and has interrupt request lines
// (4 bits); the testbench drives *both* with fresh symbolic variables
// on every rising clock edge — 12 new variables per cycle, the paper's
// ratio exactly.
//
// The planted bug reproduces the paper's "one specific sequence of
// instructions and operands" property: the ADDC (add-with-carry)
// instruction drops the carry-in if an interrupt is accepted during
// its operand cycle.  Observing it requires, in order:
//
//   1. an EI instruction (0xB1) so the interrupt mask opens,
//   2. a SETB C instruction (0xA1) so the carry is 1 (otherwise the
//      dropped carry is invisible),
//   3. an ADDC immediate (0x3x) whose operand cycle coincides with an
//      asserted, enabled interrupt line.
//
// Under uniform random stimulus that window is ~2^-20 per cycle —
// conventional random simulation effectively never finds it, while
// symbolic simulation covers all 2^(12n) stimulus patterns at once
// and hits it after a handful of cycles.
//
// The checker is deliberately *non-synthesizable* testbench code: it
// peeks into the core with hierarchical references, snapshots
// architectural state in zero time, recomputes the ISA-correct ADDC
// result, and raises `goal`.  The only assertion in the whole design
// is $assert(goal == 0), matching the paper's methodology.
// ---------------------------------------------------------------------

module mcu8(clk, rst, code_in, irq, port_out, fetch_state);
  input clk, rst;
  input [7:0] code_in;      // external code stream (symbolic)
  input [3:0] irq;          // interrupt request lines (symbolic)
  output [7:0] port_out;
  output fetch_state;       // 1 during opcode fetch cycles

  reg [7:0] port_out;
  reg [7:0] acc;            // accumulator
  reg [7:0] breg;           // B register
  reg cy;                   // carry flag
  reg [7:0] r [0:7];        // register bank
  reg [3:0] ie;             // interrupt enable mask
  reg in_isr;               // servicing an interrupt
  reg [7:0] opcode;         // latched opcode during operand cycles
  reg state;                // 0 = fetch opcode, 1 = fetch operand
  reg int_taken;            // interrupt accepted this cycle
  reg [7:0] operand;

  assign fetch_state = (state == 0);

  always @(posedge clk) begin
    if (rst) begin
      acc = 0; breg = 0; cy = 0; ie = 0; in_isr = 0;
      opcode = 0; state = 0; port_out = 0; int_taken = 0;
    end
    else begin
      #1;  // settle after the testbench drives the buses
      // Interrupt sampling happens every cycle, also in the middle of
      // multi-byte instructions — this is what opens the bug window.
      int_taken = ((irq & ie) != 0) && !in_isr;
      if (state == 0) begin
        // opcode fetch cycle
        opcode = code_in;
        case (code_in[7:4])
          4'h1, 4'h2, 4'h3, 4'h4, 4'h5, 4'h6, 4'h7, 4'hC:
            state = 1;                      // two-byte instructions
          4'h8: r[code_in[2:0]] = acc;      // MOV Rn, A
          4'h9: acc = r[code_in[2:0]];      // MOV A, Rn
          4'hA: cy = code_in[0];            // SETB C / CLR C
          4'hB: begin                       // EI / DI
            if (code_in[0]) ie = 4'b1111;
            else ie = 4'b0000;
          end
          4'hD: begin                       // INC A
            acc = acc + 1;
          end
          4'hE: begin                       // RLC A (rotate left thru CY)
            {cy, acc} = {acc, cy};
          end
          4'hF: in_isr = 0;                 // RETI
          default: ;                        // NOP
        endcase
        if (int_taken && state == 0) in_isr = 1;
      end
      else begin
        // operand fetch / execute cycle
        operand = code_in;
        state = 0;
        case (opcode[7:4])
          4'h1: acc = operand;                          // MOV A,#imm
          4'h2: {cy, acc} = acc + operand;              // ADD A,#imm
          4'h3: begin                                   // ADDC A,#imm
`ifdef MCU_FIXED
            // Repaired edition (`MCU_FIXED`): the carry-in is added
            // unconditionally, as correct hardware would.
            {cy, acc} = acc + operand + cy;
`else
            // ---- PLANTED BUG ----------------------------------
            // The carry-in is dropped when an interrupt is taken
            // during this operand cycle.  Correct hardware would
            // compute acc + operand + cy unconditionally.
            if (int_taken)
              {cy, acc} = acc + operand;                // BUG: cy lost
            else
              {cy, acc} = acc + operand + cy;
            // ----------------------------------------------------
`endif
          end
          4'h4: {cy, acc} = {1'b0, acc} - {1'b0, operand}; // SUB (cy=borrow)
          4'h5: acc = acc & operand;                    // ANL
          4'h6: acc = acc | operand;                    // ORL
          4'h7: acc = acc ^ operand;                    // XRL
          4'hC: port_out = acc;                         // "SJMP": emit acc
          default: ;
        endcase
        if (int_taken) in_isr = 1;
      end
    end
  end
endmodule

module mcu8_tb;
  reg clk, rst;
  reg [7:0] code_in;
  reg [3:0] irq;
  wire [7:0] port_out;
  wire fetch_state;

  // checker state (non-synthesizable: zero-time snapshots + hierarchy)
  reg [7:0] chk_acc_before;
  reg chk_cy_before;
  reg chk_is_addc;
  reg [7:0] chk_expected;
  reg goal;

  mcu8 dut(.clk(clk), .rst(rst), .code_in(code_in), .irq(irq),
           .port_out(port_out), .fetch_state(fetch_state));

  always #5 clk = ~clk;

  // 12 fresh symbolic variables per rising edge: 8 code + 4 interrupt.
  // The first `MCU_QUIET cycles after reset drive concrete NOPs — the
  // processor's "initialization phase" during which the paper's Fig. 11
  // curves coincide; `MCU_PERIOD throttles injection for long runs.
  integer cyc;
  always @(posedge clk) begin
    if (!rst) begin
      cyc = cyc + 1;
      if (cyc > `MCU_QUIET && (cyc % `MCU_PERIOD) == 0) begin
        code_in = $random;
        irq = $random;
      end
      else begin
        code_in = 8'h00;
        irq = 4'h0;
      end
    end
  end

  // -------- non-synthesizable ADDC checker ---------------------------
  // Snapshot architectural state right before the core executes, then
  // recompute the ISA-correct result after it has.
  always @(posedge clk) begin
    if (!rst) begin
      chk_is_addc = (dut.state == 1) && (dut.opcode[7:4] == 4'h3);
      chk_acc_before = dut.acc;
      chk_cy_before = dut.cy;
      #2;  // after the core's execute phase
      if (chk_is_addc) begin
        chk_expected = chk_acc_before + code_in + chk_cy_before;
        if (dut.acc !== chk_expected) goal = 1;
      end
    end
  end

  initial begin
    clk = 0; rst = 1; goal = 0; code_in = 0; irq = 0; cyc = 0;
    $assert(goal == 0);
    #12 rst = 0;
    #`MCU_RUNTIME;
    $finish;
  end
endmodule
