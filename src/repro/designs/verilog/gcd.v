// ---------------------------------------------------------------------
// GCD circuit with delays (paper Table 1, row "GCD").
//
// A behavioral greatest-common-divisor unit built around a while loop
// whose iteration pattern depends entirely on the (symbolic) operand
// values — the worst case for event multiplication: every iteration
// splits execution paths on (a > b), and the loop exit is data
// dependent.  Each loop pass consumes simulated time, so paths with
// different iteration counts finish at different times and can only be
// recombined by event accumulation.
//
// The testbench drives symbolic operands, runs the unit through a
// simple req/ack handshake, and checks the result against a
// non-synthesizable reference model (Euclid by repeated subtraction in
// a zero-delay loop).
// ---------------------------------------------------------------------

module gcd_unit(clk, req, ack, op_a, op_b, result);
  parameter W = 4;
  parameter STEP = 2;         // per-iteration latency

  input clk;
  input req;
  output ack;
  input  [W-1:0] op_a;
  input  [W-1:0] op_b;
  output [W-1:0] result;

  reg ack;
  reg [W-1:0] result;
  reg [W-1:0] a, b;
  // progress bookkeeping — pure zero-delay control flow, the kind of
  // "large behavioral block" that makes accumulation essential: every
  // iteration splits paths several times with *no* intervening delay,
  // so only accumulation events (not queue merging at delay labels)
  // can recombine them before the next statement executes.
  reg parity;
  reg [1:0] status;
  reg almost_done;

  initial begin
    ack = 0;
    result = 0;
    parity = 0;
    status = 0;
    almost_done = 0;
  end

  always begin
    @(posedge req);
    a = op_a;
    b = op_b;
    // Degenerate operands resolve immediately.
    if (a == 0) begin
      result = b;
    end
    else if (b == 0) begin
      result = a;
    end
    else begin
      while (a != b) begin
        #STEP;                      // the data-dependent timing
        if (a > b) a = a - b;
        else       b = b - a;
        if (a[0]) parity = ~parity;
        else      parity = parity;
        if (a > b)      status = 1;
        else if (b > a) status = 2;
        else            status = 0;
        if ((a == 1) || (b == 1)) almost_done = 1;
        else                      almost_done = 0;
      end
      result = a;
    end
    #1 ack = 1;
    @(negedge req);
    #1 ack = 0;
  end
endmodule

// Reference model: subtraction Euclid in a zero-delay loop (function).
module gcd_tb;
  parameter W = `GCD_W;

  reg clk;
  reg req;
  wire ack;
  reg [W-1:0] op_a, op_b;
  wire [W-1:0] result;
  reg [W-1:0] expected;
  reg goal;                       // 1 when the checker saw a mismatch
  integer round;

  gcd_unit #(.W(W)) dut (
    .clk(clk), .req(req), .ack(ack),
    .op_a(op_a), .op_b(op_b), .result(result)
  );

  function [W-1:0] ref_gcd;
    input [W-1:0] x;
    input [W-1:0] y;
    begin
      if (x == 0) ref_gcd = y;
      else if (y == 0) ref_gcd = x;
      else begin
        while (x != y) begin
          if (x > y) x = x - y;
          else       y = y - x;
        end
        ref_gcd = x;
      end
    end
  endfunction

  always #5 clk = ~clk;

  initial begin
    clk = 0;
    req = 0;
    goal = 0;
    $assert(goal == 0);
    for (round = 0; round < `GCD_ROUNDS; round = round + 1) begin
      op_a = $random;
      op_b = $random;
      expected = ref_gcd(op_a, op_b);
      #2 req = 1;
      @(posedge ack);
      if (result !== expected) goal = 1;
      #2 req = 0;
      @(negedge ack);
      #2;
    end
    $finish;
  end
endmodule
