// ---------------------------------------------------------------------
// Timing-accurate DRAM model with testbench (paper Table 1, row "DRAM").
//
// A behavioral asynchronous DRAM: RAS/CAS row/column addressing with
// realistic timing checks (tRCD, tCAS, tRP, tRAS) modeled with delay
// and event control.  The key property, matching the paper's
// observation, is that the *symbolic* signals — address and data
// lines — flow only through the datapath (row/column latches and the
// memory array); all control decisions (RAS/CAS edges, read-vs-write)
// are concrete.  Event accumulation therefore has no work to do and
// all three accumulation levels cost the same.
//
// The testbench exercises early-write and read cycles on symbolic
// addresses/data, plus page-mode bursts, and checks read-back values
// against a behavioral mirror kept in the testbench.
// ---------------------------------------------------------------------

module dram(ras_n, cas_n, we_n, addr, dq_in, dq_out);
  parameter ROW_BITS = 2;
  parameter COL_BITS = 2;
  parameter WIDTH = 4;
  parameter T_RCD = 3;        // RAS-to-CAS delay
  parameter T_CAC = 2;        // CAS access time
  parameter T_OFF = 1;        // output turn-off after CAS high

  input ras_n, cas_n, we_n;
  input  [ROW_BITS-1:0] addr;   // multiplexed row/column address
  input  [WIDTH-1:0] dq_in;
  output [WIDTH-1:0] dq_out;

  reg [WIDTH-1:0] dq_out;
  reg [ROW_BITS-1:0] row_latch;
  reg [COL_BITS-1:0] col_latch;
  reg [WIDTH-1:0] cell [0:15];   // 2^(ROW_BITS+COL_BITS) words
  reg [ROW_BITS+COL_BITS-1:0] cell_addr;
  reg ras_active;

  initial begin
    dq_out = 4'bzzzz;
    ras_active = 0;
  end

  // Row-address strobe: latch the row on the falling edge of RAS.
  always @(negedge ras_n) begin
    row_latch = addr;
    ras_active = 1;
  end

  // Precharge on RAS rising edge.
  always @(posedge ras_n) begin
    #T_OFF ras_active = 0;
  end

  // Column strobe: latch the column, then perform the access.
  always @(negedge cas_n) begin
    col_latch = addr;
    cell_addr = {row_latch, col_latch};
    if (we_n == 0) begin
      // write cycle: data captured after the CAS hold time
      #1 cell[cell_addr] = dq_in;
    end
    else begin
      // read cycle: data valid T_CAC after CAS falls
      #T_CAC dq_out = cell[cell_addr];
    end
  end

  // Output goes high-impedance after CAS rises.
  always @(posedge cas_n) begin
    #T_OFF dq_out = 4'bzzzz;
  end
endmodule

module dram_tb;
  parameter ROW_BITS = 2;
  parameter COL_BITS = 2;
  parameter WIDTH = 4;

  reg ras_n, cas_n, we_n;
  reg [ROW_BITS-1:0] addr;
  reg [WIDTH-1:0] dq_drive;
  wire [WIDTH-1:0] dq;
  reg [WIDTH-1:0] mirror [0:15];  // behavioral reference
  reg [15:0] written;             // valid bits for the mirror
  reg [ROW_BITS-1:0] row_s;
  reg [COL_BITS-1:0] col_s;
  reg [WIDTH-1:0] data_s;
  reg [WIDTH-1:0] readback;
  reg goal;
  integer burst;

  dram #(.ROW_BITS(ROW_BITS), .COL_BITS(COL_BITS), .WIDTH(WIDTH)) dut (
    .ras_n(ras_n), .cas_n(cas_n), .we_n(we_n),
    .addr(addr), .dq_in(dq_drive), .dq_out(dq)
  );

  task write_cycle;
    input [ROW_BITS-1:0] row;
    input [COL_BITS-1:0] col;
    input [WIDTH-1:0] data;
    begin
      addr = row;
      #2 ras_n = 0;               // latch row
      #3 addr = col;              // tRCD
      we_n = 0;
      dq_drive = data;
      #1 cas_n = 0;               // latch column, early write
      #3 cas_n = 1;               // CAS pulse width
      we_n = 1;
      #2 ras_n = 1;               // precharge
      #4;                         // tRP
      mirror[{row, col}] = data;
      written[{row, col}] = 1;
    end
  endtask

  task read_cycle;
    input [ROW_BITS-1:0] row;
    input [COL_BITS-1:0] col;
    output [WIDTH-1:0] data;
    begin
      addr = row;
      #2 ras_n = 0;
      #3 addr = col;
      we_n = 1;
      #1 cas_n = 0;
      #3 data = dq;               // after tCAC
      cas_n = 1;
      #2 ras_n = 1;
      #4;
    end
  endtask

  initial begin
    ras_n = 1; cas_n = 1; we_n = 1;
    goal = 0;
    written = 0;
    $assert(goal == 0);
    #5;

    // Symbolic single write / read-back check.
    row_s = $random;
    col_s = $random;
    data_s = $random;
    write_cycle(row_s, col_s, data_s);
    read_cycle(row_s, col_s, readback);
    if (readback !== data_s) goal = 1;

    // A second, independent symbolic location: page-mode style burst.
    for (burst = 0; burst < `DRAM_BURSTS; burst = burst + 1) begin
      row_s = $random;
      col_s = $random;
      data_s = $random;
      write_cycle(row_s, col_s, data_s);
      read_cycle(row_s, col_s, readback);
      if (readback !== data_s) goal = 1;
    end

    $finish;
  end
endmodule
