// alu4 — 4-bit ALU with a planted carry-out bug, plus a golden-model
// checker testbench.  The smallest member of the planted-bug corpus:
// the testbench drives fully symbolic operands/opcode every cycle
// (10 symbolic variables), so the symbolic checker covers all 2^10
// input combinations per cycle and finds the planted bug on the first
// ADD whose true carry disagrees with the buggy estimate.
//
// Macros:
//   ALU_RUNTIME  simulation run length in time units (10 per cycle)
//   ALU_FIXED    when defined, the planted bug is repaired
//
// Planted bug (default edition): the ADD carry-out is computed as
// a[3] & b[3] instead of bit 4 of the true 5-bit sum — wrong exactly
// when the top operand bits disagree and the low bits carry in
// (e.g. a=4'b1000, b=4'b1000 is fine; a=4'b1100, b=4'b0100 is not).

module alu4(a, b, op, res, cout);
  input  [3:0] a, b;
  input  [1:0] op;
  output reg [3:0] res;
  output reg cout;

  always @(a or b or op) begin
    cout = 0;
    case (op)
      2'd0: begin                                   // ADD
`ifdef ALU_FIXED
        {cout, res} = a + b;
`else
        res  = a + b;                               // PLANTED BUG:
        cout = a[3] & b[3];                         // true carry lost
`endif
      end
      2'd1: {cout, res} = {1'b0, a} - {1'b0, b};    // SUB (cout=borrow)
      2'd2: res = a & b;                            // AND
      2'd3: res = a | b;                            // OR
    endcase
  end
endmodule

module alu4_tb;
  reg clk;
  reg [3:0] a, b;
  reg [1:0] op;
  wire [3:0] res;
  wire cout;
  reg [4:0] gold;
  reg goal;

  alu4 dut(.a(a), .b(b), .op(op), .res(res), .cout(cout));

  always #5 clk = ~clk;

  // Inject fully symbolic stimulus at each rising edge, then compare
  // the settled DUT outputs against the golden model two units later.
  always @(posedge clk) begin
    a = $random;
    b = $random;
    op = $random;
    #2;
    case (op)
      2'd0: gold = a + b;
      2'd1: gold = {1'b0, a} - {1'b0, b};
      2'd2: gold = {1'b0, a & b};
      2'd3: gold = {1'b0, a | b};
    endcase
    if ({cout, res} !== gold) goal = 1;
  end

  initial begin
    clk = 0; a = 0; b = 0; op = 0; gold = 0; goal = 0;
    $assert(goal == 0);
    #`ALU_RUNTIME;
    $finish;
  end
endmodule
