"""Benchmark designs (Verilog sources) and their loaders.

Four designs reproduce the paper's evaluation workloads:

=========  ============================  ==============================
name       paper artifact                role
=========  ============================  ==============================
``gcd``    GCD circuit with delays       Table 1 worst case: while loop
                                         splitting paths on symbolic
                                         operands
``dram``   timing-accurate DRAM model    Table 1 accumulation-neutral
                                         case: symbolic data flows only
                                         through the datapath
``risc8``  8-bit RISC processor          Table 1 intermediate case:
                                         symbolic data-in every cycle
``mcu8``   8051-style micro-controller   Section 7 bug hunt: planted
           with a known bug              sequence-dependent bug, 12
                                         symbolic variables per cycle
=========  ============================  ==============================

``alu4`` (4-bit ALU with a planted carry-out bug) and ``arbiter``
(round-robin arbiter + fairness checker) are extra workloads beyond
the paper's table.  The designs with planted bugs take ``fixed=True``
to load the repaired edition; :data:`PLANTED_BUGS` registers them as
the regression corpus for the mutation/fault campaign engine
(:mod:`repro.mutate`).

Each loader returns (source_text, top_module_name, defines) with the
required workload-size macros filled in.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))


def _read(name: str) -> str:
    path = os.path.join(_HERE, "verilog", name)
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def gcd_design(rounds: int = 1, width: int = 4) -> Tuple[str, str, Dict[str, str]]:
    """GCD circuit + testbench.

    ``rounds`` symbolic operand pairs are pushed through the unit; each
    round adds 2×``width`` symbolic variables and a data-dependent
    while loop of up to ``2^width - 1`` iterations.  Without event
    accumulation the number of live execution paths approaches
    ``2^(2·width·rounds)`` — keep ``width·rounds`` small for the NONE
    mode.
    """
    return _read("gcd.v"), "gcd_tb", {
        "GCD_ROUNDS": str(rounds),
        "GCD_W": str(width),
    }


def dram_design(bursts: int = 2) -> Tuple[str, str, Dict[str, str]]:
    """DRAM timing model + testbench with ``bursts`` extra write/read
    pairs on symbolic addresses/data."""
    return _read("dram.v"), "dram_tb", {"DRAM_BURSTS": str(bursts)}


def risc8_design(runtime: int = 200) -> Tuple[str, str, Dict[str, str]]:
    """RISC8 processor + golden-model testbench, run for ``runtime``
    time units (one instruction cycle = 10 units)."""
    return _read("risc8.v"), "risc8_tb", {"RISC_RUNTIME": str(runtime)}


def mcu8_design(
    runtime: int = 100, quiet: int = 0, period: int = 1,
    fixed: bool = False,
) -> Tuple[str, str, Dict[str, str]]:
    """MCU8 micro-controller with the planted ADDC/interrupt bug.

    ``runtime`` simulation time units (10 per cycle); the shortest
    instruction sequence exposing the bug completes within ~50 units (4
    cycles after reset release at t=12) with the default full-rate
    injection.  ``quiet`` cycles after reset receive concrete NOPs (the
    init phase of Fig. 11); ``period`` injects symbols only every Nth
    cycle, throttling BDD growth on long runs.  ``fixed=True`` loads
    the repaired edition (the carry-in added unconditionally) — the
    clean baseline for mutation campaigns.
    """
    defines = {
        "MCU_RUNTIME": str(runtime),
        "MCU_QUIET": str(quiet),
        "MCU_PERIOD": str(period),
    }
    if fixed:
        defines["MCU_FIXED"] = "1"
    return _read("mcu8.v"), "mcu8_tb", defines


def alu4_design(
    runtime: int = 60, fixed: bool = False
) -> Tuple[str, str, Dict[str, str]]:
    """4-bit ALU with a planted ADD carry-out bug + golden-model
    checker; 10 fully symbolic stimulus bits per cycle (10 units each).
    ``fixed=True`` loads the repaired edition."""
    defines = {"ALU_RUNTIME": str(runtime)}
    if fixed:
        defines["ALU_FIXED"] = "1"
    return _read("alu4.v"), "alu4_tb", defines


def arbiter_design(runtime: int = 100) -> Tuple[str, str, Dict[str, str]]:
    """Round-robin arbiter + fairness checker (extra workload, not one
    of the paper's Table-1 designs); 4 symbolic request lines per
    cycle, one-hot/grant-implies-request/bounded-waiting properties."""
    return _read("arbiter.v"), "arbiter_tb", {"ARB_RUNTIME": str(runtime)}


#: Planted-bug regression corpus for mutation/fault campaigns: design
#: name -> loader kwargs for the buggy edition, a time horizon that
#: provably exposes the bug symbolically, and a human description.
#: The fixed edition of each entry (``fixed=True``) runs clean over
#: the same horizon; ``fixed_fast`` marks entries whose clean run is
#: cheap enough for tier-1 tests and campaign baselines (a clean
#: symbolic mcu8 run never prunes on a violation, so its BDD state
#: accumulates across every injected cycle — minutes, not seconds).
PLANTED_BUGS: Dict[str, Dict[str, object]] = {
    "mcu8": {
        "params": {"runtime": 50},
        "until": 60,
        "fixed_fast": False,
        "description": "ADDC carry-in dropped when an interrupt is "
                       "taken during the operand cycle",
    },
    "alu4": {
        "params": {"runtime": 60},
        "until": 80,
        "fixed_fast": True,
        "description": "ADD carry-out computed as a[3] & b[3] instead "
                       "of the true 5-bit sum's carry",
    },
}


def load(name: str, **kwargs) -> Tuple[str, str, Dict[str, str]]:
    """Load a design by name
    (``gcd``/``dram``/``risc8``/``mcu8``/``alu4``/``arbiter``)."""
    loaders = {
        "gcd": gcd_design,
        "dram": dram_design,
        "risc8": risc8_design,
        "mcu8": mcu8_design,
        "alu4": alu4_design,
        "arbiter": arbiter_design,
    }
    if name not in loaders:
        raise KeyError(f"unknown design {name!r}; pick from {sorted(loaders)}")
    return loaders[name](**kwargs)
