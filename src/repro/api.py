"""``repro.api`` — the canonical request/options schema
(``repro.serve.request/1``).

Four entry points accept "run this design with these options": ``symsim``
CLI flags, ``symsim batch`` manifests, ``symsim mutate`` manifests, and
HTTP submissions to the :mod:`repro.serve` front door.  Before this
module each hand-rolled its own :class:`~repro.sim.kernel.SimOptions` /
budget / retry parsing; now all four are thin adapters over one
implementation:

* :func:`parse_options` — the ``"options"`` mapping (``OPTION_KEYS``),
  including the ``seed`` and ``budget`` conveniences;
* :func:`parse_budgets` — the ``"budget"`` object →
  :class:`~repro.guard.ResourceBudgets`;
* :func:`parse_retry` — the ``"retry"`` object →
  :class:`~repro.batch.queue.RetryPolicy`;
* :func:`resolve_design` / :func:`parse_run` — one run spec (``design`` /
  ``path`` / ``source`` + ``params``/``top``/``defines``/``until``/
  ``vcd``/``options``) → a frozen :class:`~repro.batch.RunRequest`;
* :func:`options_from_flags` — the ``symsim`` argparse namespace routed
  through the same schema.

The module also owns the **semantic/operational option split** the
``BATCHJRNL/1`` journal and the serve result cache share:
:data:`OPERATIONAL_OPTIONS` names the :class:`SimOptions` fields that
never change what a simulation computes (paths, heartbeat cadence,
observability plumbing, the compiled tier toggle), and
:func:`semantic_options` folds the remaining fields into the
JSON-stable dict that request fingerprints hash.  Two requests with
equal semantic options (and design/seed/bound) produce byte-identical
results — which is exactly what lets a journaled outcome stand in for
a rerun and a served result be deduplicated from cache.

Every parse failure raises :class:`~repro.errors.RequestError` with a
single-line message naming the offending spec.
"""

from __future__ import annotations

import dataclasses
import enum
import os
from typing import Dict, Optional, Tuple

from repro.errors import ReproError, RequestError

#: Version tag of the request schema all entry points parse.
REQUEST_SCHEMA = "repro.serve.request/1"

#: ``"options"`` mapping keys -> :class:`SimOptions` field.  ``seed``
#: is sugar for ``concrete_random``; ``budget`` builds a
#: :class:`~repro.guard.ResourceBudgets` via :func:`parse_budgets`.
OPTION_KEYS = {
    "accumulation": "accumulation",
    "seed": "concrete_random",
    "concrete_random": "concrete_random",
    "max_step_activity": "max_step_activity",
    "stop_on_violation": "stop_on_violation",
    "check_unknown_assert": "check_unknown_assert",
    "depth_first_priorities": "depth_first_priorities",
    "echo_output": "echo_output",
    "trace_stats": "trace_stats",
    "gc_threshold": "gc_threshold",
    "dyn_reorder": "dyn_reorder",
    "reorder_threshold": "reorder_threshold",
    "reorder_growth": "reorder_growth",
    "no_fastpath": "no_fastpath",
    "compile_tier": "compile_tier",
    "checkpoint_every": "checkpoint_every",
    "heartbeat_every": "heartbeat_every",
    "budget": "budgets",
}

#: :class:`SimOptions` fields excluded from request fingerprints: they
#: never change what a simulation computes.  Per-process objects the
#: batch forbids anyway (``obs``, ``heartbeat_callback``), operational
#: knobs the engine rewrites per worker/run (paths, heartbeat cadence,
#: interrupt handling), and ``compile_tier`` — the compiled tier is
#: bit-identical to the interpreter, so toggling it must not invalidate
#: a resumable journal or miss the serve result cache.  Everything else
#: is semantic and fingerprinted.
OPERATIONAL_OPTIONS = frozenset({
    "obs", "heartbeat_callback", "heartbeat_path", "heartbeat_every",
    "heartbeat_name", "vcd_path", "checkpoint_dir", "defer_interrupt",
    "compile_tier",
})


def canonical_option(value):
    """Fold an options field value into a JSON-stable shape."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {key: canonical_option(val)
                for key, val in sorted(dataclasses.asdict(value).items())}
    if isinstance(value, (list, tuple)):
        return [canonical_option(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical_option(val)
                for key, val in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # scripted chaos plans and other structured objects: stable repr of
    # their dataclass payloads where available, else repr
    faults = getattr(value, "faults", None)
    if faults is not None:
        return [canonical_option(fault) for fault in faults]
    return repr(value)


def semantic_options(options) -> Dict[str, object]:
    """The JSON-stable dict of an options object's *semantic* fields.

    This is the half of :class:`SimOptions` that request fingerprints
    hash — the ``BATCHJRNL/1`` journal refuses to resume across a
    change to any of these, and the serve result cache treats equality
    here (plus design/bound/VCD) as "same simulation".
    """
    return {
        f.name: canonical_option(getattr(options, f.name))
        for f in dataclasses.fields(options)
        if f.name not in OPERATIONAL_OPTIONS
    }


# ---------------------------------------------------------------------
# options / budget / retry parsing
# ---------------------------------------------------------------------


def parse_budgets(spec: Dict, where: str):
    """The ``"budget"`` object → :class:`~repro.guard.ResourceBudgets`."""
    from repro.guard import ResourceBudgets

    if not isinstance(spec, dict):
        raise RequestError(f"{where}: budget must be an object")
    known = {f.name for f in dataclasses.fields(ResourceBudgets)}
    bad = set(spec) - known
    if bad:
        raise RequestError(f"{where}: unknown budget keys {sorted(bad)}")
    try:
        return ResourceBudgets(**spec)
    except TypeError as exc:
        raise RequestError(f"{where}: bad budget object: {exc}") from exc


def parse_options(spec: Dict, where: str):
    """The ``"options"`` mapping → :class:`~repro.sim.SimOptions`.

    The one implementation behind every entry point.  Unknown keys are
    an error (single-line, naming the known set); ``accumulation``
    accepts the mode name; ``budget`` routes through
    :func:`parse_budgets`.
    """
    from repro.compile.instructions import AccumulationMode
    from repro.sim import SimOptions

    if not isinstance(spec, dict):
        raise RequestError(f"{where}: \"options\" must be an object")
    fields = {}
    for key, value in spec.items():
        if key not in OPTION_KEYS:
            raise RequestError(
                f"{where}: unknown option {key!r} "
                f"(known: {sorted(OPTION_KEYS)})")
        if key == "accumulation":
            if not isinstance(value, AccumulationMode):
                try:
                    value = AccumulationMode[str(value).upper()]
                except KeyError:
                    raise RequestError(
                        f"{where}: unknown accumulation mode "
                        f"{value!r}") from None
        elif key == "budget":
            value = parse_budgets(value, where)
        fields[OPTION_KEYS[key]] = value
    try:
        return SimOptions(**fields)
    except TypeError as exc:
        raise RequestError(f"{where}: bad options: {exc}") from exc


def parse_retry(spec: Dict, where: str):
    """The ``"retry"`` object → :class:`~repro.batch.queue.RetryPolicy`.

    Keys mirror the policy fields::

        {"max_attempts": 4, "backoff_base": 0.5, "backoff_cap": 10,
         "jitter_frac": 0.25, "seed": 7,
         "retry_statuses": ["aborted"], "lease_timeout": 120}
    """
    from repro.batch.queue import RetryPolicy

    if not isinstance(spec, dict):
        raise RequestError(f"{where}: \"retry\" must be an object")
    known = {f.name for f in dataclasses.fields(RetryPolicy)}
    bad = set(spec) - known
    if bad:
        raise RequestError(
            f"{where}: unknown retry keys {sorted(bad)} "
            f"(known: {sorted(known)})")
    fields = dict(spec)
    if "retry_statuses" in fields:
        statuses = fields["retry_statuses"]
        if not isinstance(statuses, list):
            raise RequestError(f"{where}: retry_statuses must be an array")
        fields["retry_statuses"] = frozenset(str(s) for s in statuses)
    try:
        return RetryPolicy(**fields)
    except (TypeError, ReproError) as exc:
        # RetryPolicy validates in __post_init__ with BatchError; fold
        # both shapes into the schema's single-line error contract.
        raise RequestError(f"{where}: bad retry object: {exc}") from exc


# ---------------------------------------------------------------------
# run specs (manifest runs / HTTP submissions)
# ---------------------------------------------------------------------


def resolve_design(spec: Dict, base_dir: Optional[str], where: str,
                   inline: bool = False) -> Tuple[
                       Optional[str], Optional[str], object, object]:
    """Resolve a spec's design: ``(source, path, top, defines)``.

    A spec names its design exactly one of three ways: ``design``
    (+ optional ``params``) loads a built-in benchmark from
    :mod:`repro.designs`; ``path`` points at a Verilog file, resolved
    relative to ``base_dir`` (with ``base_dir=None`` — the HTTP entry
    point — only absolute paths are accepted); ``source`` carries
    inline Verilog text.  With ``inline=True`` a ``path`` design is
    read immediately and returned as source (the mutation engine works
    on text); otherwise the path is returned for the lazy
    :class:`~repro.batch.RunRequest` read.
    """
    ways = [key for key in ("design", "path", "source") if key in spec]
    if len(ways) != 1:
        raise RequestError(
            f"{where}: give exactly one of \"design\", \"path\" "
            f"or \"source\" (got {ways or 'none'})")
    source: Optional[str] = None
    file_path: Optional[str] = None
    top = spec.get("top")
    defines = dict(spec.get("defines", {}) or {})
    if "design" in spec:
        from repro import designs

        params = spec.get("params", {})
        if not isinstance(params, dict):
            raise RequestError(f"{where}: \"params\" must be an object")
        try:
            source, top, builtin_defines = designs.load(
                spec["design"], **params)
        except (KeyError, TypeError) as exc:
            raise RequestError(f"{where}: {exc}") from exc
        # built-in workload macros first; explicit defines override
        defines = {**builtin_defines, **defines}
    elif "path" in spec:
        file_path = spec["path"]
        if not isinstance(file_path, str) or not file_path:
            raise RequestError(f"{where}: \"path\" must be a non-empty "
                               "string")
        if not os.path.isabs(file_path):
            if base_dir is None:
                raise RequestError(
                    f"{where}: \"path\" must be absolute here "
                    f"(got {file_path!r})")
            file_path = os.path.join(base_dir, file_path)
        if inline:
            try:
                with open(file_path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                raise RequestError(
                    f"{where}: cannot read source file {file_path!r}: "
                    f"{exc}") from exc
            file_path = None
        elif not os.path.exists(file_path):
            raise RequestError(
                f"{where}: source file {file_path!r} not found")
    else:
        source = spec["source"]
        if not isinstance(source, str) or not source:
            raise RequestError(f"{where}: \"source\" must be a non-empty "
                               "string")
    return source, file_path, top, (defines or None)


def parse_run(spec: Dict, defaults: Optional[Dict] = None,
              base_dir: Optional[str] = None,
              where: Optional[str] = None,
              name: Optional[str] = None):
    """One run spec → a frozen :class:`~repro.batch.RunRequest`.

    ``spec`` is the manifest-run / HTTP-submission shape: ``name``,
    the design (one of ``design``/``path``/``source``), ``params``,
    ``top``, ``defines``, ``until``, ``vcd`` and ``options``.
    ``defaults`` supplies any per-run field not set on the spec itself
    (``options`` dictionaries are merged key-wise, the spec's entries
    winning).  ``name`` overrides the spec's (the serve front door
    assigns run ids server-side).
    """
    from repro.batch.request import RunRequest

    defaults = defaults or {}
    if not isinstance(spec, dict):
        raise RequestError(f"{where or 'run spec'} is not an object")
    run_name = name if name is not None else spec.get("name")
    if not run_name or not isinstance(run_name, str):
        raise RequestError(f"{where or 'run spec'} needs a \"name\"")
    where = where or f"run {run_name!r}"

    merged = dict(defaults)
    merged.update(spec)
    # design identity never merges from defaults — a run must say what
    # it simulates; everything else (top/defines/until/vcd/options) may.
    design_spec = {key: spec[key]
                   for key in ("design", "params", "path", "source")
                   if key in spec}
    for key in ("top", "defines"):
        if key in merged:
            design_spec[key] = merged[key]
    source, file_path, top, defines = resolve_design(
        design_spec, base_dir, where)

    option_spec = {**(defaults.get("options") or {}),
                   **(spec.get("options") or {})}
    try:
        return RunRequest(
            name=run_name,
            source=source,
            path=file_path,
            top=top,
            defines=defines,
            options=parse_options(option_spec, where),
            until=merged.get("until"),
            vcd=bool(merged.get("vcd", False)),
        )
    except TypeError as exc:
        raise RequestError(f"{where}: {exc}") from exc


# ---------------------------------------------------------------------
# the CLI adapter
# ---------------------------------------------------------------------


def options_from_flags(args, obs=None):
    """The ``symsim`` argparse namespace → :class:`SimOptions`.

    Semantic flags route through :func:`parse_options` — the same
    schema a manifest or HTTP submission uses — and the operational
    fields the schema deliberately excludes (the ``obs`` bundle, paths,
    interrupt handling) are applied on top.
    """
    spec = {
        "accumulation": args.accumulation,
        "stop_on_violation": not args.continue_on_violation,
        "echo_output": not args.quiet,
        "concrete_random": args.random_seed,
        "trace_stats": obs is not None and obs.metrics is not None,
        "gc_threshold": args.gc_threshold,
        "dyn_reorder": args.dyn_reorder,
        "reorder_threshold": args.reorder_threshold,
        "no_fastpath": args.no_fastpath,
        "compile_tier": not args.no_compile,
        "checkpoint_every": args.checkpoint_every,
        "heartbeat_every": args.heartbeat_every,
    }
    budget_spec = {}
    if args.budget_seconds is not None:
        budget_spec["wall_seconds"] = args.budget_seconds
    if args.budget_nodes is not None:
        budget_spec["max_live_nodes"] = args.budget_nodes
    if args.budget_rss_mb is not None:
        budget_spec["max_rss_mb"] = args.budget_rss_mb
    if args.budget_events is not None:
        budget_spec["max_events"] = args.budget_events
    if budget_spec:
        budget_spec["max_concretizations"] = args.max_concretize
        spec["budget"] = budget_spec
    options = parse_options(spec, "command line")
    return dataclasses.replace(
        options,
        obs=obs,
        checkpoint_dir=args.checkpoint_dir,
        heartbeat_path=args.heartbeat,
    )
