"""Micro-instructions for compiled behavioral processes.

A process compiles to a flat list of instructions; instruction indices
are the paper's *labels*.  A running execution path is a
:class:`Frame` carrying the triple the paper threads through events:
program counter, symbolic ``control`` and scheduling ``prio``.

``execute`` returns the next program counter, or ``None`` for the
paper's ``returnToSimulator()`` — the frame ends and only scheduled
events continue the path.

The control-splitting scheme follows Fig. 9 with two deviations that
preserve semantics (see DESIGN.md):

* the negated condition is evaluated once at the split and stored in
  the scheduled else-event, instead of being re-evaluated at the else
  label (re-evaluation is wrong if the then-branch mutates condition
  operands);
* events with ``control == FALSE`` are never scheduled, and a path
  whose ``control`` is the constant TRUE skips accumulation events
  entirely (no other live path of the process can exist, since path
  controls are disjoint) — this is what makes fully-concrete designs
  equally fast in all accumulation modes, matching the paper's DRAM
  row of Table 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.bdd import FALSE, TRUE


class AccumulationMode(enum.Enum):
    """Event-accumulation levels — the three columns of Table 1."""

    #: Queue merging + accumulation events at control-statement joins
    #: (paper column "with event-acc.").
    FULL = "full"
    #: Queue merging per Fig. 8 only; joins fall through without
    #: accumulation events (paper column "no acc. merge").
    QUEUE_MERGE_ONLY = "queue_merge_only"
    #: Every schedule() inserts a new event; nothing ever merges
    #: (paper column "w/o event-acc.").
    NONE = "none"


@dataclass
class Frame:
    """One live execution path of a process."""

    process: "CompiledProcess"
    pc: int
    control: int
    prio: int


class NbaUpdate:
    """A captured non-blocking assignment, enumerable for BDD GC.

    The value, index and control captured at schedule time (1364
    semantics) are stored in *fields* rather than closed over, so a
    queued update — which can sit across time steps under an
    intra-assignment delay — can enumerate its BDD roots and be
    remapped when the manager collects or reorders.  ``fn`` receives
    ``(kernel, vecs, controls)`` and must not close over node ids
    itself; ``subs`` composes concatenation targets.

    ``spec`` names the commit action as pure data so a checkpoint can
    serialize a queued update and rebuild ``fn`` on resume:
    ``("net", name)``, ``("word", name, low, high)``, ``("bit", name)``,
    ``("part", name, offset, width)``, or ``None`` for a pure
    concatenation composite (``subs`` only).
    """

    __slots__ = ("fn", "vecs", "controls", "subs", "spec")

    def __init__(self, fn=None, vecs=(), controls=(), subs=(), spec=None):
        self.fn = fn
        self.vecs = list(vecs)
        self.controls = list(controls)
        self.subs = list(subs)
        self.spec = spec

    def __call__(self, kern) -> None:
        if self.fn is not None:
            self.fn(kern, self.vecs, self.controls)
        for sub in self.subs:
            sub(kern)

    def bdd_roots(self):
        for vec in self.vecs:
            for a, b in vec.bits:
                yield a
                yield b
        yield from self.controls
        for sub in self.subs:
            yield from sub.bdd_roots()

    def bdd_remap(self, lookup) -> None:
        self.vecs = [vec.remap(lookup) for vec in self.vecs]
        self.controls = [lookup(control) for control in self.controls]
        for sub in self.subs:
            sub.bdd_remap(lookup)


class Instruction:
    """Base class; subclasses implement :meth:`execute`."""

    line: int = 0

    def execute(self, kern, frame: Frame) -> Optional[int]:
        raise NotImplementedError


@dataclass
class CompiledProcess:
    """A compiled ``initial``/``always`` process."""

    name: str
    kind: str
    instructions: List[Instruction] = field(default_factory=list)
    index: int = -1  # position in the program's process table

    def emit(self, inst: Instruction) -> int:
        """Append ``inst``; return its label (index)."""
        self.instructions.append(inst)
        return len(self.instructions) - 1

    @property
    def next_label(self) -> int:
        return len(self.instructions)


class Exec(Instruction):
    """Run a side-effect closure ``fn(kern, frame)``; fall through.

    ``spec`` optionally describes the closure as data for the compiled
    tier (:mod:`repro.compile.codegen`): a tuple whose first element
    names the statement shape (``"assign"``, ``"nba"``, ``"shadowcap"``,
    ``"commit"``, ``"copyout"``, ``"decrement"``, ``"finish"``,
    ``"error"``) followed by shape-specific payload.  ``None`` means
    the closure is opaque and always runs through ``fn``.
    """

    __slots__ = ("fn", "line", "spec")

    def __init__(self, fn: Callable, line: int = 0, spec=None) -> None:
        self.fn = fn
        self.line = line
        self.spec = spec

    def execute(self, kern, frame: Frame) -> Optional[int]:
        self.fn(kern, frame)
        return frame.pc + 1


class Goto(Instruction):
    """Unconditional jump."""

    __slots__ = ("target", "line")

    def __init__(self, target: int = -1, line: int = 0) -> None:
        self.target = target
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        return self.target


class End(Instruction):
    """Process end — the frame dies."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0) -> None:
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        return None


class IfSplit(Instruction):
    """Control-flow split per Fig. 9.

    ``else_target`` is the label of the (possibly empty) else branch;
    both branches end in a :class:`Join` to the common endif label.
    """

    __slots__ = ("cond", "else_target", "line")

    def __init__(self, cond, else_target: int = -1, line: int = 0) -> None:
        self.cond = cond
        self.else_target = else_target
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        mgr = kern.mgr
        c = self.cond.eval(kern, None, frame.control, self.cond.width).truthy()
        then_ctrl = mgr.and_(frame.control, c)
        else_ctrl = mgr.and_(frame.control, mgr.not_(c))
        frame.prio += 2
        if then_ctrl == FALSE:
            if else_ctrl == FALSE:
                return None  # dead path
            frame.control = else_ctrl
            return self.else_target
        if else_ctrl != FALSE:
            kern.schedule(frame.process, self.else_target, 0, else_ctrl,
                          frame.prio)
        frame.control = then_ctrl
        return frame.pc + 1


class Join(Instruction):
    """Branch join — schedules the paper's *accumulation event*.

    In FULL mode a symbolic path ends here and re-enters at ``target``
    via an event with priority ``prio - 1``; same-label events merge on
    the queue, recombining the paths the matching :class:`IfSplit`
    separated.  Concrete paths (control == TRUE) and the reduced
    accumulation modes just fall through.
    """

    __slots__ = ("target", "line")

    def __init__(self, target: int = -1, line: int = 0) -> None:
        self.target = target
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        if (
            kern.options.accumulation is AccumulationMode.FULL
            and frame.control != TRUE
        ):
            kern.schedule(frame.process, self.target, 0, frame.control,
                          frame.prio - 1)
            return None
        frame.prio -= 1
        return self.target


class PrioDec(Instruction):
    """The ``prio := prio - 1`` at an endif/endloop label (Fig. 9)."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0) -> None:
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        frame.prio -= 1
        return frame.pc + 1


class LoopSplit(Instruction):
    """Loop-head split: continue into the body or exit.

    ``exit_target`` is a :class:`Join` (to the loop-end label) so that
    exits from different iterations accumulate, and iteration re-entry
    happens through :class:`BackEdge` events that merge at the head —
    the paper's "merge in loop" case (Fig. 7).
    """

    __slots__ = ("cond", "exit_target", "line")

    def __init__(self, cond, exit_target: int = -1, line: int = 0) -> None:
        self.cond = cond
        self.exit_target = exit_target
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        mgr = kern.mgr
        c = self.cond.eval(kern, None, frame.control, self.cond.width).truthy()
        live = mgr.and_(frame.control, c)
        exit_ctrl = mgr.and_(frame.control, mgr.not_(c))
        if live == FALSE:
            if exit_ctrl == FALSE:
                return None
            frame.control = exit_ctrl
            return self.exit_target
        if exit_ctrl != FALSE:
            kern.schedule(frame.process, self.exit_target, 0, exit_ctrl,
                          frame.prio)
        frame.control = live
        return frame.pc + 1


class BackEdge(Instruction):
    """Loop back edge to the head label.

    In FULL mode a symbolic path returns to the head via an event so
    that same-time iterations of *different* paths merge there; concrete
    paths jump directly.
    """

    __slots__ = ("target", "line")

    def __init__(self, target: int = -1, line: int = 0) -> None:
        self.target = target
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        kern.note_loop_iteration(frame)
        if (
            kern.options.accumulation is AccumulationMode.FULL
            and frame.control != TRUE
        ):
            kern.schedule(frame.process, self.target, 0, frame.control,
                          frame.prio)
            return None
        return self.target


class PrioAdjustGoto(Instruction):
    """``disable`` jump: fix the static priority delta, then jump."""

    __slots__ = ("target", "delta", "line")

    def __init__(self, target: int = -1, delta: int = 0, line: int = 0) -> None:
        self.target = target
        self.delta = delta
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        frame.prio += self.delta
        return self.target


class ForkSpawn(Instruction):
    """``fork``: launch the sibling branches, fall into the first.

    ``branch_targets`` are the labels of branches 2..N; each is
    scheduled as a zero-delay event with the (already raised) priority,
    so all branches start in the current time step, exactly like the
    else-branch scheme of Fig. 2 generalized to N arms.
    """

    __slots__ = ("branch_targets", "line")

    def __init__(self, branch_targets=None, line: int = 0) -> None:
        self.branch_targets = branch_targets or []
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        frame.prio += 2
        for target in self.branch_targets:
            kern.schedule(frame.process, target, 0, frame.control, frame.prio)
        return frame.pc + 1


class BranchDone(Instruction):
    """End of one fork branch: record completion, poke the join check.

    The completion *mask* (a BDD over path assignments) accumulates in
    a shadow net's value rail; the join-check event is scheduled
    unconditionally — unlike accumulation events it is required for
    correctness, not merely merging, so it ignores the accumulation
    mode (same-label events still merge when the mode allows).
    """

    __slots__ = ("mask_net", "join_target", "line")

    def __init__(self, mask_net: str, join_target: int = -1,
                 line: int = 0) -> None:
        self.mask_net = mask_net
        self.join_target = join_target
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        kern.accumulate_mask(self.mask_net, frame.control)
        kern.schedule(frame.process, self.join_target, 0, frame.control,
                      frame.prio - 1)
        return None


class JoinCheck(Instruction):
    """The fork's barrier: proceed only where *every* branch completed."""

    __slots__ = ("mask_nets", "line")

    def __init__(self, mask_nets=None, line: int = 0) -> None:
        self.mask_nets = mask_nets or []
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        mgr = kern.mgr
        ready = frame.control
        for net in self.mask_nets:
            ready = mgr.and_(ready, kern.state.value(net).bits[0][0])
            if ready == FALSE:
                return None
        frame.control = ready
        # frame arrived at prio entry+1 (BranchDone scheduled at P-1);
        # the PrioDec that follows restores the entry priority.
        return frame.pc + 1


class Delay(Instruction):
    """``#d`` — suspend the path, resume at ``pc + 1`` after ``d``."""

    __slots__ = ("delay_expr", "line")

    def __init__(self, delay_expr, line: int = 0) -> None:
        self.delay_expr = delay_expr
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        delay = kern.eval_delay(self.delay_expr, frame)
        region = kern.REGION_INACTIVE if delay == 0 else kern.REGION_ACTIVE
        kern.schedule(frame.process, frame.pc + 1, delay, frame.control,
                      frame.prio, region=region)
        return None


class WaitEvent(Instruction):
    """``@(...)`` — register a waiter, resume at ``pc + 1`` on trigger."""

    __slots__ = ("triggers", "line")

    def __init__(self, triggers, line: int = 0) -> None:
        self.triggers = triggers  # list of (support, edge, cexpr)
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        kern.register_waiter(frame, frame.pc + 1, self.triggers)
        return None


class WaitCond(Instruction):
    """``wait (cond)`` — level-sensitive wait.

    The part of the path on which the condition already holds proceeds
    immediately; the rest waits for the condition to become true.
    """

    __slots__ = ("cond", "line")

    def __init__(self, cond, line: int = 0) -> None:
        self.cond = cond
        self.line = line

    def execute(self, kern, frame: Frame) -> Optional[int]:
        mgr = kern.mgr
        c = self.cond.eval(kern, None, frame.control, self.cond.width).truthy()
        proceed = mgr.and_(frame.control, c)
        blocked = mgr.and_(frame.control, mgr.not_(c))
        if blocked != FALSE:
            kern.register_level_waiter(frame, frame.pc + 1, self.cond, blocked)
        if proceed == FALSE:
            return None
        frame.control = proceed
        return frame.pc + 1
