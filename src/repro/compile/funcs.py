"""Inline evaluation of user-defined Verilog functions.

Functions may not contain delay or event control (1364 §10.3), so a
call evaluates to completion inside one expression evaluation.  Control
flow over symbolic data is handled the same way the main compiler
handles it — every statement executes under a path-condition BDD, with
assignments guarded by ``ite`` — but *without* the event machinery:
branches are simply evaluated in sequence and merged in place.

Locals (including the implicit return variable named after the
function) live in a per-call ``env`` dict, so recursion-free nesting
and reentrancy are free.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.bdd import FALSE
from repro.errors import CompileError, SimulationHang
from repro.frontend import ast_nodes as ast
from repro.frontend.elaborate import const_eval
from repro.fourval import FourVec, ops

#: Iteration watchdog for loops with symbolic exit conditions.
MAX_FUNC_LOOP_ITERATIONS = 65536


class _CallState:
    """Per-call mutable state: the 'disable'/return mask."""

    __slots__ = ("returned",)

    def __init__(self) -> None:
        self.returned = FALSE


class FunctionEvaluator:
    """Compiled body of one Verilog function."""

    def __init__(self, parent_ctx, func: ast.FunctionDecl) -> None:
        from repro.compile.expr import ExprCompiler

        self.name = func.name
        scope = parent_ctx.scope
        if func.range is not None:
            msb = const_eval(func.range.msb, scope)
            lsb = const_eval(func.range.lsb, scope)
            self.width = abs(msb - lsb) + 1
        else:
            self.width = 1
        self.signed = func.signed

        ctx = parent_ctx.child_with_locals({})
        ctx.func_locals = dict(parent_ctx.func_locals)
        self.port_names: List[str] = []
        self.port_widths: List[int] = []
        for port in func.ports:
            if port.range is not None:
                pw = abs(const_eval(port.range.msb, scope)
                         - const_eval(port.range.lsb, scope)) + 1
            else:
                pw = 1
            ctx.func_locals[port.name] = (pw, port.signed)
            self.port_names.append(port.name)
            self.port_widths.append(pw)
        self._local_widths: Dict[str, int] = {}
        for decl in func.decls:
            if decl.kind == "integer":
                lw, lsigned = 32, True
            elif decl.range is not None:
                lw = abs(const_eval(decl.range.msb, scope)
                         - const_eval(decl.range.lsb, scope)) + 1
                lsigned = decl.signed
            else:
                lw, lsigned = 1, decl.signed
            ctx.func_locals[decl.name] = (lw, lsigned)
            self._local_widths[decl.name] = lw
        ctx.func_locals[func.name] = (self.width, self.signed)

        self._compiler = ExprCompiler(ctx)
        self._runner, self.support = self._compile_stmt(func.body)

    # ------------------------------------------------------------------

    def call(self, kern, outer_env, ctrl, args: List[FourVec]) -> FourVec:
        """Evaluate the function with the given (pre-sized) arguments."""
        env: Dict[str, FourVec] = {}
        for name, width, value in zip(self.port_names, self.port_widths, args):
            env[name] = value.resize(width)
        for name, width in self._local_widths.items():
            env[name] = FourVec.all_x(kern.mgr, width)
        env[self.name] = FourVec.all_x(kern.mgr, self.width)
        state = _CallState()
        self._runner(kern, env, ctrl, state)
        return env[self.name]

    # ------------------------------------------------------------------
    # statement compilation → runner closures
    # ------------------------------------------------------------------

    def _compile_stmt(self, stmt: ast.Stmt) -> Tuple[Callable, FrozenSet[str]]:
        if stmt is None or isinstance(stmt, ast.NullStmt):
            return (lambda kern, env, ctrl, st: None), frozenset()
        if isinstance(stmt, ast.Block):
            if stmt.decls:
                raise CompileError(
                    "block-local declarations inside functions must be "
                    "declared at function level"
                )
            runners = [self._compile_stmt(s) for s in stmt.stmts]
            support = frozenset().union(*[s for _, s in runners]) \
                if runners else frozenset()

            def run_block(kern, env, ctrl, st):
                for runner, _ in runners:
                    runner(kern, env, ctrl, st)

            return run_block, support
        if isinstance(stmt, ast.BlockingAssign):
            if stmt.intra_delay is not None:
                raise CompileError("delays are not allowed inside functions")
            plan = self._compiler.compile_lhs(stmt.lhs)
            rhs = self._compiler.compile(stmt.rhs)
            ctx_width = plan.width if rhs.flexible else max(plan.width, rhs.width)

            def run_assign(kern, env, ctrl, st):
                live = kern.mgr.and_(ctrl, kern.mgr.not_(st.returned))
                if live == FALSE:
                    return
                value = rhs.eval(kern, env, live, ctx_width).resize(plan.width)
                plan.write(kern, env, value, live)

            return run_assign, rhs.support | plan.support
        if isinstance(stmt, ast.NonBlockingAssign):
            raise CompileError("non-blocking assignment inside a function")
        if isinstance(stmt, ast.If):
            cond = self._compiler.compile(stmt.cond)
            then_run, then_sup = self._compile_stmt(stmt.then_stmt)
            else_run, else_sup = self._compile_stmt(stmt.else_stmt)

            def run_if(kern, env, ctrl, st):
                live = kern.mgr.and_(ctrl, kern.mgr.not_(st.returned))
                if live == FALSE:
                    return
                c = cond.eval(kern, env, live, cond.width).truthy()
                then_ctrl = kern.mgr.and_(live, c)
                else_ctrl = kern.mgr.and_(live, kern.mgr.not_(c))
                if then_ctrl != FALSE:
                    then_run(kern, env, then_ctrl, st)
                if else_ctrl != FALSE:
                    else_run(kern, env, else_ctrl, st)

            return run_if, cond.support | then_sup | else_sup
        if isinstance(stmt, ast.Case):
            return self._compile_case(stmt)
        if isinstance(stmt, ast.For):
            init_run, init_sup = self._compile_stmt(stmt.init)
            step_run, step_sup = self._compile_stmt(stmt.step)
            body_run, body_sup = self._compile_stmt(stmt.body)
            cond = self._compiler.compile(stmt.cond)

            def run_for(kern, env, ctrl, st):
                init_run(kern, env, ctrl, st)
                self._loop(kern, env, ctrl, st, cond,
                           lambda k, e, c, s: (body_run(k, e, c, s),
                                               step_run(k, e, c, s)))

            return run_for, init_sup | step_sup | body_sup | cond.support
        if isinstance(stmt, ast.While):
            cond = self._compiler.compile(stmt.cond)
            body_run, body_sup = self._compile_stmt(stmt.body)

            def run_while(kern, env, ctrl, st):
                self._loop(kern, env, ctrl, st, cond, body_run)

            return run_while, cond.support | body_sup
        if isinstance(stmt, ast.Repeat):
            count = self._compiler.compile(stmt.count)
            body_run, body_sup = self._compile_stmt(stmt.body)

            def run_repeat(kern, env, ctrl, st):
                value = count.eval(kern, env, ctrl, count.width)
                bound = value.to_int_or_none()
                if bound is None:
                    raise CompileError(
                        "repeat count inside a function must be concrete"
                    )
                for _ in range(bound):
                    live = kern.mgr.and_(ctrl, kern.mgr.not_(st.returned))
                    if live == FALSE:
                        return
                    body_run(kern, env, live, st)

            return run_repeat, count.support | body_sup
        if isinstance(stmt, ast.Disable):
            if stmt.name != self.name:
                raise CompileError(
                    f"disable {stmt.name!r} inside function {self.name!r} "
                    "(only disabling the function itself is supported)"
                )

            def run_disable(kern, env, ctrl, st):
                st.returned = kern.mgr.or_(st.returned, ctrl)

            return run_disable, frozenset()
        if isinstance(stmt, ast.TaskCall):
            if stmt.is_system and stmt.name in ("$display", "$write"):
                args = [
                    a.value if isinstance(a, ast.StringLiteral)
                    else self._compiler.compile(a)
                    for a in stmt.args
                ]
                newline = stmt.name == "$display"

                def run_display(kern, env, ctrl, st):
                    live = kern.mgr.and_(ctrl, kern.mgr.not_(st.returned))
                    if live == FALSE:
                        return
                    kern.display(args, live, newline=newline, env=env)

                return run_display, frozenset()
            raise CompileError(
                f"task enable {stmt.name!r} inside a function is not supported"
            )
        raise CompileError(
            f"{type(stmt).__name__} is not allowed inside a function"
        )

    def _compile_case(self, stmt: ast.Case) -> Tuple[Callable, FrozenSet[str]]:
        selector = self._compiler.compile(stmt.expr)
        match_fn = {"case": None, "casez": ops.casez_match,
                    "casex": ops.casex_match}[stmt.kind]
        arms = []
        support = selector.support
        default_run = lambda kern, env, ctrl, st: None
        for item in stmt.items:
            run, sup = self._compile_stmt(item.stmt)
            support |= sup
            if not item.exprs:
                default_run = run
                continue
            exprs = [self._compiler.compile(e) for e in item.exprs]
            for expr in exprs:
                support |= expr.support
            arms.append((exprs, run))

        def run_case(kern, env, ctrl, st):
            live = kern.mgr.and_(ctrl, kern.mgr.not_(st.returned))
            if live == FALSE:
                return
            width = max([selector.width] + [e.width for es, _ in arms for e in es]) \
                if arms else selector.width
            sel = selector.eval(kern, env, live, width)
            remaining = live
            for exprs, run in arms:
                cond = FALSE
                for expr in exprs:
                    item_v = expr.eval(kern, env, live, width)
                    if match_fn is None:
                        cond = kern.mgr.or_(
                            cond, ops.case_equal(sel, item_v).truthy()
                        )
                    else:
                        cond = kern.mgr.or_(cond, match_fn(sel, item_v))
                arm_ctrl = kern.mgr.and_(remaining, cond)
                if arm_ctrl != FALSE:
                    run(kern, env, arm_ctrl, st)
                remaining = kern.mgr.and_(remaining, kern.mgr.not_(cond))
                if remaining == FALSE:
                    return
            if remaining != FALSE:
                default_run(kern, env, remaining, st)

        return run_case, support

    def _loop(self, kern, env, ctrl, st, cond, body_run) -> None:
        iterations = 0
        while True:
            live = kern.mgr.and_(ctrl, kern.mgr.not_(st.returned))
            if live == FALSE:
                return
            c = cond.eval(kern, env, live, cond.width).truthy()
            live = kern.mgr.and_(live, c)
            if live == FALSE:
                return
            body_run(kern, env, live, st)
            iterations += 1
            if iterations > MAX_FUNC_LOOP_ITERATIONS:
                raise SimulationHang(
                    f"function {self.name!r}: loop exceeded "
                    f"{MAX_FUNC_LOOP_ITERATIONS} iterations"
                )
