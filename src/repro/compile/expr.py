"""Expression compilation: AST → symbolic evaluation closures.

A compiled expression is a :class:`CExpr`: its self-determined width
and signedness (computed once, per 1364's sizing rules), the set of
nets it reads (used for ``@*``, ``wait`` and continuous-assign
sensitivity), and an ``eval(kernel, env, control, width)`` closure that
produces a :class:`FourVec` of exactly ``width`` bits.

``env`` carries function-local values during user-function evaluation
(functions contain no delays, so they evaluate inline as pure data
flow); ``control`` is the paper's symbolic path condition, threaded
through so ``$random`` call sites can log (variable, control) pairs for
error-trace resimulation (Section 5).

Left-hand sides compile to :class:`LhsPlan` objects exposing both an
immediate (blocking) write and a deferred (non-blocking) update whose
target indices are captured at schedule time, per 1364.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.bdd import FALSE, TRUE
from repro.compile.instructions import NbaUpdate
from repro.errors import CompileError
from repro.frontend import ast_nodes as ast
from repro.frontend.elaborate import NetInfo, Scope
from repro.fourval import FourVec, ops
from repro.fourval.vector import BIT_X

Env = Optional[Dict[str, FourVec]]
EvalFn = Callable[["object", Env, int, int], FourVec]
#: word(kernel, ctx_width) -> raw unsigned int or None — see CExpr.word.
WordFn = Callable[["object", int], Optional[int]]


@dataclass
class CExpr:
    """A compiled expression."""

    width: int
    signed: bool
    eval: EvalFn
    support: FrozenSet[str] = frozenset()
    flexible: bool = False  # $random: takes any context width without inflating it
    #: compile-time-known: the value never depends on kernel state, the
    #: function-local env, the path condition, or simulation time.
    #: Const expressions are folded once per context width (see
    #: ``_fold_const``) instead of being re-evaluated per statement.
    const: bool = False
    #: Optional word-level twin of ``eval`` for the compiled tier:
    #: ``word(kern, ctx_width)`` returns the raw *unsigned* integer of
    #: exactly ``ctx_width`` bits that ``eval`` would produce — iff
    #: ``eval`` would return a fully-known vector — else ``None`` (the
    #: caller then falls back to the generic ``eval``).  Word closures
    #: are pure: expressions with side effects ($random, function
    #: calls) and env-dependent ones (function locals) never get one.
    word: Optional[WordFn] = None
    #: Number of ``fastpath_word_ops`` the *generic* evaluation of this
    #: tree counts when every operand is concrete.  A word-path caller
    #: adds exactly this to ``mgr._fp_word`` on a hit so counter
    #: metrics stay bit-identical across tiers.
    word_cost: int = 0
    #: Signedness of the vector ``eval`` actually returns at runtime
    #: where it differs from the static ``signed`` (e.g. bitwise ops
    #: rebuild unsigned).  ``None`` means same as ``signed``.  Only
    #: consumers that convert a result via two's complement (index
    #: expressions) care.
    rt_signed: Optional[bool] = None


def _rt_signed(cexpr: CExpr) -> bool:
    """Runtime signedness of a compiled expression's result vector."""
    return cexpr.signed if cexpr.rt_signed is None else cexpr.rt_signed


def _word_resize(value: int, width: int, signed: bool, ctx_width: int) -> int:
    """Word-level mirror of ``FourVec.resize``: ``value`` is the raw
    unsigned contents of a ``width``-bit vector with signedness
    ``signed``; return its raw contents at ``ctx_width`` bits."""
    if ctx_width <= width:
        return value & ((1 << ctx_width) - 1)
    if signed and (value >> (width - 1)) & 1:
        return (value | (-1 << width)) & ((1 << ctx_width) - 1)
    return value


def _signed_int(value: int, width: int) -> int:
    """Two's-complement interpretation of a raw ``width``-bit word."""
    if (value >> (width - 1)) & 1:
        return value - (1 << width)
    return value


def _arith_word(op: str, lword: WordFn, rword: WordFn, width: int,
                signed: bool) -> WordFn:
    """Word twin of an arithmetic/bitwise binary operator.

    Mirrors the fully-concrete fast paths in :mod:`repro.fourval.ops`
    exactly, including signed division/modulo rounding; ``/`` and ``%``
    bail (return ``None``) on a zero divisor because the generic result
    is all-X there.
    """

    def word(kern, ctx_width):
        opw = max(width, ctx_width)
        lv = lword(kern, opw)
        if lv is None:
            return None
        rv = rword(kern, opw)
        if rv is None:
            return None
        mask = (1 << opw) - 1
        if op == "+":
            result = lv + rv
        elif op == "-":
            result = lv - rv
        elif op == "*":
            result = lv * rv
        elif op == "&":
            result = lv & rv
        elif op == "|":
            result = lv | rv
        elif op == "^":
            result = lv ^ rv
        elif op in ("~^", "^~"):
            result = ~(lv ^ rv)
        elif op == "**":
            result = pow(lv, rv, 1 << opw)
        elif op in ("/", "%"):
            if rv == 0:
                return None  # division by zero yields all X
            if signed:
                sl, sr = _signed_int(lv, opw), _signed_int(rv, opw)
                if op == "/":
                    result = abs(sl) // abs(sr)
                    if (sl < 0) != (sr < 0):
                        result = -result
                else:
                    result = abs(sl) % abs(sr)
                    if sl < 0:
                        result = -result
            else:
                result = lv // rv if op == "/" else lv % rv
        else:  # pragma: no cover - table-driven callers only
            return None
        return (result & mask) & ((1 << ctx_width) - 1)

    return word


def _compare_word(op: str, lword: WordFn, rword: WordFn, opw: int,
                  signed: bool) -> WordFn:
    """Word twin of a comparison operator (result is one bit)."""

    def word(kern, ctx_width):
        lv = lword(kern, opw)
        if lv is None:
            return None
        rv = rword(kern, opw)
        if rv is None:
            return None
        if op in ("==", "==="):
            return 1 if lv == rv else 0
        if op in ("!=", "!=="):
            return 1 if lv != rv else 0
        if signed:
            lv, rv = _signed_int(lv, opw), _signed_int(rv, opw)
        if op == "<":
            return 1 if lv < rv else 0
        if op == "<=":
            return 1 if lv <= rv else 0
        if op == ">":
            return 1 if lv > rv else 0
        return 1 if lv >= rv else 0  # >=

    return word


def _shift_word(op: str, lword: WordFn, rword: WordFn, lw: int,
                rw: int) -> WordFn:
    """Word twin of a shift (amount self-determined, raw unsigned)."""

    def word(kern, ctx_width):
        opw = max(lw, ctx_width)
        lv = lword(kern, opw)
        if lv is None:
            return None
        rv = rword(kern, rw)
        if rv is None:
            return None
        mask = (1 << opw) - 1
        if op == "<<":
            result = (lv << rv) & mask if rv < opw else 0
        elif op == ">>":
            result = lv >> rv if rv < opw else 0
        else:  # >>> — arithmetic: replicate the original sign bit
            sign = (lv >> (opw - 1)) & 1
            if rv >= opw:
                result = mask if sign else 0
            else:
                result = lv >> rv
                if sign:
                    result |= mask ^ ((1 << (opw - rv)) - 1)
        return result & ((1 << ctx_width) - 1)

    return word


class _ScratchKernel:
    """Minimal kernel stand-in for compile-time constant evaluation.

    Const eval closures only ever touch ``kern.mgr``; giving them a
    private scratch manager keeps folding independent of any simulation.
    Constant expressions only combine terminal rails, so the scratch
    arena never grows and the resulting bit tuples are valid in *any*
    manager (terminal node ids are universal).
    """

    __slots__ = ("mgr",)

    def __init__(self) -> None:
        from repro.bdd import BddManager

        self.mgr = BddManager()


def _fold_const(cexpr: CExpr) -> CExpr:
    """Wrap a const expression with a per-width precomputed-bits cache.

    Each folded expression owns its private scratch kernel (no shared
    module-level state): the scratch arena never grows past the two
    terminals, so the per-expression cost is a few empty dicts, and two
    designs compiling or simulating in one process share nothing.
    """
    scratch = _ScratchKernel()
    inner = cexpr.eval
    cache: Dict[int, FourVec] = {}

    def ev(kern, env, ctrl, ctx_width):
        folded = cache.get(ctx_width)
        if folded is None:
            folded = inner(scratch, None, TRUE, ctx_width)
            cache[ctx_width] = folded
        result = FourVec(kern.mgr, folded.bits, folded.signed)
        result._summary = folded.concrete_summary()
        return result

    ev._const_folded = True

    # Word twin: the fold already did all the work on the scratch
    # manager, so the generic per-statement cost is zero ops and the
    # word path just reads the cached bits back as an integer.
    def word(kern, ctx_width):
        folded = cache.get(ctx_width)
        if folded is None:
            folded = inner(scratch, None, TRUE, ctx_width)
            cache[ctx_width] = folded
        return folded.known_int()

    # Runtime signedness is width-independent (resize preserves the
    # flag); probe it once, eagerly, at the self-determined width.
    probe_width = max(cexpr.width, 1)
    probe = inner(scratch, None, TRUE, probe_width)
    cache[probe_width] = probe
    return CExpr(width=cexpr.width, signed=cexpr.signed, eval=ev,
                 support=cexpr.support, flexible=cexpr.flexible, const=True,
                 word=word, word_cost=0, rt_signed=probe.signed)


@dataclass
class LhsPlan:
    """A compiled assignment target."""

    width: int
    #: write(kernel, env, value, control) — immediate blocking write
    write: Callable[["object", Env, FourVec, int], None]
    #: capture(kernel, env, value, control) -> NbaUpdate: the deferred
    #: non-blocking write with its BDD payload in enumerable fields
    capture: Callable[["object", Env, FourVec, int], NbaUpdate]
    support: FrozenSet[str] = frozenset()
    #: Word-level twins for the compiled tier, set only for whole-net
    #: variable targets: ``fast_write(kern, raw)`` /
    #: ``fast_capture(kern, raw) -> NbaUpdate`` take the raw unsigned
    #: RHS word (already truncated to ``width``) and are bit-identical
    #: to write/capture under ``control == TRUE``.
    fast_write: Optional[Callable[["object", int], None]] = None
    fast_capture: Optional[Callable[["object", int], NbaUpdate]] = None


class CompileContext:
    """Name-resolution context while compiling one process/assign.

    ``local_map`` renames identifiers to shadow nets (task inlining);
    ``func_locals`` marks names that resolve to the runtime ``env``
    (function evaluation).
    """

    def __init__(self, design, scope: Scope, process_name: str = "") -> None:
        self.design = design
        self.scope = scope
        self.process_name = process_name
        self.local_map: Dict[str, str] = {}
        self.func_locals: Dict[str, Tuple[int, bool]] = {}  # name -> (width, signed)
        self.callsite_factory = None  # set by the statement compiler / kernel glue
        self._function_stack: List[str] = []

    def child_with_locals(self, local_map: Dict[str, str]) -> "CompileContext":
        child = CompileContext(self.design, self.scope, self.process_name)
        child.local_map = {**self.local_map, **local_map}
        child.func_locals = dict(self.func_locals)
        child.callsite_factory = self.callsite_factory
        child._function_stack = self._function_stack
        return child


class ExprCompiler:
    """Compiles expression ASTs under a :class:`CompileContext`."""

    def __init__(self, ctx: CompileContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def compile(self, expr: ast.Expr) -> CExpr:
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            raise CompileError(f"cannot compile expression {type(expr).__name__}")
        result = method(expr)
        if result.const and not getattr(result.eval, "_const_folded", False):
            result = _fold_const(result)
        return result

    def compile_condition(self, expr: ast.Expr) -> CExpr:
        """Compile an expression used as a truth condition."""
        return self.compile(expr)

    def compile_lhs(self, expr: ast.Expr) -> LhsPlan:
        if isinstance(expr, ast.Identifier):
            return self._lhs_identifier(expr)
        if isinstance(expr, ast.Index):
            return self._lhs_index(expr)
        if isinstance(expr, ast.PartSelect):
            return self._lhs_part_select(expr)
        if isinstance(expr, ast.Concat):
            return self._lhs_concat(expr)
        raise CompileError(
            f"invalid assignment target {type(expr).__name__}"
        )

    # ------------------------------------------------------------------
    # identifier resolution
    # ------------------------------------------------------------------

    def _resolve(self, ident: ast.Identifier) -> Tuple[str, NetInfo]:
        name = ident.parts[0]
        if len(ident.parts) == 1:
            if name in self.ctx.local_map:
                full = self.ctx.local_map[name]
                return full, self.ctx.design.net(full)
        full = self.ctx.scope.lookup(ident.parts)
        if full is None:
            raise CompileError(
                f"unknown identifier {ident.name!r} in {self.ctx.scope.path or 'top'} "
                f"(line {ident.line})"
            )
        return full, self.ctx.design.net(full)

    # ------------------------------------------------------------------
    # leaves
    # ------------------------------------------------------------------

    def _compile_number(self, expr: ast.Number) -> CExpr:
        bits = expr.bits
        width = expr.width
        signed = expr.signed

        def ev(kern, env, ctrl, ctx_width):
            vec = FourVec.from_verilog_bits(kern.mgr, bits, signed)
            return vec.resize(ctx_width)

        return CExpr(width=width, signed=signed, eval=ev, const=True)

    def _compile_realnumber(self, expr: ast.RealNumber) -> CExpr:
        value = int(round(expr.value))

        def ev(kern, env, ctrl, ctx_width):
            return FourVec.from_int(kern.mgr, value, ctx_width)

        return CExpr(width=32, signed=True, eval=ev, const=True)

    def _compile_stringliteral(self, expr: ast.StringLiteral) -> CExpr:
        data = expr.value.encode("latin-1", "replace")
        width = max(8 * len(data), 8)
        value = int.from_bytes(data, "big") if data else 0

        def ev(kern, env, ctrl, ctx_width):
            return FourVec.from_int(kern.mgr, value, ctx_width)

        return CExpr(width=width, signed=False, eval=ev, const=True)

    def _compile_identifier(self, expr: ast.Identifier) -> CExpr:
        name = expr.parts[0]
        if len(expr.parts) == 1:
            if name in self.ctx.func_locals:
                width, signed = self.ctx.func_locals[name]

                def ev_local(kern, env, ctrl, ctx_width):
                    value = env[name]
                    return value.as_signed(signed).resize(ctx_width)

                return CExpr(width=width, signed=signed, eval=ev_local)
            if name not in self.ctx.local_map and name in self.ctx.scope.params:
                value = self.ctx.scope.params[name]

                def ev_param(kern, env, ctrl, ctx_width):
                    return FourVec.from_int(kern.mgr, value, ctx_width, signed=True)

                return CExpr(width=32, signed=True, eval=ev_param, const=True)
        full, info = self._resolve(expr)
        if info.array is not None:
            raise CompileError(
                f"memory {full!r} used without a word index (line {expr.line})"
            )
        signed = info.signed or info.kind in ("integer",)
        width = info.width

        def ev(kern, env, ctrl, ctx_width):
            return kern.state.value(full).as_signed(signed).resize(ctx_width)

        def word(kern, ctx_width):
            raw = kern.state.known_word(full)
            if raw is None:
                return None
            return _word_resize(raw, width, signed, ctx_width)

        return CExpr(width=width, signed=signed, eval=ev,
                     support=frozenset([full]), word=word)

    # ------------------------------------------------------------------
    # selects
    # ------------------------------------------------------------------

    def _compile_index(self, expr: ast.Index) -> CExpr:
        if not isinstance(expr.base, ast.Identifier):
            raise CompileError("bit select base must be an identifier")
        base_name = expr.base.parts[0]
        if len(expr.base.parts) == 1 and base_name in self.ctx.func_locals:
            base_width, _ = self.ctx.func_locals[base_name]
            index = self.compile(expr.index)

            def ev_local_bit(kern, env, ctrl, ctx_width):
                base = env[base_name]
                idx = index.eval(kern, env, ctrl, max(index.width, 32))
                bit = _select_bit_flat(kern, base, idx, base_width)
                return bit.resize(ctx_width)

            return CExpr(width=1, signed=False, eval=ev_local_bit,
                         support=index.support)
        full, info = self._resolve(expr.base)
        index = self.compile(expr.index)
        iw = max(index.width, 32)
        idx_word = index.word
        idx_signed = _rt_signed(index)
        if info.array is not None:
            # memory word read
            width = info.width
            low, high = info.array
            signed = info.signed

            def ev_word(kern, env, ctrl, ctx_width):
                idx = index.eval(kern, env, ctrl, max(index.width, 32))
                value = kern.state.read_array(full, idx, low, high)
                return value.as_signed(signed).resize(ctx_width)

            word_mem = None
            if idx_word is not None:
                def word_mem(kern, ctx_width):
                    iv = idx_word(kern, iw)
                    if iv is None:
                        return None
                    if idx_signed:
                        iv = _signed_int(iv, iw)
                    if not low <= iv <= high:
                        return None  # reads X
                    stored = kern.state.array_words(full).get(iv)
                    if stored is None:
                        return None  # unwritten word reads X
                    raw = stored.known_int()
                    if raw is None:
                        return None
                    return _word_resize(raw, width, signed, ctx_width)

            return CExpr(width=width, signed=signed, eval=ev_word,
                         support=index.support | frozenset([full]),
                         word=word_mem, word_cost=index.word_cost)

        # bit select
        def ev_bit(kern, env, ctrl, ctx_width):
            base = kern.state.value(full)
            idx = index.eval(kern, env, ctrl, max(index.width, 32))
            bit = _select_bit(kern, base, idx, info)
            return bit.resize(ctx_width)

        word_bit = None
        if idx_word is not None:
            def word_bit(kern, ctx_width):
                iv = idx_word(kern, iw)
                if iv is None:
                    return None
                if idx_signed:
                    iv = _signed_int(iv, iw)
                offset = info.bit_offset(iv)
                if not 0 <= offset < info.width:
                    return None  # out-of-range reads X
                slot = kern.state.peek(full)
                if type(slot) is int:
                    return (slot >> offset) & 1
                mask, value = slot.concrete_summary()
                if not (mask >> offset) & 1:
                    return None  # selected bit not concrete-known
                return (value >> offset) & 1

        return CExpr(width=1, signed=False, eval=ev_bit,
                     support=index.support | frozenset([full]),
                     word=word_bit, word_cost=index.word_cost)

    def _compile_partselect(self, expr: ast.PartSelect) -> CExpr:
        if not isinstance(expr.base, ast.Identifier):
            raise CompileError("part select base must be an identifier")
        base_name = expr.base.parts[0]
        if len(expr.base.parts) == 1 and base_name in self.ctx.func_locals:
            from repro.frontend.elaborate import const_eval

            msb = const_eval(expr.msb, self.ctx.scope)
            lsb = const_eval(expr.lsb, self.ctx.scope)
            offset, width = min(msb, lsb), abs(msb - lsb) + 1

            def ev_local_part(kern, env, ctrl, ctx_width):
                return env[base_name].slice(offset, width).resize(ctx_width)

            return CExpr(width=width, signed=False, eval=ev_local_part)
        full, info = self._resolve(expr.base)
        if info.array is not None:
            raise CompileError("part select on a memory word is not allowed")
        from repro.frontend.elaborate import const_eval

        msb = const_eval(expr.msb, self.ctx.scope)
        lsb = const_eval(expr.lsb, self.ctx.scope)
        offset = min(info.bit_offset(msb), info.bit_offset(lsb))
        width = abs(msb - lsb) + 1

        def ev(kern, env, ctrl, ctx_width):
            base = kern.state.value(full)
            return base.slice(offset, width).resize(ctx_width)

        word = None
        if 0 <= offset and offset + width <= info.width:
            seg_mask = (1 << width) - 1

            def word(kern, ctx_width):
                slot = kern.state.peek(full)
                if type(slot) is int:
                    raw = (slot >> offset) & seg_mask
                    return _word_resize(raw, width, False, ctx_width)
                mask, value = slot.concrete_summary()
                if (mask >> offset) & seg_mask != seg_mask:
                    return None  # some selected bit not concrete-known
                raw = (value >> offset) & seg_mask
                return _word_resize(raw, width, False, ctx_width)

        return CExpr(width=width, signed=False, eval=ev,
                     support=frozenset([full]), word=word)

    def _compile_concat(self, expr: ast.Concat) -> CExpr:
        parts = [self.compile(p) for p in expr.parts]
        width = sum(p.width for p in parts)
        support = frozenset().union(*[p.support for p in parts])

        def ev(kern, env, ctrl, ctx_width):
            # parts are self-determined; MSB-first in source order
            vec = None
            for part in parts:
                value = part.eval(kern, env, ctrl, part.width)
                vec = value if vec is None else vec.concat(value)
            return vec.resize(ctx_width)

        word = None
        if all(p.word is not None for p in parts):
            part_words = [(p.word, p.width) for p in parts]

            def word(kern, ctx_width):
                acc = 0
                for pword, pw in part_words:
                    pv = pword(kern, pw)
                    if pv is None:
                        return None
                    acc = (acc << pw) | pv
                return _word_resize(acc, width, False, ctx_width)

        return CExpr(width=width, signed=False, eval=ev, support=support,
                     const=all(p.const for p in parts),
                     word=word, word_cost=sum(p.word_cost for p in parts))

    def _compile_repl(self, expr: ast.Repl) -> CExpr:
        from repro.frontend.elaborate import const_eval

        count = const_eval(expr.count, self.ctx.scope)
        value = self.compile(expr.value)
        width = count * value.width

        def ev(kern, env, ctrl, ctx_width):
            inner = value.eval(kern, env, ctrl, value.width)
            return inner.replicate(count).resize(ctx_width)

        word = None
        if value.word is not None and count >= 1:
            inner_word, inner_w = value.word, value.width

            def word(kern, ctx_width):
                iv = inner_word(kern, inner_w)
                if iv is None:
                    return None
                acc = 0
                for _ in range(count):
                    acc = (acc << inner_w) | iv
                return _word_resize(acc, width, False, ctx_width)

        return CExpr(width=width, signed=False, eval=ev, support=value.support,
                     const=value.const, word=word, word_cost=value.word_cost)

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------

    _UNARY_REDUCTIONS = {
        "&": ops.reduce_and, "|": ops.reduce_or, "^": ops.reduce_xor,
        "~&": ops.reduce_nand, "~|": ops.reduce_nor,
        "~^": ops.reduce_xnor, "^~": ops.reduce_xnor,
    }

    def _compile_unary(self, expr: ast.Unary) -> CExpr:
        operand = self.compile(expr.operand)
        op = expr.op
        if op == "+":
            return operand
        oword, ow = operand.word, operand.width
        if op == "-":
            def ev_neg(kern, env, ctrl, ctx_width):
                opw = max(operand.width, ctx_width)
                value = operand.eval(kern, env, ctrl, opw)
                return ops.negate(value).resize(ctx_width)

            word_neg = None
            if oword is not None:
                def word_neg(kern, ctx_width):
                    opw = max(ow, ctx_width)
                    v = oword(kern, opw)
                    if v is None:
                        return None
                    return (-v) & ((1 << ctx_width) - 1)

            return CExpr(width=operand.width, signed=operand.signed,
                         eval=ev_neg, support=operand.support,
                         const=operand.const, word=word_neg,
                         word_cost=operand.word_cost + 1,
                         rt_signed=_rt_signed(operand))
        if op == "~":
            def ev_not(kern, env, ctrl, ctx_width):
                opw = max(operand.width, ctx_width)
                value = operand.eval(kern, env, ctrl, opw)
                return ops.bitwise_not(value).resize(ctx_width)

            word_not = None
            if oword is not None:
                def word_not(kern, ctx_width):
                    opw = max(ow, ctx_width)
                    v = oword(kern, opw)
                    if v is None:
                        return None
                    return ~v & ((1 << ctx_width) - 1)

            return CExpr(width=operand.width, signed=operand.signed,
                         eval=ev_not, support=operand.support,
                         const=operand.const, word=word_not,
                         word_cost=operand.word_cost + 1, rt_signed=False)
        if op == "!":
            def ev_lnot(kern, env, ctrl, ctx_width):
                value = operand.eval(kern, env, ctrl, operand.width)
                return ops.logical_not(value).resize(ctx_width)

            word_lnot = None
            if oword is not None:
                def word_lnot(kern, ctx_width):
                    v = oword(kern, ow)
                    if v is None:
                        return None
                    return 0 if v else 1

            return CExpr(width=1, signed=False, eval=ev_lnot,
                         support=operand.support, const=operand.const,
                         word=word_lnot, word_cost=operand.word_cost + 1)
        reduction = self._UNARY_REDUCTIONS.get(op)
        if reduction is not None:
            def ev_red(kern, env, ctrl, ctx_width):
                value = operand.eval(kern, env, ctrl, operand.width)
                return reduction(value).resize(ctx_width)

            word_red = None
            red_cost = 2 if op in ("~&", "~|", "~^", "^~") else 1
            if oword is not None:
                full = (1 << ow) - 1
                base = op.lstrip("~").replace("^~", "^") or op[-1]

                def word_red(kern, ctx_width):
                    v = oword(kern, ow)
                    if v is None:
                        return None
                    if base == "&":
                        bit = 1 if v == full else 0
                    elif base == "|":
                        bit = 1 if v else 0
                    else:  # ^
                        bit = bin(v).count("1") & 1
                    return bit ^ 1 if op.startswith("~") or op == "^~" \
                        else bit

            return CExpr(width=1, signed=False, eval=ev_red,
                         support=operand.support, const=operand.const,
                         word=word_red,
                         word_cost=operand.word_cost + red_cost)
        raise CompileError(f"unsupported unary operator {op!r}")

    _ARITH_OPS = {
        "+": ops.add, "-": ops.subtract, "*": ops.multiply,
        "/": ops.divide, "%": ops.modulo, "**": ops.power,
        "&": ops.bitwise_and, "|": ops.bitwise_or,
        "^": ops.bitwise_xor, "~^": ops.bitwise_xnor, "^~": ops.bitwise_xnor,
    }
    _COMPARE_OPS = {
        "==": ops.equal, "!=": ops.not_equal,
        "===": ops.case_equal, "!==": ops.case_not_equal,
        "<": ops.less_than, "<=": ops.less_equal,
        ">": ops.greater_than, ">=": ops.greater_equal,
    }
    _LOGICAL_OPS = {"&&": ops.logical_and, "||": ops.logical_or}
    _SHIFT_OPS = {
        "<<": ops.shift_left, ">>": ops.shift_right, ">>>": ops.arith_shift_right,
    }

    def _compile_binary(self, expr: ast.Binary) -> CExpr:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        op = expr.op
        support = left.support | right.support
        const = left.const and right.const
        child_cost = left.word_cost + right.word_cost
        have_words = left.word is not None and right.word is not None
        lword, rword = left.word, right.word
        if op in self._ARITH_OPS:
            func = self._ARITH_OPS[op]
            width = max(left.width, right.width)
            signed = left.signed and right.signed

            def ev_arith(kern, env, ctrl, ctx_width):
                opw = max(width, ctx_width)
                lv = left.eval(kern, env, ctrl, opw).as_signed(left.signed)
                rv = right.eval(kern, env, ctrl, opw).as_signed(right.signed)
                return func(lv, rv).resize(ctx_width)

            word = None
            own_cost = 2 if op in ("~^", "^~") else 1
            rt = False if op in ("&", "|", "^", "~^", "^~", "**") else None
            if have_words:
                word = _arith_word(op, lword, rword, width, signed)

            return CExpr(width=width, signed=signed, eval=ev_arith,
                         support=support, const=const, word=word,
                         word_cost=child_cost + own_cost, rt_signed=rt)
        if op in self._COMPARE_OPS:
            func = self._COMPARE_OPS[op]
            opw = max(left.width, right.width, 1)

            def ev_cmp(kern, env, ctrl, ctx_width):
                lv = left.eval(kern, env, ctrl, opw).as_signed(left.signed)
                rv = right.eval(kern, env, ctrl, opw).as_signed(right.signed)
                return func(lv, rv).resize(ctx_width)

            word = None
            own_cost = 2 if op in ("!=", "<=", ">=") else 1
            if have_words:
                word = _compare_word(op, lword, rword, opw,
                                     left.signed and right.signed)

            return CExpr(width=1, signed=False, eval=ev_cmp, support=support,
                         const=const, word=word,
                         word_cost=child_cost + own_cost)
        if op in self._LOGICAL_OPS:
            func = self._LOGICAL_OPS[op]

            def ev_logic(kern, env, ctrl, ctx_width):
                lv = left.eval(kern, env, ctrl, left.width)
                rv = right.eval(kern, env, ctrl, right.width)
                return func(lv, rv).resize(ctx_width)

            word = None
            if have_words:
                lw, rw = left.width, right.width
                want_and = op == "&&"

                def word(kern, ctx_width):
                    lv = lword(kern, lw)
                    rv = rword(kern, rw)
                    if lv is None or rv is None:
                        return None
                    truth = (lv and rv) if want_and else (lv or rv)
                    return 1 if truth else 0

            return CExpr(width=1, signed=False, eval=ev_logic, support=support,
                         const=const, word=word, word_cost=child_cost + 1)
        if op in self._SHIFT_OPS:
            func = self._SHIFT_OPS[op]

            def ev_shift(kern, env, ctrl, ctx_width):
                opw = max(left.width, ctx_width)
                lv = left.eval(kern, env, ctrl, opw)
                rv = right.eval(kern, env, ctrl, right.width)
                return func(lv, rv).resize(ctx_width)

            word = None
            if have_words:
                word = _shift_word(op, lword, rword, left.width, right.width)

            return CExpr(width=left.width, signed=left.signed, eval=ev_shift,
                         support=support, const=const, word=word,
                         word_cost=child_cost + 1, rt_signed=False)
        raise CompileError(f"unsupported binary operator {op!r}")

    def _compile_ternary(self, expr: ast.Ternary) -> CExpr:
        cond = self.compile(expr.cond)
        then_value = self.compile(expr.then_value)
        else_value = self.compile(expr.else_value)
        width = max(then_value.width, else_value.width)
        signed = then_value.signed and else_value.signed
        support = cond.support | then_value.support | else_value.support

        def ev(kern, env, ctrl, ctx_width):
            opw = max(width, ctx_width)
            cv = cond.eval(kern, env, ctrl, cond.width)
            tv = then_value.eval(kern, env, ctrl, opw)
            fv = else_value.eval(kern, env, ctrl, opw)
            return ops.conditional(cv, tv, fv).resize(ctx_width)

        word = None
        if (cond.word is not None and then_value.word is not None
                and else_value.word is not None):
            cword, cw = cond.word, cond.width
            tword, fword = then_value.word, else_value.word

            def word(kern, ctx_width):
                # the generic path evaluates all three operands eagerly,
                # so the word twin must too (counter mirroring)
                opw = max(width, ctx_width)
                cv = cword(kern, cw)
                if cv is None:
                    return None
                tv = tword(kern, opw)
                if tv is None:
                    return None
                fv = fword(kern, opw)
                if fv is None:
                    return None
                return (tv if cv else fv) & ((1 << ctx_width) - 1)

        rt = _rt_signed(then_value) and _rt_signed(else_value)
        return CExpr(width=width, signed=signed, eval=ev, support=support,
                     const=cond.const and then_value.const and else_value.const,
                     word=word,
                     word_cost=(cond.word_cost + then_value.word_cost
                                + else_value.word_cost + 1),
                     rt_signed=rt)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _compile_systemcall(self, expr: ast.SystemCall) -> CExpr:
        name = expr.name
        if name in ("$random", "$randomxz"):
            four_valued = name == "$randomxz"
            if expr.args:
                raise CompileError(f"{name} takes no arguments (seed unsupported)")
            callsite = self.ctx.callsite_factory(name, expr.line)

            def ev_random(kern, env, ctrl, ctx_width):
                return kern.new_symbol(callsite, ctx_width, four_valued, ctrl)

            return CExpr(width=1, signed=False, eval=ev_random, flexible=True)
        if name == "$time" or name == "$stime" or name == "$realtime":
            def ev_time(kern, env, ctrl, ctx_width):
                return FourVec.from_int(kern.mgr, kern.now, ctx_width)

            def word_time(kern, ctx_width):
                return kern.now & ((1 << ctx_width) - 1)

            return CExpr(width=64, signed=False, eval=ev_time, word=word_time)
        if name in ("$signed", "$unsigned"):
            if len(expr.args) != 1:
                raise CompileError(f"{name} takes one argument")
            inner = self.compile(expr.args[0])
            signed = name == "$signed"

            def ev_cast(kern, env, ctrl, ctx_width):
                value = inner.eval(kern, env, ctrl, inner.width)
                return value.as_signed(signed).resize(ctx_width)

            word_cast = None
            if inner.word is not None:
                inner_word, inner_w = inner.word, inner.width

                def word_cast(kern, ctx_width):
                    v = inner_word(kern, inner_w)
                    if v is None:
                        return None
                    return _word_resize(v, inner_w, signed, ctx_width)

            return CExpr(width=inner.width, signed=signed, eval=ev_cast,
                         support=inner.support, const=inner.const,
                         word=word_cast, word_cost=inner.word_cost)
        raise CompileError(f"unsupported system function {name!r}")

    def _compile_functioncall(self, expr: ast.FunctionCall) -> CExpr:
        func = self.ctx.scope.find_function(expr.name)
        if func is None:
            raise CompileError(f"unknown function {expr.name!r} (line {expr.line})")
        if expr.name in self.ctx._function_stack:
            raise CompileError(f"recursive function {expr.name!r}")
        from repro.compile.funcs import FunctionEvaluator

        self.ctx._function_stack.append(expr.name)
        try:
            evaluator = FunctionEvaluator(self.ctx, func)
        finally:
            self.ctx._function_stack.pop()
        if len(expr.args) != len(evaluator.port_names):
            raise CompileError(
                f"function {expr.name!r} expects {len(evaluator.port_names)} "
                f"arguments, got {len(expr.args)}"
            )
        args = [self.compile(a) for a in expr.args]
        support = evaluator.support.union(*[a.support for a in args]) \
            if args else evaluator.support

        def ev(kern, env, ctrl, ctx_width):
            values = [
                arg.eval(kern, env, ctrl, pw)
                for arg, pw in zip(args, evaluator.port_widths)
            ]
            result = evaluator.call(kern, env, ctrl, values)
            return result.as_signed(evaluator.signed).resize(ctx_width)

        return CExpr(width=evaluator.width, signed=evaluator.signed, eval=ev,
                     support=support)

    # ------------------------------------------------------------------
    # LHS plans
    # ------------------------------------------------------------------

    def _lhs_identifier(self, expr: ast.Identifier) -> LhsPlan:
        name = expr.parts[0]
        if len(expr.parts) == 1 and name in self.ctx.func_locals:
            width, signed = self.ctx.func_locals[name]

            def write_local(kern, env, value, control):
                old = env[name]
                env[name] = value.resize(width).ite(control, old)

            def capture_local(kern, env, value, control):
                raise CompileError("non-blocking assignment inside a function")

            return LhsPlan(width=width, write=write_local, capture=capture_local)
        full, info = self._resolve(expr)
        _require_variable(info)
        if info.array is not None:
            raise CompileError(f"assignment to whole memory {full!r}")
        width = info.width

        def write(kern, env, value, control):
            kern.write_net(full, value.resize(width), control)

        def commit(kern2, vecs, controls):
            kern2.write_net(full, vecs[0], controls[0])

        def capture(kern, env, value, control):
            return NbaUpdate(commit, vecs=[value.resize(width)],
                             controls=[control], spec=("net", full))

        # Word twins for the compiled tier: under control == TRUE a
        # fully-known RHS writes exactly the from_int constant vector.
        # The blocking form parks the raw word in the store without
        # materializing it (the plan width is the declared width, so
        # the mask contract of write_net_raw holds); the NBA capture
        # must materialize because queued updates are GC roots and
        # checkpoint images.
        def fast_write(kern, raw):
            kern.write_net_raw(full, raw)

        def fast_capture(kern, raw):
            return NbaUpdate(commit,
                             vecs=[FourVec.from_int(kern.mgr, raw, width)],
                             controls=[TRUE], spec=("net", full))

        return LhsPlan(width=width, write=write, capture=capture,
                       support=frozenset([full]),
                       fast_write=fast_write, fast_capture=fast_capture)

    def _lhs_index(self, expr: ast.Index) -> LhsPlan:
        if not isinstance(expr.base, ast.Identifier):
            raise CompileError("bit-select assignment base must be an identifier")
        base_name = expr.base.parts[0]
        if len(expr.base.parts) == 1 and base_name in self.ctx.func_locals:
            base_width, _ = self.ctx.func_locals[base_name]
            index = self.compile(expr.index)

            def write_local_bit(kern, env, value, control):
                idx = index.eval(kern, env, control, max(index.width, 32))
                env[base_name] = _merged_bit_write(
                    kern, env[base_name], idx, value, control, base_width
                )

            def capture_local_bit(kern, env, value, control):
                raise CompileError("non-blocking assignment inside a function")

            return LhsPlan(width=1, write=write_local_bit,
                           capture=capture_local_bit)
        full, info = self._resolve(expr.base)
        _require_variable(info)
        index = self.compile(expr.index)
        if info.array is not None:
            low, high = info.array
            width = info.width

            def write_word(kern, env, value, control):
                idx = index.eval(kern, env, control, max(index.width, 32))
                kern.write_array(full, idx, value.resize(width), control, low, high)

            def commit_word(kern2, vecs, controls):
                kern2.write_array(full, vecs[0], vecs[1], controls[0],
                                  low, high)

            def capture_word(kern, env, value, control):
                idx = index.eval(kern, env, control, max(index.width, 32))
                return NbaUpdate(commit_word,
                                 vecs=[idx, value.resize(width)],
                                 controls=[control],
                                 spec=("word", full, low, high))

            return LhsPlan(width=width, write=write_word, capture=capture_word,
                           support=frozenset([full]))

        def write_bit(kern, env, value, control):
            idx = index.eval(kern, env, control, max(index.width, 32))
            _write_selected_bit(kern, full, info, idx, value, control)

        def commit_bit(kern2, vecs, controls):
            _write_selected_bit(kern2, full, info, vecs[0], vecs[1],
                                controls[0])

        def capture_bit(kern, env, value, control):
            idx = index.eval(kern, env, control, max(index.width, 32))
            return NbaUpdate(commit_bit, vecs=[idx, value.resize(1)],
                             controls=[control], spec=("bit", full))

        return LhsPlan(width=1, write=write_bit, capture=capture_bit,
                       support=frozenset([full]))

    def _lhs_part_select(self, expr: ast.PartSelect) -> LhsPlan:
        if not isinstance(expr.base, ast.Identifier):
            raise CompileError("part-select assignment base must be an identifier")
        full, info = self._resolve(expr.base)
        _require_variable(info)
        from repro.frontend.elaborate import const_eval

        msb = const_eval(expr.msb, self.ctx.scope)
        lsb = const_eval(expr.lsb, self.ctx.scope)
        offset = min(info.bit_offset(msb), info.bit_offset(lsb))
        width = abs(msb - lsb) + 1

        def write(kern, env, value, control):
            _write_part(kern, full, offset, width, value, control)

        def commit(kern2, vecs, controls):
            _write_part(kern2, full, offset, width, vecs[0], controls[0])

        def capture(kern, env, value, control):
            return NbaUpdate(commit, vecs=[value.resize(width)],
                             controls=[control],
                             spec=("part", full, offset, width))

        return LhsPlan(width=width, write=write, capture=capture,
                       support=frozenset([full]))

    def _lhs_concat(self, expr: ast.Concat) -> LhsPlan:
        plans = [self.compile_lhs(p) for p in expr.parts]
        width = sum(p.width for p in plans)
        support = frozenset().union(*[p.support for p in plans])

        def distribute(value: FourVec):
            # MSB-first source order: first plan gets the top bits.
            pieces = []
            offset = width
            for plan in plans:
                offset -= plan.width
                pieces.append(value.slice(offset, plan.width))
            return pieces

        def write(kern, env, value, control):
            value = value.resize(width)
            for plan, piece in zip(plans, distribute(value)):
                plan.write(kern, env, piece, control)

        def capture(kern, env, value, control):
            value = value.resize(width)
            return NbaUpdate(subs=[
                plan.capture(kern, env, piece, control)
                for plan, piece in zip(plans, distribute(value))
            ])

        return LhsPlan(width=width, write=write, capture=capture, support=support)


# ----------------------------------------------------------------------
# helpers shared by RHS/LHS select logic
# ----------------------------------------------------------------------


def _require_variable(info: NetInfo) -> None:
    """Procedural assignment targets must be variables, not nets (1364)."""
    if info.is_net:
        raise CompileError(
            f"procedural assignment to net {info.full_name!r} "
            f"({info.kind}); use a continuous assign or declare it reg"
        )


def _select_bit_flat(kern, base: FourVec, idx: FourVec, width: int) -> FourVec:
    """Read ``base[idx]`` on a plain [width-1:0] vector (function local)."""
    mgr = kern.mgr
    concrete = idx.to_int_or_none()
    if concrete is not None and idx.is_fully_known():
        if 0 <= concrete < width:
            return FourVec(mgr, [base.bits[concrete]])
        return FourVec(mgr, [BIT_X])
    result = FourVec(mgr, [BIT_X])
    for offset in range(width):
        cond = ops.equal(idx, FourVec.from_int(mgr, offset, idx.width)).truthy()
        if cond == FALSE:
            continue
        result = FourVec(mgr, [base.bits[offset]]).ite(cond, result)
    return result


def _merged_bit_write(kern, base: FourVec, idx: FourVec, value: FourVec,
                      control: int, width: int) -> FourVec:
    """Return ``base`` with bit ``idx`` set to ``value`` under ``control``."""
    mgr = kern.mgr
    bit = value.resize(1)
    bits = list(base.bits)
    concrete = idx.to_int_or_none()
    if concrete is not None and idx.is_fully_known():
        if 0 <= concrete < width:
            merged = bit.ite(control, FourVec(mgr, [bits[concrete]]))
            bits[concrete] = merged.bits[0]
        return FourVec(mgr, bits, base.signed)
    for offset in range(width):
        cond = ops.equal(idx, FourVec.from_int(mgr, offset, idx.width)).truthy()
        cond = mgr.and_(cond, control)
        if cond == FALSE:
            continue
        merged = bit.ite(cond, FourVec(mgr, [bits[offset]]))
        bits[offset] = merged.bits[0]
    return FourVec(mgr, bits, base.signed)


def _select_bit(kern, base: FourVec, idx: FourVec, info: NetInfo) -> FourVec:
    """Read ``base[idx]`` where ``idx`` may be symbolic.

    Declared index values are mapped through the net's range; any
    out-of-range (or X/Z) index reads X, per 1364.
    """
    mgr = kern.mgr
    idx_value = idx.to_int_or_none()
    if idx_value is not None and idx.is_fully_known():
        offset = info.bit_offset(idx_value)
        if 0 <= offset < info.width:
            return FourVec(mgr, [base.bits[offset]])
        return FourVec(mgr, [BIT_X])
    result = FourVec(mgr, [BIT_X])
    lo, hi = sorted((info.msb, info.lsb))
    for declared in range(lo, hi + 1):
        offset = info.bit_offset(declared)
        cond = ops.equal(idx, FourVec.from_int(mgr, declared, idx.width)).truthy()
        if cond == FALSE:
            continue
        result = FourVec(mgr, [base.bits[offset]]).ite(cond, result)
    return result


def _write_selected_bit(
    kern, full: str, info: NetInfo, idx: FourVec, value: FourVec, control: int
) -> None:
    """Guarded write of one (possibly symbolically indexed) bit."""
    mgr = kern.mgr
    old = kern.state.value(full)
    bit = value.resize(1)
    idx_value = idx.to_int_or_none()
    if idx_value is not None and idx.is_fully_known():
        offset = info.bit_offset(idx_value)
        if not 0 <= offset < info.width:
            return  # out-of-range writes vanish
        bits = list(old.bits)
        new_bit = bit.ite(control, FourVec(mgr, [bits[offset]]))
        bits[offset] = new_bit.bits[0]
        kern.write_net(full, FourVec(mgr, bits, old.signed), TRUE)
        return
    bits = list(old.bits)
    lo, hi = sorted((info.msb, info.lsb))
    for declared in range(lo, hi + 1):
        offset = info.bit_offset(declared)
        cond = ops.equal(idx, FourVec.from_int(mgr, declared, idx.width)).truthy()
        cond = mgr.and_(cond, control)
        if cond == FALSE:
            continue
        new_bit = bit.ite(cond, FourVec(mgr, [bits[offset]]))
        bits[offset] = new_bit.bits[0]
    kern.write_net(full, FourVec(mgr, bits, old.signed), TRUE)


def _write_part(
    kern, full: str, offset: int, width: int, value: FourVec, control: int
) -> None:
    old = kern.state.value(full)
    value = value.resize(width)
    bits = list(old.bits)
    for i in range(width):
        target = offset + i
        if not 0 <= target < len(bits):
            continue
        new_bit = FourVec(kern.mgr, [value.bits[i]]).ite(
            control, FourVec(kern.mgr, [bits[target]])
        )
        bits[target] = new_bit.bits[0]
    kern.write_net(full, FourVec(kern.mgr, bits, old.signed), TRUE)
