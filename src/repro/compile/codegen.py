"""Compiled tier: fuse instruction streams into specialized closures.

The interpreter in :mod:`repro.sim.kernel` walks one
``Instruction.execute`` dispatch per retired micro-instruction.  This
module translates each :class:`CompiledProcess` into *blocks*: one
generated Python function per resumable label, covering the whole
straight-line run from that label to the next control-splitting
instruction.  Within a block

* ``Exec``/``PrioDec``/``Goto``/``PrioAdjustGoto`` are fused — no
  dispatch, no per-instruction ``frame.pc`` bookkeeping;
* statements whose operand concreteness can pay off (``spec``-tagged
  assignments, non-blocking captures, shadow captures, repeat-counter
  decrements) get a compile-time-decided fast path that evaluates the
  RHS through its word closure (:class:`~repro.compile.expr.CExpr.word`)
  and writes a ``from_int`` vector directly — skipping the generic
  four-valued evaluation entirely when every operand is concrete;
* ``IfSplit``/``LoopSplit`` conditions with word closures resolve the
  branch as an integer test under a concrete path control;
* everything that splits control, suspends, or synchronizes
  (``Join``/``BackEdge``/fork-join/``Delay``/``WaitEvent``/``WaitCond``)
  stays a *tier boundary*: the block tail-calls the instruction's own
  ``execute``, so Fig.-9 accumulation semantics, scheduler regions,
  GC/reorder safe points, checkpoints and guard budgets are untouched.

Bit-identity contract (differential-tested against the interpreter):

* ``stats.instructions`` is flushed in exact chunks — every fused
  instruction counts once, and the flush happens *before* any call
  that can unwind the frame (``$finish``/``$error`` Execs, terminator
  ``execute`` tail-calls), matching the interpreter's
  count-before-execute order;
* every word-path hit adds the statically computed
  :attr:`~repro.compile.expr.CExpr.word_cost` to ``mgr._fp_word`` —
  exactly the ``fastpath_word_ops`` the skipped generic evaluation
  would have counted — so ``SimResult.to_dict()`` payloads compare
  equal byte for byte across tiers;
* blocks are keyed by ``(accumulation_mode, specialize)`` and cached
  on the Program (a plain attribute, never pickled: a shipped Program
  recompiles from its design image and rebuilds blocks lazily in each
  batch worker).

Block protocol: ``block(kern, frame) -> Optional[int]`` — the next
label, or ``None`` for ``returnToSimulator()``.  Each block carries
``.sites`` (``((label, count), ...)`` of constituent source sites, for
the hot-spot profiler), ``.site_seq`` (per-instruction labels in
retire order, so a ``$finish`` that unwinds mid-block attributes only
the instructions that actually retired), ``.fused`` (instructions
covered) and ``.source`` (the generated code, for debugging and
tests).
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional

from repro.bdd import TRUE
from repro.fourval import FourVec
from repro.compile.instructions import (
    AccumulationMode, BackEdge, BranchDone, CompiledProcess, Delay, End,
    Exec, ForkSpawn, Goto, IfSplit, Join, JoinCheck, LoopSplit,
    PrioAdjustGoto, PrioDec, WaitCond, WaitEvent,
)


def compiled_tables(program, mode: AccumulationMode,
                    specialize: bool) -> "CompiledTables":
    """The (cached) compiled tier of ``program`` for one configuration.

    The cache lives in a plain instance attribute so it survives for
    the Program's lifetime (batch workers reuse one Program across
    runs) but never crosses a pickle boundary —
    ``Program.__reduce__`` ships only the design image.
    """
    cache = getattr(program, "_codegen_cache", None)
    if cache is None:
        cache = program._codegen_cache = {}
    key = (mode, bool(specialize))
    tables = cache.get(key)
    if tables is None:
        tables = cache[key] = CompiledTables(program, mode, specialize)
    return tables


class CompiledTables:
    """Per-process block tables plus build statistics."""

    def __init__(self, program, mode: AccumulationMode,
                 specialize: bool) -> None:
        self.program = program
        self.mode = mode
        self.specialize = bool(specialize)
        self.blocks_built = 0
        self.fused_instructions = 0
        self.build_seconds = 0.0
        #: tables[process.index][pc] -> block or None (built on demand)
        self.tables: List[List[Optional[object]]] = [
            [None] * len(proc.instructions) for proc in program.processes
        ]
        for index, proc in enumerate(program.processes):
            for pc in sorted(_entry_points(proc)):
                self.ensure(index, pc)

    def ensure(self, proc_index: int, pc: int):
        """The block starting at ``pc``, building it on first use.

        Statically computed entry points cover every label the kernel
        can resume at; this lazy path is the safety net for labels a
        checkpoint or future instruction introduces.
        """
        table = self.tables[proc_index]
        block = table[pc]
        if block is None:
            started = _time.perf_counter()
            block = table[pc] = _build_block(
                self.program.processes[proc_index], pc, self.mode,
                self.specialize,
            )
            self.build_seconds += _time.perf_counter() - started
            self.blocks_built += 1
            self.fused_instructions += block.fused
        return block

    def stats(self) -> Dict[str, object]:
        return {
            "blocks": self.blocks_built,
            "fused_instructions": self.fused_instructions,
            "build_seconds": self.build_seconds,
            "specialize": self.specialize,
        }


def _entry_points(proc: CompiledProcess) -> set:
    """Every label a frame can *start* a block at: process entry, all
    jump/schedule targets, and the resume points after suspending or
    tail-called instructions."""
    entries = {0}
    for pc, inst in enumerate(proc.instructions):
        kind = type(inst)
        if kind is IfSplit:
            entries.add(pc + 1)
            entries.add(inst.else_target)
        elif kind is LoopSplit:
            entries.add(pc + 1)
            entries.add(inst.exit_target)
        elif kind in (Join, BackEdge, Goto, PrioAdjustGoto):
            entries.add(inst.target)
        elif kind is ForkSpawn:
            entries.add(pc + 1)
            entries.update(inst.branch_targets)
        elif kind is BranchDone:
            entries.add(inst.join_target)
        elif kind in (JoinCheck, Delay, WaitEvent, WaitCond):
            entries.add(pc + 1)
    return {pc for pc in entries if 0 <= pc < len(proc.instructions)}


# ----------------------------------------------------------------------
# block construction
# ----------------------------------------------------------------------


#: Adaptive probe gating: after this many consecutive misses a site's
#: word probe is skipped...
_MISS_STREAK = 12
#: ...and retried only when the streak count masks to zero (every 64th
#: execution), so a site that turns concrete later is picked back up.
_RETRY_MASK = 63


class _Emitter:
    """Accumulates generated source lines and the bound namespace."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.ns: Dict[str, object] = {"_T": TRUE, "_FI": FourVec.from_int}
        self.pending = 0  # fused instructions not yet flushed to stats

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def flush(self) -> None:
        """Retire the pending chunk of ``stats.instructions``.

        Called before any statement that can unwind the frame, so the
        count matches the interpreter's increment-before-execute order
        exactly on every path."""
        if self.pending:
            self.emit(f"kern.stats.instructions += {self.pending}")
            self.pending = 0

    def guarded(self, k: int, probe: List[str], cost: int,
                hit: List[str]) -> None:
        """The compile-tier dispatch shape: concrete-control word probe
        with counter mirroring, generic fallback otherwise.

        Probes are adaptively gated: a site that keeps missing (its
        operands run symbolic) stops paying the probe after
        ``_MISS_STREAK`` consecutive misses and re-probes only every
        ``_RETRY_MASK + 1`` executions, so symbolic-dominant designs
        do not fund fast paths they never take.  The gate is timing
        only — on a skipped probe the generic closure runs and counts
        its own fast-path work, so results and the mirrored counters
        stay bit-identical.
        """
        self.ns[f"g{k}"] = [0]  # consecutive-miss streak (mutable cell)
        self.emit("if frame.control == _T:")
        self.emit(f"    m = g{k}[0]")
        self.emit(f"    if m < {_MISS_STREAK} or not (m & {_RETRY_MASK}):")
        for line in probe:
            self.emit("        " + line)
        self.emit("        if v is not None:")
        self.emit(f"            g{k}[0] = 0")
        self.emit("            kern._ctier[0] += 1")
        if cost:
            self.emit(f"            kern.mgr._fp_word += {cost}")
        for line in hit:
            self.emit("            " + line)
        self.emit("        else:")
        self.emit(f"            g{k}[0] = m + 1")
        self.emit("            kern._ctier[1] += 1")
        self.emit(f"            f{k}(kern, frame)")
        self.emit("    else:")
        self.emit(f"        g{k}[0] = m + 1")
        self.emit("        kern._ctier[1] += 1")
        self.emit(f"        f{k}(kern, frame)")
        self.emit("else:")
        self.emit(f"    f{k}(kern, frame)")


def _truncated(expr: str, width: int, ctx_width: int) -> str:
    """Source for resizing a raw ``ctx_width``-bit word down to
    ``width`` bits (the only direction statement emission needs)."""
    if width < ctx_width:
        return f"({expr}) & {(1 << width) - 1}"
    return expr


def _build_block(proc: CompiledProcess, start: int, mode: AccumulationMode,
                 specialize: bool):
    instructions = proc.instructions
    full_acc = mode is AccumulationMode.FULL
    em = _Emitter()
    sites: Dict[str, int] = {}
    site_seq: List[str] = []
    fused = 0
    pc = start
    k = 0
    while True:
        inst = instructions[pc]
        label = f"{proc.name}:{inst.line}"
        sites[label] = sites.get(label, 0) + 1
        site_seq.append(label)
        em.pending += 1
        fused += 1
        k += 1
        kind = type(inst)
        if kind is Exec:
            _emit_exec(em, k, inst, specialize)
            pc += 1
            continue
        if kind is PrioDec:
            em.emit("frame.prio -= 1")
            pc += 1
            continue
        # Terminator: the pending chunk includes this instruction.
        em.flush()
        if kind is End:
            em.emit("return None")
        elif kind is Goto:
            em.emit(f"return {inst.target}")
        elif kind is PrioAdjustGoto:
            if inst.delta:
                em.emit(f"frame.prio += {inst.delta}")
            em.emit(f"return {inst.target}")
        elif kind is Join:
            if full_acc:
                em.emit("if frame.control != _T:")
                em.emit(f"    kern.schedule(frame.process, {inst.target},"
                        " 0, frame.control, frame.prio - 1)")
                em.emit("    return None")
            em.emit("frame.prio -= 1")
            em.emit(f"return {inst.target}")
        elif kind is BackEdge:
            # frame.pc must point at this BackEdge before the loop
            # watchdog samples hang sites from it.
            em.emit(f"frame.pc = {pc}")
            em.emit("kern.note_loop_iteration(frame)")
            if full_acc:
                em.emit("if frame.control != _T:")
                em.emit(f"    kern.schedule(frame.process, {inst.target},"
                        " 0, frame.control, frame.prio)")
                em.emit("    return None")
            em.emit(f"return {inst.target}")
        elif (kind is IfSplit and specialize
              and inst.cond.word is not None):
            _emit_split(em, k, inst, pc,
                        ["frame.prio += 2",
                         f"return {pc + 1} if v else {inst.else_target}"])
        elif (kind is LoopSplit and specialize
              and inst.cond.word is not None):
            _emit_split(em, k, inst, pc,
                        [f"return {pc + 1} if v else {inst.exit_target}"])
        else:
            # Generic tier boundary: IfSplit/LoopSplit without a word
            # closure, Delay, WaitEvent, WaitCond, ForkSpawn,
            # BranchDone, JoinCheck — and any instruction this module
            # does not know.  The tail-called execute() reads
            # ``frame.pc`` (resume points are pc + 1), so restore it.
            em.ns[f"i{k}"] = inst
            em.emit(f"frame.pc = {pc}")
            em.emit(f"return i{k}.execute(kern, frame)")
        break
    source = "def _b(kern, frame):\n" + "\n".join(em.lines) + "\n"
    code = compile(source, f"<codegen:{proc.name}@{start}>", "exec")
    exec(code, em.ns)
    block = em.ns["_b"]
    block.sites = tuple(sites.items())
    block.site_seq = tuple(site_seq)
    block.fused = fused
    block.start = start
    block.source = source
    return block


def _emit_split(em: _Emitter, k: int, inst, pc: int,
                hit: List[str]) -> None:
    """Terminator emission for ``IfSplit``/``LoopSplit`` with a word
    closure: resolve the branch as an integer test under a concrete
    path control, with the same adaptive miss gating as
    :meth:`_Emitter.guarded`; otherwise fall back to the
    instruction's own ``execute``."""
    em.ns[f"w{k}"] = inst.cond.word
    em.ns[f"i{k}"] = inst
    em.ns[f"g{k}"] = [0]
    em.emit("if frame.control == _T:")
    em.emit(f"    m = g{k}[0]")
    em.emit(f"    if m < {_MISS_STREAK} or not (m & {_RETRY_MASK}):")
    em.emit(f"        v = w{k}(kern, {inst.cond.width})")
    em.emit("        if v is not None:")
    em.emit(f"            g{k}[0] = 0")
    em.emit("            kern._ctier[0] += 1")
    if inst.cond.word_cost:
        em.emit(f"            kern.mgr._fp_word += {inst.cond.word_cost}")
    for line in hit:
        em.emit("            " + line)
    em.emit(f"        g{k}[0] = m + 1")
    em.emit("        kern._ctier[1] += 1")
    em.emit("    else:")
    em.emit(f"        g{k}[0] = m + 1")
    em.emit("        kern._ctier[1] += 1")
    em.emit(f"frame.pc = {pc}")
    em.emit(f"return i{k}.execute(kern, frame)")


def _emit_exec(em: _Emitter, k: int, inst: Exec, specialize: bool) -> None:
    spec = inst.spec
    em.ns[f"f{k}"] = inst.fn
    shape = spec[0] if spec else None
    if shape in ("finish", "error"):
        # These can unwind the frame (_PathFinish/_FinishSignal);
        # flush inclusively first so the retired-instruction count on
        # the unwound path matches the interpreter.
        em.flush()
        em.emit(f"f{k}(kern, frame)")
        return
    if not specialize:
        em.emit(f"f{k}(kern, frame)")
        return
    if shape == "assign":
        _, rhs, plan, width = spec
        if rhs.word is not None and plan.fast_write is not None:
            em.ns[f"w{k}"] = rhs.word
            em.ns[f"a{k}"] = plan.fast_write
            value = _truncated("v", plan.width, width)
            em.guarded(k, [f"v = w{k}(kern, {width})"], rhs.word_cost,
                       [f"a{k}(kern, {value})"])
            return
    elif shape == "nba":
        _, rhs, plan, width, no_delay = spec
        if (no_delay and rhs.word is not None
                and plan.fast_capture is not None):
            em.ns[f"w{k}"] = rhs.word
            em.ns[f"a{k}"] = plan.fast_capture
            value = _truncated("v", plan.width, width)
            em.guarded(k, [f"v = w{k}(kern, {width})"], rhs.word_cost,
                       [f"kern.schedule_nba(a{k}(kern, {value}))"])
            return
    elif shape == "shadowcap":
        _, rhs, shadow, width, store_width = spec
        if rhs.word is not None:
            em.ns[f"w{k}"] = rhs.word
            em.ns[f"s{k}"] = shadow
            value = _truncated("v", store_width, width)
            em.guarded(
                k, [f"v = w{k}(kern, {width})"], rhs.word_cost,
                [f"kern.write_net_raw(s{k}, {value})"],
            )
            return
    elif shape == "decrement":
        _, shadow, width = spec
        em.ns[f"s{k}"] = shadow
        full_mask = (1 << width) - 1
        # The generic closure's ops.subtract counts one word-level op
        # when the counter is concrete; mirror it.
        em.guarded(
            k,
            [f"v = kern.state.known_word(s{k})"],
            1,
            [f"kern.write_net_raw(s{k}, (v - 1) & {full_mask})"],
        )
        return
    # "commit" / "copyout" / untagged closures: nothing to decide at
    # compile time — run the generic closure, still fused in the block.
    em.emit(f"f{k}(kern, frame)")
