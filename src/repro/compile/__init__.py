"""Behavioral compiler: elaborated ASTs → micro-instruction streams.

This is the analogue of the paper's Verilog→C++ translator (Section 6).
Each ``initial``/``always`` process becomes a
:class:`~repro.compile.instructions.CompiledProcess` — a flat,
label-addressed list of instructions implementing the translation
schemes of Figs. 1, 2 and 9 (control splitting via zero-delay events,
accumulation events at join points, priority bookkeeping).

Expressions compile to closures (``repro.compile.expr``) that evaluate
four-valued symbolic vectors against the kernel's state, applying the
IEEE-1364 context-sizing rules at compile time.
"""

from repro.compile.compiler import compile_design, Program
from repro.compile.instructions import CompiledProcess, Frame

__all__ = ["compile_design", "Program", "CompiledProcess", "Frame"]
