"""Statement compilation: processes and continuous assigns → a Program.

Implements the paper's translation schemes:

* ``if``/``case`` → :class:`IfSplit`/:class:`Join`/:class:`PrioDec`
  exactly per Fig. 9 (case statements capture their selector into a
  shadow register, then lower to an if-chain);
* loops → :class:`LoopSplit`/:class:`BackEdge` with accumulation at
  both the head and the exit label ("merge in loop", Fig. 7);
* ``#d`` → :class:`Delay`; ``@(...)`` → :class:`WaitEvent`;
  ``wait`` → :class:`WaitCond`;
* tasks are inlined with shadow locals (delays inside tasks therefore
  work); ``disable`` lowers to a static-priority-adjusted jump.

Shadow registers (hidden state named ``$shadow...``) implement the
values the paper's generated C++ would keep in locals that must
survive ``returnToSimulator()``: captured case selectors, intra-
assignment-delay RHS values, repeat counters and task arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.bdd import FALSE, TRUE
from repro.errors import CompileError
from repro.frontend import ast_nodes as ast
from repro.frontend.elaborate import Design, NetInfo, Scope, ScopedProcess
from repro.fourval import FourVec, ops
from repro.compile.expr import CExpr, CompileContext, ExprCompiler, LhsPlan
from repro.compile.instructions import (
    BackEdge, BranchDone, CompiledProcess, Delay, End, Exec, ForkSpawn,
    IfSplit, Join, JoinCheck, LoopSplit, PrioAdjustGoto, PrioDec,
    WaitCond, WaitEvent,
)


@dataclass
class CallSite:
    """One ``$random``/``$randomxz`` occurrence (paper Section 5)."""

    index: int
    kind: str
    where: str  # "<scope>:<line>" label for reports
    line: int


@dataclass
class DriverTarget:
    """A bit range of a net driven by one continuous assign."""

    net: str
    offset: int
    width: int


@dataclass
class CompiledContAssign:
    """One compiled continuous assignment (or port/gate hookup)."""

    index: int
    rhs: CExpr
    targets: List[DriverTarget]
    total_width: int
    delay: int = 0
    line: int = 0

    @property
    def support(self) -> FrozenSet[str]:
        return self.rhs.support


@dataclass
class Trigger:
    """One sensitivity term of an event control."""

    cexpr: CExpr
    edge: Optional[str]  # None | 'posedge' | 'negedge'


class Program:
    """The fully compiled design, ready for the kernel."""

    def __init__(self, design: Design) -> None:
        self.design = design
        self.processes: List[CompiledProcess] = []
        self.assigns: List[CompiledContAssign] = []
        self.callsites: List[CallSite] = []
        # Compile-time registries keyed by stable ids so a checkpoint
        # can serialize armed assertions / the active $monitor by
        # reference and resolve them back to compiled closures on
        # resume (closures themselves cannot be serialized).
        self.assertion_sites: Dict[str, tuple] = {}
        self.monitor_sites: Dict[str, list] = {}
        self._shadow_counter = 0
        # Pickle of the *pre-compile* elaborated design, set by
        # compile_design.  Compiled instructions are closures and can
        # never cross a process boundary; instead a pickled Program
        # ships this pristine design image and recompiles on load
        # (compilation is deterministic, asserted by the batch tests).
        self._design_image: Optional[bytes] = None

    def __reduce__(self):
        if self._design_image is None:
            raise CompileError(
                "this Program was not built by compile_design and "
                "carries no design image; it cannot be pickled"
            )
        return (_rebuild_program, (self._design_image,))

    def new_callsite(self, kind: str, where: str, line: int) -> CallSite:
        site = CallSite(index=len(self.callsites), kind=kind, where=where,
                        line=line)
        self.callsites.append(site)
        return site

    def new_shadow(self, width: int, signed: bool = False,
                   hint: str = "t") -> str:
        """Register a hidden state register and return its full name."""
        self._shadow_counter += 1
        name = f"$shadow.{self._shadow_counter}.{hint}"
        self.design.add_net(
            NetInfo(full_name=name, kind="reg", msb=width - 1, lsb=0,
                    signed=signed)
        )
        return name


def compile_design(design: Design) -> Program:
    """Compile every process and continuous assign of ``design``."""
    # Snapshot the design *before* compilation mutates it (shadow nets,
    # uniquified block locals): recompiling this image reproduces the
    # identical program, which makes the Program itself picklable — the
    # batch engine's compile-once/ship-everywhere artifact.
    import pickle as _pickle

    image = _pickle.dumps(design)
    program = Program(design)
    for scoped in design.processes:
        compiler = _ProcessCompiler(program, scoped)
        program.processes.append(compiler.compile())
    for scoped_assign in design.assigns:
        program.assigns.append(
            _compile_cont_assign(program, scoped_assign, len(program.assigns))
        )
    for index, proc in enumerate(program.processes):
        proc.index = index
    program._design_image = image
    return program


def _rebuild_program(design_image: bytes) -> Program:
    """Unpickle hook: recompile a Program from its pristine design."""
    import pickle as _pickle

    return compile_design(_pickle.loads(design_image))


# ----------------------------------------------------------------------
# continuous assigns
# ----------------------------------------------------------------------


def _compile_cont_assign(program: Program, scoped, index: int) -> CompiledContAssign:
    lhs_ctx = CompileContext(program.design, scoped.lhs_scope)
    rhs_ctx = CompileContext(program.design, scoped.rhs_scope)
    rhs_ctx.callsite_factory = _forbid_random
    lhs_ctx.callsite_factory = _forbid_random
    targets = _assign_targets(ExprCompiler(lhs_ctx), scoped.lhs)
    total = sum(t.width for t in targets)
    rhs = ExprCompiler(rhs_ctx).compile(scoped.rhs)
    return CompiledContAssign(index=index, rhs=rhs, targets=targets,
                              total_width=total, delay=scoped.delay or 0,
                              line=scoped.line)


def _forbid_random(kind: str, where: str = "", line: int = 0):
    raise CompileError("$random is not allowed in continuous assignments")


def _assign_targets(compiler: ExprCompiler, lhs: ast.Expr) -> List[DriverTarget]:
    from repro.frontend.elaborate import const_eval

    if isinstance(lhs, ast.Identifier):
        full, info = compiler._resolve(lhs)
        _require_net(info)
        return [DriverTarget(net=full, offset=0, width=info.width)]
    if isinstance(lhs, ast.PartSelect):
        if not isinstance(lhs.base, ast.Identifier):
            raise CompileError("continuous assign part-select base must be a net")
        full, info = compiler._resolve(lhs.base)
        _require_net(info)
        msb = const_eval(lhs.msb, compiler.ctx.scope)
        lsb = const_eval(lhs.lsb, compiler.ctx.scope)
        offset = min(info.bit_offset(msb), info.bit_offset(lsb))
        return [DriverTarget(net=full, offset=offset, width=abs(msb - lsb) + 1)]
    if isinstance(lhs, ast.Index):
        if not isinstance(lhs.base, ast.Identifier):
            raise CompileError("continuous assign bit-select base must be a net")
        full, info = compiler._resolve(lhs.base)
        _require_net(info)
        if info.array is not None:
            raise CompileError("continuous assign to a memory word")
        idx = const_eval(lhs.index, compiler.ctx.scope)
        return [DriverTarget(net=full, offset=info.bit_offset(idx), width=1)]
    if isinstance(lhs, ast.Concat):
        targets: List[DriverTarget] = []
        for part in lhs.parts:
            targets.extend(_assign_targets(compiler, part))
        return targets
    raise CompileError(
        f"invalid continuous assignment target {type(lhs).__name__}"
    )


def _require_net(info: NetInfo) -> None:
    if not info.is_net:
        raise CompileError(
            f"continuous assignment drives {info.full_name!r}, which is a "
            f"{info.kind}, not a net"
        )


# ----------------------------------------------------------------------
# behavioral processes
# ----------------------------------------------------------------------


@dataclass
class _BlockLabel:
    """Disable target bookkeeping for one named block / inlined task."""

    name: str
    depth: int
    patches: List[PrioAdjustGoto] = field(default_factory=list)


class _ProcessCompiler:
    """Compiles one ``initial``/``always`` process."""

    def __init__(self, program: Program, scoped: ScopedProcess) -> None:
        self.program = program
        self.scoped = scoped
        self.proc = CompiledProcess(name=scoped.name, kind=scoped.kind)
        self.ctx = CompileContext(program.design, scoped.scope, scoped.name)
        self.ctx.callsite_factory = self._callsite_factory
        self.depth = 0
        self.block_stack: List[_BlockLabel] = []
        self.task_stack: List[str] = []
        self._block_counter = 0

    def _callsite_factory(self, kind: str, line: int) -> CallSite:
        where = f"{self.scoped.scope.path or self.program.design.top}:{line}"
        return self.program.new_callsite(kind, where, line)

    def _expr(self, ctx: Optional[CompileContext] = None) -> ExprCompiler:
        return ExprCompiler(ctx or self.ctx)

    # ------------------------------------------------------------------

    def compile(self) -> CompiledProcess:
        self.compile_stmt(self.scoped.body, self.ctx)
        if self.scoped.kind == "always":
            self.proc.emit(BackEdge(0))
        self.proc.emit(End())
        return self.proc

    # ------------------------------------------------------------------
    # statement dispatch — returns the support (nets read) for @*
    # ------------------------------------------------------------------

    def compile_stmt(self, stmt: ast.Stmt, ctx: CompileContext) -> FrozenSet[str]:
        if stmt is None or isinstance(stmt, ast.NullStmt):
            return frozenset()
        handler = {
            ast.Block: self._compile_block,
            ast.ForkJoin: self._compile_fork,
            ast.BlockingAssign: self._compile_blocking,
            ast.NonBlockingAssign: self._compile_nonblocking,
            ast.If: self._compile_if,
            ast.Case: self._compile_case,
            ast.For: self._compile_for,
            ast.While: self._compile_while,
            ast.Repeat: self._compile_repeat,
            ast.Forever: self._compile_forever,
            ast.DelayStmt: self._compile_delay,
            ast.EventStmt: self._compile_event,
            ast.Wait: self._compile_wait,
            ast.TaskCall: self._compile_task_call,
            ast.Disable: self._compile_disable,
            ast.EventTrigger: self._compile_event_trigger,
        }.get(type(stmt))
        if handler is None:
            raise CompileError(f"cannot compile statement {type(stmt).__name__}")
        return handler(stmt, ctx)

    # ------------------------------------------------------------------

    def _compile_block(self, stmt: ast.Block, ctx: CompileContext) -> FrozenSet[str]:
        inner_ctx = ctx
        if stmt.decls:
            local_map = dict(ctx.local_map)
            block_name = stmt.name or self._fresh_block_name()
            scope = ctx.scope
            for decl in stmt.decls:
                full = scope.full_name(
                    f"{block_name}.{decl.name}"
                ) + f"@{self.proc.name}" * 0
                # Uniquify across processes that reuse generated names.
                if full in self.program.design.nets:
                    full = f"{full}@{self.proc.name}"
                info = _block_decl_to_net(self.program.design, scope, decl, full)
                self.program.design.add_net(info)
                local_map[decl.name] = full
            inner_ctx = ctx.child_with_locals(local_map)
        label = _BlockLabel(name=stmt.name or "", depth=self.depth)
        self.block_stack.append(label)
        support = frozenset()
        try:
            for sub in stmt.stmts:
                support |= self.compile_stmt(sub, inner_ctx)
        finally:
            self.block_stack.pop()
        end = self.proc.next_label
        for patch in label.patches:
            patch.target = end
        return support

    def _compile_fork(self, stmt: ast.ForkJoin, ctx: CompileContext) -> FrozenSet[str]:
        """``fork/join``: N parallel branches plus a completion barrier.

        Per-branch completion masks live in 1-bit shadow nets whose
        value rail holds the BDD of path assignments on which that
        branch has finished since the current fork activation.
        """
        inner_ctx = ctx
        if stmt.decls:
            local_map = dict(ctx.local_map)
            block_name = stmt.name or self._fresh_block_name()
            for decl in stmt.decls:
                full = ctx.scope.full_name(f"{block_name}.{decl.name}")
                if full in self.program.design.nets:
                    full = f"{full}@{self.proc.name}"
                info = _block_decl_to_net(self.program.design, ctx.scope,
                                          decl, full)
                self.program.design.add_net(info)
                local_map[decl.name] = full
            inner_ctx = ctx.child_with_locals(local_map)
        branches = [b for b in stmt.branches
                    if not isinstance(b, ast.NullStmt)]
        if not branches:
            return frozenset()
        masks = [self.program.new_shadow(1, hint=f"fork.b{k}")
                 for k in range(len(branches))]

        def reset_masks(kern, frame):
            inverse = kern.mgr.not_(frame.control)
            for mask_net in masks:
                current = kern.state.value(mask_net).bits[0][0]
                cleared = kern.mgr.and_(current, inverse)
                kern.set_mask(mask_net, cleared)

        self.proc.emit(Exec(reset_masks, stmt.line))
        spawn = ForkSpawn(line=stmt.line)
        self.proc.emit(spawn)
        self.depth += 1
        support = frozenset()
        done_instrs = []
        branch_starts = []
        for branch, mask_net in zip(branches, masks):
            branch_starts.append(self.proc.next_label)
            support |= self.compile_stmt(branch, inner_ctx)
            done = BranchDone(mask_net, line=stmt.line)
            self.proc.emit(done)
            done_instrs.append(done)
        spawn.branch_targets = branch_starts[1:]
        join_label = self.proc.emit(JoinCheck(masks, line=stmt.line))
        self.depth -= 1
        end = self.proc.emit(PrioDec(stmt.line))
        del end  # fall-through after JoinCheck handles prio; PrioDec
        # restores the second unit (ForkSpawn raised by 2).
        for done in done_instrs:
            done.join_target = join_label
        return support

    def _fresh_block_name(self) -> str:
        self._block_counter += 1
        return f"_blk{self._block_counter}_{self.proc.name.replace('.', '_')}"

    # ------------------------------------------------------------------

    def _rhs_width(self, plan: LhsPlan, rhs: CExpr) -> int:
        return plan.width if rhs.flexible else max(plan.width, rhs.width)

    def _compile_blocking(
        self, stmt: ast.BlockingAssign, ctx: CompileContext
    ) -> FrozenSet[str]:
        compiler = self._expr(ctx)
        plan = compiler.compile_lhs(stmt.lhs)
        rhs = compiler.compile(stmt.rhs)
        width = self._rhs_width(plan, rhs)
        if stmt.intra_delay is None and stmt.intra_event is None:
            def do_assign(kern, frame):
                value = rhs.eval(kern, None, frame.control, width)
                plan.write(kern, None, value.resize(plan.width), frame.control)

            self.proc.emit(Exec(do_assign, stmt.line,
                                spec=("assign", rhs, plan, width)))
            return rhs.support | plan.support
        # intra-assignment delay/event: capture RHS, suspend, commit.
        shadow = self.program.new_shadow(plan.width, hint="ia")

        def capture(kern, frame):
            value = rhs.eval(kern, None, frame.control, width).resize(plan.width)
            old = kern.state.value(shadow)
            kern.write_net(shadow, value.ite(frame.control, old), TRUE)

        self.proc.emit(Exec(capture, stmt.line,
                            spec=("shadowcap", rhs, shadow, width,
                                  plan.width)))
        if stmt.intra_delay is not None:
            self.proc.emit(Delay(compiler.compile(stmt.intra_delay),
                                 stmt.line))
        else:
            triggers = [
                Trigger(cexpr=compiler.compile(item.expr), edge=item.edge)
                for item in stmt.intra_event
            ]
            if not triggers:
                raise CompileError(
                    "@* as an intra-assignment event control is meaningless"
                )
            self.proc.emit(WaitEvent(triggers, stmt.line))

        def commit(kern, frame):
            value = kern.state.value(shadow)
            plan.write(kern, None, value, frame.control)

        self.proc.emit(Exec(commit, stmt.line, spec=("commit", plan, shadow)))
        return rhs.support | plan.support

    def _compile_nonblocking(
        self, stmt: ast.NonBlockingAssign, ctx: CompileContext
    ) -> FrozenSet[str]:
        compiler = self._expr(ctx)
        plan = compiler.compile_lhs(stmt.lhs)
        rhs = compiler.compile(stmt.rhs)
        width = self._rhs_width(plan, rhs)
        delay_expr = (
            compiler.compile(stmt.intra_delay)
            if stmt.intra_delay is not None else None
        )

        def do_nba(kern, frame):
            value = rhs.eval(kern, None, frame.control, width).resize(plan.width)
            apply = plan.capture(kern, None, value, frame.control)
            delay = kern.eval_delay(delay_expr, frame) if delay_expr else 0
            kern.schedule_nba(apply, delay)

        self.proc.emit(Exec(do_nba, stmt.line,
                            spec=("nba", rhs, plan, width,
                                  delay_expr is None)))
        return rhs.support | plan.support

    # ------------------------------------------------------------------

    def _compile_if(self, stmt: ast.If, ctx: CompileContext) -> FrozenSet[str]:
        cond = self._expr(ctx).compile(stmt.cond)
        split = IfSplit(cond, line=stmt.line)
        self.proc.emit(split)
        self.depth += 1
        support = self.compile_stmt(stmt.then_stmt, ctx)
        then_join = Join(line=stmt.line)
        self.proc.emit(then_join)
        split.else_target = self.proc.next_label
        support |= self.compile_stmt(stmt.else_stmt, ctx)
        else_join = Join(line=stmt.line)
        self.proc.emit(else_join)
        self.depth -= 1
        endif = self.proc.emit(PrioDec(stmt.line))
        then_join.target = endif
        else_join.target = endif
        return cond.support | support

    def _compile_case(self, stmt: ast.Case, ctx: CompileContext) -> FrozenSet[str]:
        compiler = self._expr(ctx)
        selector = compiler.compile(stmt.expr)
        arms: List[Tuple[List[CExpr], ast.Stmt]] = []
        default_stmt: Optional[ast.Stmt] = None
        width = selector.width
        support = selector.support
        for item in stmt.items:
            if not item.exprs:
                if default_stmt is not None:
                    raise CompileError("multiple default arms in case")
                default_stmt = item.stmt
                continue
            exprs = [compiler.compile(e) for e in item.exprs]
            for e in exprs:
                width = max(width, e.width)
                support |= e.support
            arms.append((exprs, item.stmt))
        # Capture the selector so arm bodies can't perturb arm matching.
        shadow = self.program.new_shadow(width, hint="case")

        def capture_sel(kern, frame):
            value = selector.eval(kern, None, frame.control, width)
            old = kern.state.value(shadow)
            kern.write_net(shadow, value.ite(frame.control, old), TRUE)

        self.proc.emit(Exec(capture_sel, stmt.line,
                            spec=("shadowcap", selector, shadow, width,
                                  width)))
        match_fn = {"case": None, "casez": ops.casez_match,
                    "casex": ops.casex_match}[stmt.kind]
        support |= self._compile_case_chain(
            shadow, width, match_fn, arms, default_stmt, ctx, stmt.line
        )
        return support

    def _compile_case_chain(
        self, shadow: str, width: int, match_fn, arms, default_stmt,
        ctx: CompileContext, line: int,
    ) -> FrozenSet[str]:
        if not arms:
            if default_stmt is None:
                return frozenset()
            return self.compile_stmt(default_stmt, ctx)
        exprs, body = arms[0]

        def match_eval(kern, env, ctrl, ctx_width, _exprs=exprs):
            sel = kern.state.value(shadow).resize(width)
            cond = FALSE
            for expr in _exprs:
                item_v = expr.eval(kern, env, ctrl, width)
                if match_fn is None:
                    cond = kern.mgr.or_(cond,
                                        ops.case_equal(sel, item_v).truthy())
                else:
                    cond = kern.mgr.or_(cond, match_fn(sel, item_v))
            bit = FourVec(kern.mgr, [(cond, FALSE)])
            return bit.resize(ctx_width)

        # Word twin for plain ``case``: an integer membership test.
        # Generic eval runs one case_equal per item with no
        # short-circuit, so the mirror must probe *every* item word
        # (bailing if any is unavailable) and its static cost counts
        # every item — see the counter-mirroring contract in expr.py.
        cond_word = None
        cond_cost = 0
        if match_fn is None and all(e.word is not None for e in exprs):
            cond_cost = sum(e.word_cost for e in exprs) + len(exprs)
            item_words = [e.word for e in exprs]

            def cond_word(kern, ctx_width, _words=item_words):
                sel = kern.state.known_word(shadow)
                if sel is None:
                    return None
                hit = 0
                for w in _words:
                    iv = w(kern, width)
                    if iv is None:
                        return None
                    if iv == sel:
                        hit = 1
                return hit

        cond_cexpr = CExpr(width=1, signed=False, eval=match_eval,
                           support=frozenset([shadow]),
                           word=cond_word, word_cost=cond_cost)
        split = IfSplit(cond_cexpr, line=line)
        self.proc.emit(split)
        self.depth += 1
        support = self.compile_stmt(body, ctx)
        then_join = Join(line=line)
        self.proc.emit(then_join)
        split.else_target = self.proc.next_label
        support |= self._compile_case_chain(
            shadow, width, match_fn, arms[1:], default_stmt, ctx, line
        )
        else_join = Join(line=line)
        self.proc.emit(else_join)
        self.depth -= 1
        endif = self.proc.emit(PrioDec(line))
        then_join.target = endif
        else_join.target = endif
        return support

    # ------------------------------------------------------------------

    def _compile_loop(
        self, cond_cexpr: CExpr, line: int,
        emit_body: Callable[[], FrozenSet[str]],
    ) -> FrozenSet[str]:
        """Shared loop scheme: PrioInc, LoopSplit, body, BackEdge, exit."""
        inc = PrioAdjustGoto(delta=2, line=line)
        inc.target = self.proc.next_label + 1
        self.proc.emit(inc)
        split = LoopSplit(cond_cexpr, line=line)
        head = self.proc.emit(split)
        self.depth += 1
        support = emit_body()
        self.proc.emit(BackEdge(head, line=line))
        split.exit_target = self.proc.next_label
        exit_join = Join(line=line)
        self.proc.emit(exit_join)
        self.depth -= 1
        end = self.proc.emit(PrioDec(line))
        exit_join.target = end
        return support

    def _compile_while(self, stmt: ast.While, ctx: CompileContext) -> FrozenSet[str]:
        cond = self._expr(ctx).compile(stmt.cond)
        body_support = self._compile_loop(
            cond, stmt.line, lambda: self.compile_stmt(stmt.body, ctx)
        )
        return cond.support | body_support

    def _compile_for(self, stmt: ast.For, ctx: CompileContext) -> FrozenSet[str]:
        support = self.compile_stmt(stmt.init, ctx)
        cond = self._expr(ctx).compile(stmt.cond)

        def emit_body() -> FrozenSet[str]:
            inner = self.compile_stmt(stmt.body, ctx)
            inner |= self.compile_stmt(stmt.step, ctx)
            return inner

        return support | cond.support | self._compile_loop(cond, stmt.line,
                                                            emit_body)

    def _compile_repeat(self, stmt: ast.Repeat, ctx: CompileContext) -> FrozenSet[str]:
        compiler = self._expr(ctx)
        count = compiler.compile(stmt.count)
        width = max(count.width, 32)
        shadow = self.program.new_shadow(width, hint="rep")

        def init_counter(kern, frame):
            value = count.eval(kern, None, frame.control, width)
            old = kern.state.value(shadow)
            kern.write_net(shadow, value.ite(frame.control, old), TRUE)

        self.proc.emit(Exec(init_counter, stmt.line,
                            spec=("shadowcap", count, shadow, width, width)))

        def counter_nonzero(kern, env, ctrl, ctx_width):
            value = kern.state.value(shadow)
            nonzero = value.truthy()
            return FourVec(kern.mgr, [(nonzero, FALSE)]).resize(ctx_width)

        # Word twin: truthy() never touches fast-path counters, so the
        # mirror is cost-free.  A known-1 bit decides truth even when
        # other bits are unknown.
        full_mask = (1 << width) - 1

        def counter_word(kern, ctx_width):
            slot = kern.state.peek(shadow)
            if type(slot) is int:
                return 1 if slot else 0
            mask, value = slot.concrete_summary()
            if value:
                return 1
            if mask == full_mask:
                return 0
            return None

        cond_cexpr = CExpr(width=1, signed=False, eval=counter_nonzero,
                           support=frozenset([shadow]),
                           word=counter_word, word_cost=0)

        def emit_body() -> FrozenSet[str]:
            inner = self.compile_stmt(stmt.body, ctx)

            def decrement(kern, frame):
                value = kern.state.value(shadow)
                one = FourVec.from_int(kern.mgr, 1, width)
                dec = ops.subtract(value, one)
                kern.write_net(shadow, dec.ite(frame.control, value), TRUE)

            self.proc.emit(Exec(decrement, stmt.line,
                                spec=("decrement", shadow, width)))
            return inner

        return count.support | self._compile_loop(cond_cexpr, stmt.line,
                                                  emit_body)

    def _compile_forever(self, stmt: ast.Forever, ctx: CompileContext) -> FrozenSet[str]:
        head = self.proc.next_label
        support = self.compile_stmt(stmt.body, ctx)
        self.proc.emit(BackEdge(head, line=stmt.line))
        return support

    # ------------------------------------------------------------------

    def _compile_delay(self, stmt: ast.DelayStmt, ctx: CompileContext) -> FrozenSet[str]:
        delay_expr = self._expr(ctx).compile(stmt.delay)
        self.proc.emit(Delay(delay_expr, stmt.line))
        return self.compile_stmt(stmt.stmt, ctx)

    def _compile_event(self, stmt: ast.EventStmt, ctx: CompileContext) -> FrozenSet[str]:
        compiler = self._expr(ctx)
        wait = WaitEvent([], line=stmt.line)
        self.proc.emit(wait)
        support = self.compile_stmt(stmt.stmt, ctx)
        if stmt.items:
            triggers = [
                Trigger(cexpr=compiler.compile(item.expr), edge=item.edge)
                for item in stmt.items
            ]
            trig_support = frozenset().union(*[t.cexpr.support for t in triggers])
        else:
            # @* — sensitive to everything the guarded statement reads.
            triggers = []
            for net in sorted(support):
                info = self.program.design.net(net)
                width = info.width

                def read_net(kern, env, ctrl, ctx_width, _net=net):
                    return kern.state.value(_net).resize(ctx_width)

                triggers.append(
                    Trigger(
                        cexpr=CExpr(width=width, signed=False, eval=read_net,
                                    support=frozenset([net])),
                        edge=None,
                    )
                )
            trig_support = support
        wait.triggers = triggers
        return support | trig_support

    def _compile_wait(self, stmt: ast.Wait, ctx: CompileContext) -> FrozenSet[str]:
        cond = self._expr(ctx).compile(stmt.cond)
        self.proc.emit(WaitCond(cond, line=stmt.line))
        return cond.support | self.compile_stmt(stmt.stmt, ctx)

    # ------------------------------------------------------------------

    def _compile_disable(self, stmt: ast.Disable, ctx: CompileContext) -> FrozenSet[str]:
        for label in reversed(self.block_stack):
            if label.name == stmt.name:
                jump = PrioAdjustGoto(
                    delta=2 * (label.depth - self.depth), line=stmt.line
                )
                label.patches.append(jump)
                self.proc.emit(jump)
                return frozenset()
        raise CompileError(
            f"disable {stmt.name!r}: not an enclosing named block of this "
            f"process (cross-process disable is not supported)"
        )

    def _compile_event_trigger(
        self, stmt: ast.EventTrigger, ctx: CompileContext
    ) -> FrozenSet[str]:
        compiler = self._expr(ctx)
        full, info = compiler._resolve(ast.Identifier(parts=(stmt.name,)))
        if info.kind != "event":
            raise CompileError(f"-> target {stmt.name!r} is not an event")

        def toggle(kern, frame):
            old = kern.state.value(full)
            new = ops.bitwise_not(old).ite(frame.control, old)
            kern.write_net(full, new, TRUE)

        self.proc.emit(Exec(toggle, stmt.line))
        return frozenset()

    # ------------------------------------------------------------------
    # task enables and system tasks
    # ------------------------------------------------------------------

    def _compile_task_call(self, stmt: ast.TaskCall, ctx: CompileContext) -> FrozenSet[str]:
        if stmt.is_system:
            return self._compile_system_task(stmt, ctx)
        return self._inline_task(stmt, ctx)

    def _compile_system_task(
        self, stmt: ast.TaskCall, ctx: CompileContext
    ) -> FrozenSet[str]:
        name = stmt.name
        compiler = self._expr(ctx)
        if name in ("$display", "$write", "$strobe", "$monitor"):
            compiled_args = []
            support = frozenset()
            for arg in stmt.args:
                if isinstance(arg, ast.StringLiteral):
                    compiled_args.append(arg.value)
                else:
                    cexpr = compiler.compile(arg)
                    compiled_args.append(cexpr)
                    support |= cexpr.support

            if name == "$monitor":
                monitor_key = f"{self.proc.name}:{stmt.line}"
                self.program.monitor_sites[monitor_key] = compiled_args

                def set_monitor(kern, frame):
                    kern.set_monitor(compiled_args, frame.control,
                                     key=monitor_key)

                self.proc.emit(Exec(set_monitor, stmt.line))
            else:
                strobe = name == "$strobe"

                def do_display(kern, frame):
                    kern.display(compiled_args, frame.control, strobe=strobe,
                                 newline=name != "$write")

                self.proc.emit(Exec(do_display, stmt.line))
            return support
        if name == "$error":
            message = ""
            if stmt.args and isinstance(stmt.args[0], ast.StringLiteral):
                message = stmt.args[0].value
            where = f"{ctx.scope.path or self.program.design.top}:{stmt.line}"

            def do_error(kern, frame):
                kern.report_error(frame.control, where, message)

            self.proc.emit(Exec(do_error, stmt.line, spec=("error",)))
            return frozenset()
        if name == "$assert":
            if len(stmt.args) != 1:
                raise CompileError("$assert takes exactly one condition")
            cond = compiler.compile(stmt.args[0])
            where = f"{ctx.scope.path or self.program.design.top}:{stmt.line}"
            assertion_id = f"{self.proc.name}:{stmt.line}"
            self.program.assertion_sites.setdefault(assertion_id, (cond, where))

            def do_assert(kern, frame):
                kern.register_assertion(assertion_id, cond, frame.control, where)

            self.proc.emit(Exec(do_assert, stmt.line))
            return cond.support
        if name in ("$finish", "$stop"):
            def do_finish(kern, frame):
                kern.finish(stopped=name == "$stop", control=frame.control)

            self.proc.emit(Exec(do_finish, stmt.line, spec=("finish",)))
            return frozenset()
        if name in ("$random", "$randomxz"):
            # value discarded; still introduces (and logs) a variable
            callsite = ctx.callsite_factory(name, stmt.line)
            four_valued = name == "$randomxz"

            def do_random(kern, frame):
                kern.new_symbol(callsite, 32, four_valued, frame.control)

            self.proc.emit(Exec(do_random, stmt.line))
            return frozenset()
        if name == "$dumpfile":
            if not stmt.args or not isinstance(stmt.args[0], ast.StringLiteral):
                raise CompileError("$dumpfile needs a string literal path")
            path = stmt.args[0].value

            def do_dumpfile(kern, frame):
                kern.set_vcd_path(path)

            self.proc.emit(Exec(do_dumpfile, stmt.line))
            return frozenset()
        if name == "$dumpvars":
            def do_dumpvars(kern, frame):
                kern.enable_vcd()

            self.proc.emit(Exec(do_dumpvars, stmt.line))
            return frozenset()
        if name in ("$dumpon", "$dumpoff", "$timeformat"):
            return frozenset()  # accepted and ignored
        if name in ("$readmemh", "$readmemb"):
            raise CompileError(f"{name} is not supported (no file I/O)")
        raise CompileError(f"unsupported system task {name!r}")

    def _inline_task(self, stmt: ast.TaskCall, ctx: CompileContext) -> FrozenSet[str]:
        task = ctx.scope.find_task(stmt.name)
        if task is None:
            raise CompileError(f"unknown task {stmt.name!r} (line {stmt.line})")
        if stmt.name in self.task_stack:
            raise CompileError(f"recursive task {stmt.name!r}")
        if len(stmt.args) != len(task.ports):
            raise CompileError(
                f"task {stmt.name!r} expects {len(task.ports)} arguments, "
                f"got {len(stmt.args)}"
            )
        from repro.frontend.elaborate import const_eval

        compiler = self._expr(ctx)
        support = frozenset()
        local_map = dict(ctx.local_map)
        shadows: List[Tuple[ast.Decl, str, int]] = []
        for port in task.ports:
            if port.range is not None:
                pw = abs(const_eval(port.range.msb, ctx.scope)
                         - const_eval(port.range.lsb, ctx.scope)) + 1
            else:
                pw = 1
            shadow = self.program.new_shadow(pw, port.signed,
                                             hint=f"{stmt.name}.{port.name}")
            local_map[port.name] = shadow
            shadows.append((port, shadow, pw))
        for decl in task.decls:
            if decl.kind == "integer":
                lw = 32
            elif decl.range is not None:
                lw = abs(const_eval(decl.range.msb, ctx.scope)
                         - const_eval(decl.range.lsb, ctx.scope)) + 1
            else:
                lw = 1
            shadow = self.program.new_shadow(
                lw, decl.signed or decl.kind == "integer",
                hint=f"{stmt.name}.{decl.name}"
            )
            local_map[decl.name] = shadow

        # copy-in: input/inout arguments
        for (port, shadow, pw), arg in zip(shadows, stmt.args):
            if port.kind in ("input", "inout"):
                rhs = compiler.compile(arg)
                support |= rhs.support
                width = pw if rhs.flexible else max(pw, rhs.width)

                def copy_in(kern, frame, _rhs=rhs, _shadow=shadow, _w=width,
                            _pw=pw):
                    value = _rhs.eval(kern, None, frame.control, _w).resize(_pw)
                    old = kern.state.value(_shadow)
                    kern.write_net(_shadow, value.ite(frame.control, old), TRUE)

                self.proc.emit(Exec(copy_in, stmt.line,
                                    spec=("shadowcap", rhs, shadow, width,
                                          pw)))

        inner_ctx = ctx.child_with_locals(local_map)
        self.task_stack.append(stmt.name)
        label = _BlockLabel(name=stmt.name, depth=self.depth)
        self.block_stack.append(label)
        try:
            support |= self.compile_stmt(task.body, inner_ctx)
        finally:
            self.block_stack.pop()
            self.task_stack.pop()
        end = self.proc.next_label
        for patch in label.patches:
            patch.target = end

        # copy-out: output/inout arguments
        for (port, shadow, pw), arg in zip(shadows, stmt.args):
            if port.kind in ("output", "inout"):
                plan = compiler.compile_lhs(arg)
                support |= plan.support

                def copy_out(kern, frame, _plan=plan, _shadow=shadow):
                    value = kern.state.value(_shadow)
                    _plan.write(kern, None, value.resize(_plan.width),
                                frame.control)

                self.proc.emit(Exec(copy_out, stmt.line,
                                    spec=("copyout", plan, shadow)))
        return support


def _block_decl_to_net(design: Design, scope: Scope, decl: ast.Decl,
                       full: str) -> NetInfo:
    from repro.frontend.elaborate import const_eval

    msb = lsb = 0
    if decl.kind == "integer":
        msb = 31
    elif decl.kind == "time":
        msb = 63
    elif decl.range is not None:
        msb = const_eval(decl.range.msb, scope)
        lsb = const_eval(decl.range.lsb, scope)
    array = None
    if decl.array is not None:
        first = const_eval(decl.array.msb, scope)
        second = const_eval(decl.array.lsb, scope)
        array = (min(first, second), max(first, second))
    return NetInfo(full_name=full, kind=decl.kind, msb=msb, lsb=lsb,
                   signed=decl.signed or decl.kind == "integer", array=array,
                   line=decl.line)
