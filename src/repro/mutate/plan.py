"""Deterministic, seeded mutation plans.

A :class:`MutationPlan` is the reproducible contract of a campaign: it
fixes the canonical baseline source (the original design parsed once
and pretty-printed), enumerates every applicable mutation site in
deterministic walk order, and — when ``max_mutants`` caps the campaign
— selects a seeded random subset *restored to enumeration order*, so
the same ``(design, operators, seed, max_mutants)`` always yields a
byte-identical plan (``to_json`` is canonical: sorted keys, fixed
indentation).

Plans are built from source, not from a compiled ``Program``: the
mutation seam is the parsed AST (see :mod:`repro.mutate.operators`),
and printing the mutated AST yields an ordinary source string that the
batch engine compiles once per mutant through its existing
compile-once catalog.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import random
from typing import Dict, List, Optional, Sequence

from repro.errors import MutationError
from repro.frontend import ast_nodes as ast_mod
from repro.frontend.elaborate import elaborate
from repro.frontend.parser import parse_source
from repro.frontend.printer import print_modules
from repro.mutate import operators as ops

#: Schema tag stamped on serialized plans.
PLAN_SCHEMA = "repro.mutate.plan/1"


@dataclasses.dataclass(frozen=True)
class PlannedMutant:
    """One planned mutant: a site plus its stable campaign identity."""

    id: str
    operator: str
    module: str
    ordinal: int
    line: int
    description: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class MutationPlan:
    """The deterministic enumeration of a campaign's mutants."""

    top: str
    design_sha: str
    baseline_sha: str
    operators: List[str]
    target_modules: List[str]
    seed: int
    max_mutants: Optional[int]
    total_sites: int
    mutants: List[PlannedMutant]
    baseline_source: str = dataclasses.field(repr=False)
    #: Parsed baseline AST; regenerated per-mutant by deepcopy.  Not
    #: serialized — a deserialized plan rebuilds it from the source.
    _modules_ast: Dict[str, ast_mod.Module] = dataclasses.field(
        repr=False, compare=False, default=None)

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "top": self.top,
            "design_sha": self.design_sha,
            "baseline_sha": self.baseline_sha,
            "operators": list(self.operators),
            "target_modules": list(self.target_modules),
            "seed": self.seed,
            "max_mutants": self.max_mutants,
            "total_sites": self.total_sites,
            "mutants": [m.to_dict() for m in self.mutants],
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical for equal plans."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def __getitem__(self, mutant_id: str) -> PlannedMutant:
        for mutant in self.mutants:
            if mutant.id == mutant_id:
                return mutant
        raise KeyError(mutant_id)

    def mutant_source(self, mutant: PlannedMutant) -> str:
        """Render the Verilog source of one planned mutant."""
        modules = copy.deepcopy(self._modules_ast)
        ops.apply_site(modules, mutant.operator, mutant.module,
                       mutant.ordinal)
        return print_modules(modules)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def build_plan(
    source: str,
    top: Optional[str] = None,
    defines: Optional[Dict[str, str]] = None,
    operators: Optional[Sequence[str]] = None,
    modules: Optional[Sequence[str]] = None,
    seed: int = 0,
    max_mutants: Optional[int] = None,
) -> MutationPlan:
    """Enumerate the campaign's mutants for ``source``.

    ``modules`` selects which modules are mutated.  The default is
    every module *except* the top — the top is conventionally the
    testbench carrying the ``$assert`` checker, and mutating the
    checker would change the question instead of the design.  A
    single-module design falls back to mutating the top itself.
    """
    parsed = parse_source(source, defines=defines)
    design = elaborate(parsed, top=top)  # validates + infers the top
    top = design.top

    if modules is None:
        targets = sorted(name for name in parsed if name != top) or [top]
    else:
        targets = list(modules)
        unknown = [name for name in targets if name not in parsed]
        if unknown:
            raise MutationError(
                f"unknown target module(s) {unknown}; "
                f"design has {sorted(parsed)}")
        if not targets:
            raise MutationError("empty target module list")

    operator_names = ops.resolve_operators(operators)
    baseline_source = print_modules(parsed)

    sites = []
    for module_name in targets:
        for operator in operator_names:
            for ordinal, point in enumerate(
                    ops.matching_points(parsed[module_name], operator)):
                sites.append((operator, module_name, ordinal, point.line))
    total_sites = len(sites)

    if max_mutants is not None and max_mutants < 0:
        raise MutationError(f"max_mutants must be >= 0, got {max_mutants}")
    if max_mutants is not None and total_sites > max_mutants:
        rng = random.Random(seed)
        keep = sorted(rng.sample(range(total_sites), max_mutants))
        sites = [sites[i] for i in keep]

    mutants: List[PlannedMutant] = []
    for index, (operator, module_name, ordinal, line) in enumerate(sites):
        # Describe by applying to a scratch copy — descriptions are
        # part of the plan's byte-identity contract.
        scratch = copy.deepcopy(parsed)
        description = ops.apply_site(scratch, operator, module_name, ordinal)
        mutants.append(PlannedMutant(
            id=f"m{index:04d}_{operator}_{module_name}_o{ordinal}",
            operator=operator,
            module=module_name,
            ordinal=ordinal,
            line=line,
            description=description,
        ))

    defines_key = sorted((defines or {}).items())
    return MutationPlan(
        top=top,
        design_sha=_sha(json.dumps([source, top, defines_key])),
        baseline_sha=_sha(baseline_source),
        operators=operator_names,
        target_modules=targets,
        seed=seed,
        max_mutants=max_mutants,
        total_sites=total_sites,
        mutants=mutants,
        baseline_source=baseline_source,
        _modules_ast=parsed,
    )
