"""Mutation campaign driver: plan → batch fan-out → classification.

A campaign takes one design, builds a deterministic
:class:`~repro.mutate.plan.MutationPlan`, and fans the baseline plus
every valid mutant out through :func:`repro.batch.run_batch` — one
``RunRequest`` per mutant, so the batch engine's compile-once catalog,
worker pool, guard budgets, heartbeat status files and stall watcher
all apply unchanged.  The symbolic checker then classifies each
mutant:

``detected``
    the symbolic run hit an ``$assert``/``$error`` violation — the
    checker caught the fault, and the violation's error trace is the
    concrete witness (optionally re-verified by concrete
    resimulation, the paper's Section-5 round trip);
``undetected``
    the run completed clean — the fault survived the checker (a
    *surviving mutant*; possibly an equivalent mutant, see
    ``docs/MUTATION.md``);
``aborted``
    a guard budget, hang detector or crash ended the run before the
    checker could decide;
``invalid``
    the mutant does not compile (stillborn) — it never reaches the
    pool.  Stillborn mutants are excluded from the score denominator.

The **mutation score** is ``detected / (detected + undetected)``.

Every mutant is compile-validated in the controller before fan-out —
the batch engine treats a compile failure as fatal for the whole
batch, while a campaign must classify it and move on.  Valid mutants
are therefore compiled twice (once to validate, once in the catalog);
campaigns are simulation-dominated, so the duplicate parse/compile is
noise.

The :class:`CampaignReport` is deterministic: its ``to_dict`` payload
contains no wall-clock times, worker counts, PIDs or paths, so the
same manifest and seed produce byte-identical reports at any pool
width (asserted by the integration suite).  Wall-clock and batch
plumbing live on the report object as attributes only.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.batch.engine import BatchResult, RunOutcome, run_batch
from repro.batch.request import RunRequest
from repro.errors import MutationError, ReproError, ResimulationError
from repro.mutate.plan import MutationPlan, build_plan
from repro.obs.live import DEFAULT_EVERY
from repro.sim import SimOptions
from repro.sim.resim import resimulate
from repro.sim.trace import ErrorTrace, TraceEntry

#: Schema tag stamped on serialized campaign reports.
REPORT_SCHEMA = "repro.mutate.report/1"

#: Classification buckets, in reporting order.
CLASSIFICATIONS = ("detected", "undetected", "aborted", "invalid")

#: Run name reserved for the unmutated design.
BASELINE_NAME = "baseline"


def classify(status: str) -> str:
    """Map a batch run status string to a campaign classification."""
    if status == "assert_failed":
        return "detected"
    if status == "ok":
        return "undetected"
    return "aborted"  # aborted / hang / crash all count as aborted


@dataclasses.dataclass
class Variant:
    """An explicit, pre-built design variant to classify alongside the
    generated mutants (e.g. a planted-bug edition of the baseline)."""

    name: str
    source: str
    top: Optional[str] = None
    defines: Optional[Dict[str, str]] = None


@dataclasses.dataclass
class CampaignConfig:
    """Everything that determines a campaign's outcome (and nothing
    that doesn't — workers/out_dir are execution knobs, not config)."""

    source: str
    top: Optional[str] = None
    defines: Optional[Dict[str, str]] = None
    modules: Optional[List[str]] = None
    operators: Optional[List[str]] = None
    seed: int = 0
    max_mutants: Optional[int] = None
    until: Optional[int] = None
    options: SimOptions = dataclasses.field(default_factory=SimOptions)
    variants: List[Variant] = dataclasses.field(default_factory=list)
    verify_witnesses: bool = False


@dataclasses.dataclass
class MutantOutcome:
    """One classified mutant (or explicit variant)."""

    id: str
    classification: str
    status: str
    operator: Optional[str] = None
    module: Optional[str] = None
    ordinal: Optional[int] = None
    line: Optional[int] = None
    description: Optional[str] = None
    error: Optional[str] = None
    #: First violation of a detected mutant: kind/where/message/time
    #: plus the full error-trace entries — enough to replay the
    #: concrete witness without the campaign directory.
    witness: Optional[dict] = None
    #: Set when ``verify_witnesses`` re-ran the witness concretely.
    witness_verified: Optional[bool] = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class CampaignReport:
    """Deterministic campaign summary + per-mutant classifications."""

    top: str
    design_sha: str
    baseline_sha: str
    seed: int
    operators: List[str]
    target_modules: List[str]
    until: Optional[int]
    baseline_status: str
    totals: Dict[str, int]
    score: Optional[float]
    by_operator: Dict[str, Dict[str, object]]
    mutants: List[MutantOutcome]
    variants: List[MutantOutcome]
    plan: MutationPlan = dataclasses.field(repr=False)
    # -- execution-side attributes, excluded from to_dict() ----------
    batch: Optional[BatchResult] = dataclasses.field(
        repr=False, compare=False, default=None)
    out_dir: Optional[str] = None
    report_path: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def survivors(self) -> List[MutantOutcome]:
        return [m for m in self.mutants
                if m.classification == "undetected"]

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "top": self.top,
            "design_sha": self.design_sha,
            "baseline_sha": self.baseline_sha,
            "seed": self.seed,
            "operators": list(self.operators),
            "target_modules": list(self.target_modules),
            "until": self.until,
            "baseline_status": self.baseline_status,
            "totals": dict(self.totals),
            "score": self.score,
            "by_operator": {op: dict(row)
                            for op, row in self.by_operator.items()},
            "survivors": [
                {"id": m.id, "operator": m.operator, "module": m.module,
                 "line": m.line, "description": m.description}
                for m in self.survivors],
            "mutants": [m.to_dict() for m in self.mutants],
            "variants": [m.to_dict() for m in self.variants],
            "plan": self.plan.to_dict(),
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical for equal reports."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _witness_from_result(result: Optional[dict]) -> Optional[dict]:
    """Extract the first violation of a run payload as a witness dict."""
    if not result:
        return None
    violations = result.get("violations") or []
    if not violations:
        return None
    violation = violations[0]
    return {
        "kind": violation.get("kind"),
        "where": violation.get("where"),
        "message": violation.get("message"),
        "time": violation.get("time"),
        "trace": [dict(entry) for entry in violation.get("trace", [])],
    }


def witness_trace(witness: dict) -> ErrorTrace:
    """Rebuild a replayable :class:`ErrorTrace` from a witness dict."""
    entries = [TraceEntry(**entry) for entry in witness.get("trace", [])]
    return ErrorTrace(witness={}, entries=entries)


def _validate_mutants(plan: MutationPlan, keep_programs: bool):
    """Compile-check every planned mutant in the controller.

    Returns ``(sources, invalid, programs)``: mutant id → source for
    the valid ones, id → error string for the stillborn ones, and
    (when ``keep_programs``) id → compiled Program for witness
    verification.
    """
    from repro.compile.compiler import compile_design
    from repro.frontend.elaborate import elaborate
    from repro.frontend.parser import parse_source

    sources: Dict[str, str] = {}
    invalid: Dict[str, str] = {}
    programs: Dict[str, object] = {}
    for mutant in plan.mutants:
        source = plan.mutant_source(mutant)
        try:
            design = elaborate(parse_source(source), top=plan.top)
            program = compile_design(design)
        except ReproError as exc:
            invalid[mutant.id] = f"{type(exc).__name__}: {exc}"
            continue
        sources[mutant.id] = source
        if keep_programs:
            programs[mutant.id] = program
    return sources, invalid, programs


def run_campaign(
    config: CampaignConfig,
    workers: int = 1,
    out_dir: Optional[str] = None,
    on_result: Optional[Callable[[RunOutcome], None]] = None,
    trace: bool = False,
    heartbeat_every: Optional[int] = DEFAULT_EVERY,
    stall_after: Optional[float] = None,
    retry=None,
    resume: bool = False,
) -> CampaignReport:
    """Run one mutation campaign end to end.

    Raises :class:`MutationError` when the *baseline* run is not clean
    — every other failure is folded into the report.  ``on_result``
    streams each :class:`~repro.batch.RunOutcome` as it completes
    (classify it with :func:`classify`).

    ``retry`` (a :class:`~repro.batch.RetryPolicy`) and ``resume``
    pass straight through to :func:`~repro.batch.run_batch`: campaigns
    inherit the batch engine's durability — transient worker deaths
    retry instead of polluting the score, and an interrupted campaign
    resumes from its journal.  Retries do not change the report:
    classification sees only terminal outcomes, and a quarantined
    mutant classifies by its final status (``aborted`` for
    infrastructure failures), exactly as an unretried failure would.
    """
    plan = build_plan(
        config.source, top=config.top, defines=config.defines,
        operators=config.operators, modules=config.modules,
        seed=config.seed, max_mutants=config.max_mutants)

    verify = config.verify_witnesses
    sources, invalid, programs = _validate_mutants(plan, verify)

    requests = [RunRequest(
        name=BASELINE_NAME, source=plan.baseline_source, top=plan.top,
        options=config.options, until=config.until)]
    for mutant in plan.mutants:
        if mutant.id in sources:
            requests.append(RunRequest(
                name=mutant.id, source=sources[mutant.id], top=plan.top,
                options=config.options, until=config.until))
    seen_names = {request.name for request in requests}
    variant_programs: Dict[str, object] = {}
    for variant in config.variants:
        if variant.name in seen_names:
            raise MutationError(
                f"variant name {variant.name!r} collides with a "
                "mutant/baseline run name")
        seen_names.add(variant.name)
        requests.append(RunRequest(
            name=variant.name, source=variant.source,
            top=variant.top or plan.top, defines=variant.defines,
            options=config.options, until=config.until))

    batch = run_batch(
        requests, workers=workers, out_dir=out_dir, on_result=on_result,
        trace=trace, write_metrics=False, heartbeat_every=heartbeat_every,
        stall_after=stall_after, retry=retry, resume=resume)

    baseline = batch[BASELINE_NAME]
    if baseline.status.value != "ok":
        raise MutationError(
            f"baseline run is not clean (status {baseline.status.value}"
            f"{': ' + baseline.error if baseline.error else ''}) — "
            "a mutation score over a failing baseline is meaningless")

    def _classified(outcome: RunOutcome, program) -> MutantOutcome:
        classification = classify(outcome.status.value)
        witness = None
        verified = None
        if classification == "detected":
            witness = _witness_from_result(outcome.result)
            if witness is None:
                # Defensive: assert_failed without a recorded violation
                # would be a kernel bug; fold rather than crash.
                classification = "aborted"
            elif verify and program is not None:
                try:
                    resimulate(program, witness_trace(witness),
                               options=SimOptions(),
                               until=config.until, expect_violation=True)
                    verified = True
                except (ResimulationError, ReproError):
                    verified = False
        return MutantOutcome(
            id=outcome.name, classification=classification,
            status=outcome.status.value, error=outcome.error,
            witness=witness, witness_verified=verified)

    mutant_outcomes: List[MutantOutcome] = []
    for mutant in plan.mutants:
        if mutant.id in invalid:
            outcome = MutantOutcome(
                id=mutant.id, classification="invalid", status="invalid",
                error=invalid[mutant.id])
        else:
            outcome = _classified(batch[mutant.id], programs.get(mutant.id))
        outcome.operator = mutant.operator
        outcome.module = mutant.module
        outcome.ordinal = mutant.ordinal
        outcome.line = mutant.line
        outcome.description = mutant.description
        mutant_outcomes.append(outcome)

    variant_outcomes: List[MutantOutcome] = []
    for variant in config.variants:
        program = None
        if verify:
            from repro.compile.compiler import compile_design
            from repro.frontend.elaborate import elaborate
            from repro.frontend.parser import parse_source
            try:
                program = compile_design(elaborate(
                    parse_source(variant.source, defines=variant.defines),
                    top=variant.top or plan.top))
            except ReproError:
                program = None
        variant_outcomes.append(_classified(batch[variant.name], program))

    totals = {bucket: 0 for bucket in CLASSIFICATIONS}
    by_operator: Dict[str, Dict[str, object]] = {
        op: {bucket: 0 for bucket in CLASSIFICATIONS}
        for op in plan.operators}
    for outcome in mutant_outcomes:
        totals[outcome.classification] += 1
        by_operator[outcome.operator][outcome.classification] += 1
    totals["sites"] = plan.total_sites
    totals["planned"] = len(plan.mutants)
    totals["variants"] = len(variant_outcomes)

    def _score(row) -> Optional[float]:
        judged = row["detected"] + row["undetected"]
        return row["detected"] / judged if judged else None

    for row in by_operator.values():
        row["score"] = _score(row)
    score = _score(totals)

    report = CampaignReport(
        top=plan.top, design_sha=plan.design_sha,
        baseline_sha=plan.baseline_sha, seed=plan.seed,
        operators=list(plan.operators),
        target_modules=list(plan.target_modules),
        until=config.until, baseline_status=baseline.status.value,
        totals=totals, score=score, by_operator=by_operator,
        mutants=mutant_outcomes, variants=variant_outcomes, plan=plan,
        batch=batch, out_dir=batch.out_dir,
        wall_seconds=batch.wall_seconds)

    _aggregate_metrics(report)
    if batch.out_dir:
        batch.metrics_path = os.path.join(batch.out_dir, "metrics.json")
        batch.metrics.write_json(batch.metrics_path)
        report.report_path = os.path.join(batch.out_dir, "report.json")
        with open(report.report_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    return report


def _aggregate_metrics(report: CampaignReport) -> None:
    """Fold the campaign into the batch registry's ``mutate.*`` family."""
    registry = report.batch.metrics
    registry.gauge("mutate.sites", "mutation sites enumerated") \
        .set(report.totals["sites"])
    registry.gauge("mutate.planned", "mutants selected by the plan") \
        .set(report.totals["planned"])
    if report.score is not None:
        registry.gauge("mutate.score",
                       "mutation score: detected/(detected+undetected)") \
            .set(report.score)
    mutants = registry.counter("mutate.mutants",
                               "mutants by classification",
                               labels=("classification",))
    per_op = registry.counter("mutate.operator_mutants",
                              "mutants by operator and classification",
                              labels=("operator", "classification"))
    for outcome in report.mutants:
        mutants.labels(classification=outcome.classification).inc()
        per_op.labels(operator=outcome.operator,
                      classification=outcome.classification).inc()
    variants = registry.counter("mutate.variants",
                                "explicit variants by classification",
                                labels=("classification",))
    for outcome in report.variants:
        variants.labels(classification=outcome.classification).inc()
