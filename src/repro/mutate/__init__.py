"""Mutation/fault campaign engine (``repro.mutate``).

Generates single-site fault variants ("mutants") of a design at the
parsed-AST level, fans them out through the :mod:`repro.batch` engine,
and uses the symbolic checker to classify each mutant as detected
(with a concrete error-trace witness), undetected, aborted-by-guard,
or invalid.  See ``docs/MUTATION.md`` for the operator catalogue, the
manifest schema and the score definition.

    from repro.mutate import CampaignConfig, run_campaign
    from repro import designs

    source, top, defines = designs.load("mcu8", runtime=80, fixed=True)
    report = run_campaign(
        CampaignConfig(source=source, top=top, defines=defines,
                       operators=["opswap", "cmpswap"], until=100),
        workers=4)
    print(report.score, [m.id for m in report.survivors])
"""

from repro.mutate.campaign import (
    BASELINE_NAME,
    CLASSIFICATIONS,
    REPORT_SCHEMA,
    CampaignConfig,
    CampaignReport,
    MutantOutcome,
    Variant,
    classify,
    run_campaign,
    witness_trace,
)
from repro.mutate.manifest import load_campaign
from repro.mutate.operators import OPERATORS, apply_site, matching_points
from repro.mutate.plan import (
    PLAN_SCHEMA,
    MutationPlan,
    PlannedMutant,
    build_plan,
)

__all__ = [
    "BASELINE_NAME",
    "CLASSIFICATIONS",
    "OPERATORS",
    "PLAN_SCHEMA",
    "REPORT_SCHEMA",
    "CampaignConfig",
    "CampaignReport",
    "MutantOutcome",
    "MutationPlan",
    "PlannedMutant",
    "Variant",
    "apply_site",
    "build_plan",
    "classify",
    "load_campaign",
    "matching_points",
    "run_campaign",
    "witness_trace",
]
