"""Campaign-manifest loading for ``symsim mutate``.

A campaign manifest is one JSON document describing a single design
plus the mutation knobs::

    {
      "design": "mcu8",
      "params": {"runtime": 80, "fixed": true},
      "operators": ["opswap", "cmpswap"],
      "seed": 7,
      "max_mutants": 40,
      "until": 100,
      "workers": 4,
      "options": {"budget": {"max_wall_seconds": 60}},
      "verify_witnesses": true,
      "variants": [
        {"name": "planted-addc", "design": "mcu8",
         "params": {"runtime": 80}}
      ]
    }

The design is named exactly like a batch-manifest run: one of
``design`` (+``params``, a built-in from :mod:`repro.designs`),
``path`` (resolved relative to the manifest) or ``source`` (inline
text).  ``modules`` restricts mutation to specific modules (default:
everything except the top — see :func:`repro.mutate.build_plan`).
``options`` accepts the same keys as a batch manifest (``seed`` there
means ``concrete_random``; the *mutation* seed is the top-level
``seed`` key).  ``variants`` lists explicit pre-built designs — e.g.
planted-bug editions — classified alongside the generated mutants.

Anything malformed raises :class:`~repro.errors.MutationError`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Tuple

from repro.batch.manifest import _build_options
from repro.errors import BatchError, MutationError
from repro.mutate.campaign import CampaignConfig, Variant
from repro.mutate.operators import resolve_operators


def _resolve_design(spec: Dict, base_dir: str, label: str
                    ) -> Tuple[str, object, object]:
    """Shared design resolution: returns (source, top, defines)."""
    ways = [key for key in ("design", "path", "source") if key in spec]
    if len(ways) != 1:
        raise MutationError(
            f"{label}: give exactly one of \"design\", \"path\" or "
            f"\"source\" (got {ways or 'none'})")
    top = spec.get("top")
    defines = dict(spec.get("defines", {}) or {})
    if "design" in spec:
        from repro import designs

        params = spec.get("params", {})
        if not isinstance(params, dict):
            raise MutationError(f"{label}: \"params\" must be an object")
        try:
            source, top, builtin_defines = designs.load(
                spec["design"], **params)
        except (KeyError, TypeError) as exc:
            raise MutationError(f"{label}: {exc}") from exc
        defines = {**builtin_defines, **defines}
    elif "path" in spec:
        path = spec["path"]
        if not os.path.isabs(path):
            path = os.path.join(base_dir, path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise MutationError(
                f"{label}: cannot read source file {path!r}: {exc}") \
                from exc
    else:
        source = spec["source"]
        if not isinstance(source, str) or not source:
            raise MutationError(f"{label}: \"source\" must be a non-empty "
                                "string")
    return source, top, defines or None


def load_campaign(path: str) -> Tuple[CampaignConfig, int]:
    """Parse a campaign manifest; returns (config, workers)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise MutationError(f"cannot read manifest {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise MutationError(
            f"manifest {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise MutationError(f"manifest {path!r} must be a JSON object")

    known = {"design", "params", "path", "source", "top", "defines",
             "modules", "operators", "seed", "max_mutants", "until",
             "workers", "options", "variants", "verify_witnesses"}
    bad = set(document) - known
    if bad:
        raise MutationError(
            f"manifest {path!r}: unknown key(s) {sorted(bad)} "
            f"(known: {sorted(known)})")

    base_dir = os.path.dirname(os.path.abspath(path))
    source, top, defines = _resolve_design(document, base_dir, "manifest")

    modules = document.get("modules")
    if modules is not None and (
            not isinstance(modules, list)
            or not all(isinstance(m, str) for m in modules)):
        raise MutationError("manifest: \"modules\" must be an array of "
                            "module names")
    operators = document.get("operators")
    if operators is not None:
        if not isinstance(operators, list):
            raise MutationError("manifest: \"operators\" must be an array")
        operators = resolve_operators(operators)

    seed = document.get("seed", 0)
    if not isinstance(seed, int):
        raise MutationError("manifest: \"seed\" must be an integer")
    max_mutants = document.get("max_mutants")
    if max_mutants is not None and (
            not isinstance(max_mutants, int) or max_mutants < 0):
        raise MutationError("manifest: \"max_mutants\" must be a "
                            "non-negative integer")
    until = document.get("until")
    workers = document.get("workers", 1)
    if not isinstance(workers, int) or workers < 1:
        raise MutationError("manifest: \"workers\" must be >= 1")

    try:
        options = _build_options(document.get("options", {}), "campaign")
    except BatchError as exc:
        raise MutationError(str(exc)) from exc

    variants = []
    seen = set()
    for index, spec in enumerate(document.get("variants", [])):
        if not isinstance(spec, dict):
            raise MutationError(f"variant #{index} is not an object")
        name = spec.get("name")
        if not name or not isinstance(name, str):
            raise MutationError(f"variant #{index} needs a \"name\"")
        if name in seen:
            raise MutationError(f"duplicate variant name {name!r}")
        seen.add(name)
        v_source, v_top, v_defines = _resolve_design(
            spec, base_dir, f"variant {name!r}")
        variants.append(Variant(name=name, source=v_source, top=v_top,
                                defines=v_defines))

    config = CampaignConfig(
        source=source, top=top, defines=defines, modules=modules,
        operators=operators, seed=seed, max_mutants=max_mutants,
        until=until, options=options, variants=variants,
        verify_witnesses=bool(document.get("verify_witnesses", False)))
    return config, workers
