"""Campaign-manifest loading for ``symsim mutate``.

A campaign manifest is one JSON document describing a single design
plus the mutation knobs::

    {
      "design": "mcu8",
      "params": {"runtime": 80, "fixed": true},
      "operators": ["opswap", "cmpswap"],
      "seed": 7,
      "max_mutants": 40,
      "until": 100,
      "workers": 4,
      "options": {"budget": {"max_wall_seconds": 60}},
      "verify_witnesses": true,
      "variants": [
        {"name": "planted-addc", "design": "mcu8",
         "params": {"runtime": 80}}
      ]
    }

The design is named exactly like a batch-manifest run: one of
``design`` (+``params``, a built-in from :mod:`repro.designs`),
``path`` (resolved relative to the manifest) or ``source`` (inline
text).  ``modules`` restricts mutation to specific modules (default:
everything except the top — see :func:`repro.mutate.build_plan`).
``options`` accepts the same keys as a batch manifest (``seed`` there
means ``concrete_random``; the *mutation* seed is the top-level
``seed`` key).  ``variants`` lists explicit pre-built designs — e.g.
planted-bug editions — classified alongside the generated mutants.

Design and option parsing is a thin adapter over :mod:`repro.api`
(the ``repro.serve.request/1`` schema, with ``inline=True`` so a
``path`` design is read into source text — the mutation engine works
on text).  Anything malformed raises
:class:`~repro.errors.MutationError`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Tuple

from repro import api
from repro.errors import MutationError, RequestError
from repro.mutate.campaign import CampaignConfig, Variant
from repro.mutate.operators import resolve_operators


def _design(spec: Dict, base_dir: str, label: str
            ) -> Tuple[str, object, object]:
    """:func:`repro.api.resolve_design` with the mutation-engine error
    type; ``inline=True`` reads ``path`` designs into source text."""
    try:
        source, _path, top, defines = api.resolve_design(
            spec, base_dir, label, inline=True)
    except RequestError as exc:
        raise MutationError(str(exc)) from exc
    return source, top, defines


def load_campaign(path: str) -> Tuple[CampaignConfig, int]:
    """Parse a campaign manifest; returns (config, workers)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise MutationError(f"cannot read manifest {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise MutationError(
            f"manifest {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise MutationError(f"manifest {path!r} must be a JSON object")

    known = {"design", "params", "path", "source", "top", "defines",
             "modules", "operators", "seed", "max_mutants", "until",
             "workers", "options", "variants", "verify_witnesses"}
    bad = set(document) - known
    if bad:
        raise MutationError(
            f"manifest {path!r}: unknown key(s) {sorted(bad)} "
            f"(known: {sorted(known)})")

    base_dir = os.path.dirname(os.path.abspath(path))
    source, top, defines = _design(document, base_dir, "manifest")

    modules = document.get("modules")
    if modules is not None and (
            not isinstance(modules, list)
            or not all(isinstance(m, str) for m in modules)):
        raise MutationError("manifest: \"modules\" must be an array of "
                            "module names")
    operators = document.get("operators")
    if operators is not None:
        if not isinstance(operators, list):
            raise MutationError("manifest: \"operators\" must be an array")
        operators = resolve_operators(operators)

    seed = document.get("seed", 0)
    if not isinstance(seed, int):
        raise MutationError("manifest: \"seed\" must be an integer")
    max_mutants = document.get("max_mutants")
    if max_mutants is not None and (
            not isinstance(max_mutants, int) or max_mutants < 0):
        raise MutationError("manifest: \"max_mutants\" must be a "
                            "non-negative integer")
    until = document.get("until")
    workers = document.get("workers", 1)
    if not isinstance(workers, int) or workers < 1:
        raise MutationError("manifest: \"workers\" must be >= 1")

    try:
        options = api.parse_options(document.get("options", {}), "campaign")
    except RequestError as exc:
        raise MutationError(str(exc)) from exc

    variants = []
    seen = set()
    for index, spec in enumerate(document.get("variants", [])):
        if not isinstance(spec, dict):
            raise MutationError(f"variant #{index} is not an object")
        name = spec.get("name")
        if not name or not isinstance(name, str):
            raise MutationError(f"variant #{index} needs a \"name\"")
        if name in seen:
            raise MutationError(f"duplicate variant name {name!r}")
        seen.add(name)
        v_source, v_top, v_defines = _design(
            spec, base_dir, f"variant {name!r}")
        variants.append(Variant(name=name, source=v_source, top=v_top,
                                defines=v_defines))

    config = CampaignConfig(
        source=source, top=top, defines=defines, modules=modules,
        operators=operators, seed=seed, max_mutants=max_mutants,
        until=until, options=options, variants=variants,
        verify_witnesses=bool(document.get("verify_witnesses", False)))
    return config, workers
