"""Mutation operators over the parsed module AST.

The mutation pass works at the cleanest seam the pipeline offers: the
parsed (post-preprocess, pre-elaboration) module AST.  A mutant is
produced by applying exactly one operator at one *site* of one module
and pretty-printing the mutated AST back to Verilog source
(:mod:`repro.frontend.printer`); the result is an ordinary source
string that flows through the unchanged batch engine as a plain
``RunRequest``.  The *baseline* of a campaign is the same parse
printed unmutated, so baseline and mutants differ only at the mutated
site — never in formatting or preprocessing.

Six operators, modelled on classic RTL fault/mutation literature
("Extend IVerilog to Support Batch RTL Fault Simulation", the CirFix /
rtl-repair planted-bug suites):

==========  ==========================================================
name        effect at a site
==========  ==========================================================
``stuck0``  assignment RHS replaced by ``'b0`` (stuck-at-0 net)
``stuck1``  assignment RHS replaced by ``(~'b0)`` (stuck-at-1 net —
            the unsized literal widens to the context width before
            the LHS resize, so every bit reads 1)
``opswap``  binary operator swap ``& ↔ |``, ``+ ↔ -``, ``&& ↔ ||``
``cmpswap`` comparison polarity flip ``== ↔ !=``, ``< ↔ <=``,
            ``> ↔ >=``, ``=== ↔ !==``
``const``   off-by-one constant perturbation (value+1 mod 2^width)
``nbaswap`` non-blocking ↔ blocking capture swap where legal
==========  ==========================================================

Sites are enumerated by a deterministic pre-order walk; a site is
addressed as ``(operator, module, ordinal)`` where ``ordinal`` counts
the operator's matching points in walk order within that module.  The
walk deliberately skips positions where a mutation would change the
*question being asked* rather than the design under test, or would
routinely produce stillborn mutants:

- assignment left-hand sides (wrong-target mutations mostly produce
  width/driver errors, not interesting faults);
- delay expressions (``#d``) — perturbing delays changes scheduling,
  and a 0 delay can produce zero-delay livelock rather than a fault;
- constant-bound positions (part-select bounds, replication counts)
  whose perturbation changes net widths and rarely elaborates;
- ``for``-loop init/step headers (the printer requires plain blocking
  assigns there); the loop *condition* is still mutable — loop-bound
  off-by-one is a classic bug;
- arguments of system task calls — ``$assert``/``$error`` args ARE
  the checker, and mutating ``$display`` text cannot be detected;
- function bodies are walked, but ``nbaswap`` never introduces a
  non-blocking assign inside a function (illegal Verilog).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.errors import MutationError
from repro.frontend import ast_nodes as ast
from repro.frontend.printer import print_expr, print_stmt

#: Context tags attached to walk points (see module docstring).
TAG_FOR_HEADER = "for_header"
TAG_DELAY = "delay"
TAG_BOUNDS = "bounds"
TAG_SENSITIVITY = "sensitivity"
TAG_FUNCTION = "function_body"

_EMPTY: FrozenSet[str] = frozenset()


@dataclasses.dataclass
class MutationPoint:
    """One mutable position found by the walker.

    ``replace`` installs a replacement node at the position (used by
    operators that swap the node class); in-place operators mutate
    ``node`` directly.
    """

    node: object
    replace: Callable[[object], None]
    tags: FrozenSet[str]
    line: int


def _attr_setter(obj, name: str) -> Callable[[object], None]:
    return lambda new: setattr(obj, name, new)


def _list_setter(lst: list, index: int) -> Callable[[object], None]:
    return lambda new: lst.__setitem__(index, new)


# ----------------------------------------------------------------------
# the walk
# ----------------------------------------------------------------------


def _walk_expr(expr: Optional[ast.Expr], replace, tags: FrozenSet[str],
               out: List[MutationPoint]) -> None:
    if expr is None:
        return
    out.append(MutationPoint(expr, replace, tags,
                             getattr(expr, "line", 0) or 0))
    if isinstance(expr, ast.Index):
        _walk_expr(expr.base, _attr_setter(expr, "base"), tags, out)
        _walk_expr(expr.index, _attr_setter(expr, "index"), tags, out)
    elif isinstance(expr, ast.PartSelect):
        bound = tags | {TAG_BOUNDS}
        _walk_expr(expr.base, _attr_setter(expr, "base"), tags, out)
        _walk_expr(expr.msb, _attr_setter(expr, "msb"), bound, out)
        _walk_expr(expr.lsb, _attr_setter(expr, "lsb"), bound, out)
    elif isinstance(expr, ast.Concat):
        for i, part in enumerate(expr.parts):
            _walk_expr(part, _list_setter(expr.parts, i), tags, out)
    elif isinstance(expr, ast.Repl):
        _walk_expr(expr.count, _attr_setter(expr, "count"),
                   tags | {TAG_BOUNDS}, out)
        _walk_expr(expr.value, _attr_setter(expr, "value"), tags, out)
    elif isinstance(expr, ast.Unary):
        _walk_expr(expr.operand, _attr_setter(expr, "operand"), tags, out)
    elif isinstance(expr, ast.Binary):
        _walk_expr(expr.left, _attr_setter(expr, "left"), tags, out)
        _walk_expr(expr.right, _attr_setter(expr, "right"), tags, out)
    elif isinstance(expr, ast.Ternary):
        _walk_expr(expr.cond, _attr_setter(expr, "cond"), tags, out)
        _walk_expr(expr.then_value, _attr_setter(expr, "then_value"),
                   tags, out)
        _walk_expr(expr.else_value, _attr_setter(expr, "else_value"),
                   tags, out)
    elif isinstance(expr, (ast.FunctionCall, ast.SystemCall)):
        for i, arg in enumerate(expr.args):
            _walk_expr(arg, _list_setter(expr.args, i), tags, out)


def _walk_event_items(items, tags: FrozenSet[str],
                      out: List[MutationPoint]) -> None:
    for item in items or ():
        _walk_expr(item.expr, _attr_setter(item, "expr"),
                   tags | {TAG_SENSITIVITY}, out)


def _walk_stmt(stmt: Optional[ast.Stmt], replace, tags: FrozenSet[str],
               out: List[MutationPoint]) -> None:
    if stmt is None or isinstance(stmt, ast.NullStmt):
        return
    out.append(MutationPoint(stmt, replace, tags,
                             getattr(stmt, "line", 0) or 0))
    if isinstance(stmt, ast.Block):
        for i, sub in enumerate(stmt.stmts):
            _walk_stmt(sub, _list_setter(stmt.stmts, i), tags, out)
    elif isinstance(stmt, ast.ForkJoin):
        for i, branch in enumerate(stmt.branches):
            _walk_stmt(branch, _list_setter(stmt.branches, i), tags, out)
    elif isinstance(stmt, (ast.BlockingAssign, ast.NonBlockingAssign)):
        # LHS skipped on purpose; intra-assignment delay is a delay
        # context; an intra-assignment event control is a sensitivity.
        _walk_expr(stmt.rhs, _attr_setter(stmt, "rhs"), tags, out)
        _walk_expr(stmt.intra_delay, _attr_setter(stmt, "intra_delay"),
                   tags | {TAG_DELAY}, out)
        if isinstance(stmt, ast.BlockingAssign):
            _walk_event_items(stmt.intra_event, tags, out)
    elif isinstance(stmt, ast.If):
        _walk_expr(stmt.cond, _attr_setter(stmt, "cond"), tags, out)
        _walk_stmt(stmt.then_stmt, _attr_setter(stmt, "then_stmt"),
                   tags, out)
        _walk_stmt(stmt.else_stmt, _attr_setter(stmt, "else_stmt"),
                   tags, out)
    elif isinstance(stmt, ast.Case):
        _walk_expr(stmt.expr, _attr_setter(stmt, "expr"), tags, out)
        for item in stmt.items:
            for i, label in enumerate(item.exprs):
                _walk_expr(label, _list_setter(item.exprs, i), tags, out)
            _walk_stmt(item.stmt, _attr_setter(item, "stmt"), tags, out)
    elif isinstance(stmt, ast.For):
        header = tags | {TAG_FOR_HEADER}
        _walk_stmt(stmt.init, _attr_setter(stmt, "init"), header, out)
        _walk_expr(stmt.cond, _attr_setter(stmt, "cond"), tags, out)
        _walk_stmt(stmt.step, _attr_setter(stmt, "step"), header, out)
        _walk_stmt(stmt.body, _attr_setter(stmt, "body"), tags, out)
    elif isinstance(stmt, ast.While):
        _walk_expr(stmt.cond, _attr_setter(stmt, "cond"), tags, out)
        _walk_stmt(stmt.body, _attr_setter(stmt, "body"), tags, out)
    elif isinstance(stmt, ast.Repeat):
        _walk_expr(stmt.count, _attr_setter(stmt, "count"), tags, out)
        _walk_stmt(stmt.body, _attr_setter(stmt, "body"), tags, out)
    elif isinstance(stmt, ast.Forever):
        _walk_stmt(stmt.body, _attr_setter(stmt, "body"), tags, out)
    elif isinstance(stmt, ast.DelayStmt):
        _walk_expr(stmt.delay, _attr_setter(stmt, "delay"),
                   tags | {TAG_DELAY}, out)
        _walk_stmt(stmt.stmt, _attr_setter(stmt, "stmt"), tags, out)
    elif isinstance(stmt, ast.EventStmt):
        _walk_event_items(stmt.items, tags, out)
        _walk_stmt(stmt.stmt, _attr_setter(stmt, "stmt"), tags, out)
    elif isinstance(stmt, ast.Wait):
        _walk_expr(stmt.cond, _attr_setter(stmt, "cond"), tags, out)
        _walk_stmt(stmt.stmt, _attr_setter(stmt, "stmt"), tags, out)
    elif isinstance(stmt, ast.TaskCall):
        if not stmt.is_system:
            for i, arg in enumerate(stmt.args):
                _walk_expr(arg, _list_setter(stmt.args, i), tags, out)
    # Disable / EventTrigger: nothing mutable below.


def module_points(module: ast.Module) -> List[MutationPoint]:
    """All mutable positions of ``module``, in deterministic walk order.

    Declarations (incl. parameter/initializer expressions), gate
    wiring, and instance connections are not walked: mutating those is
    net-list rewiring, out of scope for this operator set.
    """
    out: List[MutationPoint] = []
    for assign in module.assigns:
        out.append(MutationPoint(assign, lambda new: None, _EMPTY,
                                 assign.line or 0))
        _walk_expr(assign.rhs, _attr_setter(assign, "rhs"), _EMPTY, out)
        _walk_expr(assign.delay, _attr_setter(assign, "delay"),
                   frozenset({TAG_DELAY}), out)
    for func in module.functions:
        _walk_stmt(func.body, _attr_setter(func, "body"),
                   frozenset({TAG_FUNCTION}), out)
    for task in module.tasks:
        _walk_stmt(task.body, _attr_setter(task, "body"), _EMPTY, out)
    for process in module.processes:
        _walk_stmt(process.body, _attr_setter(process, "body"), _EMPTY, out)
    return out


# ----------------------------------------------------------------------
# operators
# ----------------------------------------------------------------------


def _describe(node) -> str:
    if isinstance(node, ast.ContAssign):
        return f"assign {print_expr(node.lhs)} = {print_expr(node.rhs)};"
    if isinstance(node, ast.Stmt):
        return print_stmt(node)
    return print_expr(node)


def _zero_literal() -> ast.Number:
    # Unsized 'b0: resized to the assignment context before the LHS
    # resize, so it zeroes an LHS of any width.
    return ast.Number(bits="0", width=32, signed=False, sized=False,
                      base="b")


def _ones_literal() -> ast.Expr:
    # ~'b0 evaluates to all-ones at the context width (>= 32), then the
    # LHS resize keeps the low bits — every bit of the target reads 1.
    return ast.Unary(op="~", operand=_zero_literal())


class Operator:
    """One mutation operator: a match predicate plus an application."""

    name: str = ""
    #: True when applying the operator twice at one site restores the
    #: baseline (printed) source — tested by the metamorphic suite.
    involution: bool = False

    def matches(self, point: MutationPoint) -> bool:
        raise NotImplementedError

    def apply(self, point: MutationPoint) -> str:
        """Mutate the AST at ``point``; return ``before -> after``."""
        raise NotImplementedError


class _TableSwap(Operator):
    """Swap a binary operator according to an involution table."""

    involution = True
    table: Dict[str, str] = {}

    def matches(self, point: MutationPoint) -> bool:
        return (isinstance(point.node, ast.Binary)
                and point.node.op in self.table
                and not point.tags & {TAG_BOUNDS, TAG_DELAY})

    def apply(self, point: MutationPoint) -> str:
        node = point.node
        before = _describe(node)
        node.op = self.table[node.op]
        return f"{before} -> {_describe(node)}"


class OpSwap(_TableSwap):
    name = "opswap"
    table = {"&": "|", "|": "&", "+": "-", "-": "+",
             "&&": "||", "||": "&&", "^": "~^", "~^": "^"}


class CmpSwap(_TableSwap):
    name = "cmpswap"
    table = {"==": "!=", "!=": "==", "<": "<=", "<=": "<",
             ">": ">=", ">=": ">", "===": "!==", "!==": "==="}


class ConstPerturb(Operator):
    """Off-by-one constant perturbation: value+1 mod 2^width."""

    name = "const"
    involution = False

    def matches(self, point: MutationPoint) -> bool:
        node = point.node
        return (isinstance(node, ast.Number)
                and set(node.bits) <= {"0", "1"}
                and node.width >= 1
                and not point.tags & {TAG_BOUNDS, TAG_DELAY,
                                      TAG_SENSITIVITY})

    def apply(self, point: MutationPoint) -> str:
        node = point.node
        before = _describe(node)
        value = (int(node.bits, 2) + 1) % (1 << node.width)
        node.bits = format(value, f"0{node.width}b")
        return f"{before} -> {_describe(node)}"


class StuckAt(Operator):
    """Replace an assignment's RHS with a constant (stuck-at fault)."""

    involution = False

    def __init__(self, name: str, make_literal) -> None:
        self.name = name
        self._make_literal = make_literal

    def matches(self, point: MutationPoint) -> bool:
        node = point.node
        if not isinstance(node, (ast.ContAssign, ast.BlockingAssign,
                                 ast.NonBlockingAssign)):
            return False
        if TAG_FOR_HEADER in point.tags:
            return False
        # Skip sites already stuck at this constant — the "mutant"
        # would be trivially equivalent to the baseline.
        if self.name == "stuck0" and isinstance(node.rhs, ast.Number) \
                and set(node.rhs.bits) <= {"0"}:
            return False
        return print_expr(node.rhs) != print_expr(self._make_literal())

    def apply(self, point: MutationPoint) -> str:
        node = point.node
        before = _describe(node)
        node.rhs = self._make_literal()
        return f"{before} -> {_describe(node)}"


class NbaSwap(Operator):
    """Swap blocking ↔ non-blocking assignment where legal."""

    name = "nbaswap"
    involution = True

    def matches(self, point: MutationPoint) -> bool:
        node = point.node
        if TAG_FOR_HEADER in point.tags:
            return False
        if isinstance(node, ast.NonBlockingAssign):
            return True
        return (isinstance(node, ast.BlockingAssign)
                and node.intra_event is None
                and TAG_FUNCTION not in point.tags)

    def apply(self, point: MutationPoint) -> str:
        node = point.node
        before = _describe(node)
        if isinstance(node, ast.BlockingAssign):
            new = ast.NonBlockingAssign(
                line=node.line, lhs=node.lhs, rhs=node.rhs,
                intra_delay=node.intra_delay)
        else:
            new = ast.BlockingAssign(
                line=node.line, lhs=node.lhs, rhs=node.rhs,
                intra_delay=node.intra_delay, intra_event=None)
        point.replace(new)
        return f"{before} -> {_describe(new)}"


#: Operator registry, in the canonical enumeration order.
OPERATORS: Dict[str, Operator] = {
    op.name: op for op in (
        StuckAt("stuck0", _zero_literal),
        StuckAt("stuck1", _ones_literal),
        OpSwap(),
        CmpSwap(),
        ConstPerturb(),
        NbaSwap(),
    )
}


def resolve_operators(names) -> List[str]:
    """Validate operator names; ``None`` means all, in canonical order."""
    if names is None:
        return list(OPERATORS)
    resolved = list(names)
    unknown = [n for n in resolved if n not in OPERATORS]
    if unknown:
        raise MutationError(
            f"unknown mutation operator(s) {unknown}; "
            f"known: {sorted(OPERATORS)}")
    return resolved


def matching_points(module: ast.Module, operator: str) -> List[MutationPoint]:
    """The operator's applicable points in ``module``, in walk order."""
    op = OPERATORS[operator]
    return [p for p in module_points(module) if op.matches(p)]


def apply_site(modules: Dict[str, ast.Module], operator: str,
               module_name: str, ordinal: int) -> str:
    """Apply ``operator`` at site ``ordinal`` of ``module_name`` in place.

    Returns the ``before -> after`` description.  Raises
    :class:`MutationError` for unknown modules/operators or
    out-of-range ordinals.
    """
    if module_name not in modules:
        raise MutationError(f"unknown module {module_name!r}")
    if operator not in OPERATORS:
        raise MutationError(f"unknown mutation operator {operator!r}")
    points = matching_points(modules[module_name], operator)
    if not 0 <= ordinal < len(points):
        raise MutationError(
            f"site {operator}@{module_name}#{ordinal} out of range "
            f"(module has {len(points)} {operator} sites)")
    return OPERATORS[operator].apply(points[ordinal])
