"""``symsim`` — command-line front end for the symbolic simulator.

Examples::

    symsim design.v                      # symbolic simulation to quiescence
    symsim design.v --top tb --until 500
    symsim design.v --random-seed 1      # conventional random simulation
    symsim design.v --accumulation none  # Table-1 style comparisons
    symsim design.v --resimulate         # replay the first violation

Observability (see docs/OBSERVABILITY.md)::

    symsim design.v --trace-out t.json   # Chrome trace (Perfetto-loadable)
    symsim design.v --trace-jsonl t.jsonl
    symsim design.v --profile            # print top-N hot event sites
    symsim design.v --profile-out p.json --metrics-out m.json
    symsim report p.json                 # pretty-print a saved document

Live telemetry (see docs/OBSERVABILITY.md)::

    symsim design.v --heartbeat status.json --until 100000
    symsim top out/status/               # refreshing table of live runs
    symsim top status.json --once        # one plain table (scripts/CI)
    symsim status out/status/ --json     # raw heartbeat records
    symsim serve-metrics --port 9099 --status out/status/
    symsim bench compare OLD.json NEW.json --max-regress 10%

Robustness (see docs/ROBUSTNESS.md)::

    symsim design.v --budget-nodes 100000 --budget-seconds 3600
    symsim design.v --checkpoint-every 50 --checkpoint-dir ckpt/
    symsim design.v --resume ckpt/latest.ckpt --checkpoint-dir ckpt/

Batch simulation (see docs/BATCH.md)::

    symsim batch jobs.json --workers 4 --out-dir out/
    symsim batch jobs.json --workers 2 --no-trace --quiet
    symsim batch jobs.json --max-attempts 4 --lease-timeout 300
    symsim batch jobs.json --resume out/      # finish an interrupted batch

Serving (see docs/SERVE.md)::

    symsim serve --port 9088 --workers 4 --out-dir out/
    symsim serve --tenants tenants.json --max-in-flight 2

Mutation campaigns (see docs/MUTATION.md)::

    symsim mutate campaign.json --workers 4 --out-dir out/
    symsim mutate campaign.json --operators opswap,cmpswap --seed 7
    symsim mutate campaign.json --plan-only     # enumerate, don't run
    symsim report out/report.json               # render a saved report

Exit codes: 0 clean, 1 violations found, 2 error, 3 resimulation
failure, 4 aborted by the resource guard, 130 interrupted (Ctrl-C).
``symsim batch`` folds per-run outcomes: 0 when every run is ok, 1
when any run had assertion violations, 4 when any run aborted or
hung, 5 (the exit-4 family) when any run was *quarantined* by the
retry policy, 2 for a bad manifest, pool failure, or a ``--resume``
whose journal does not match the manifest.  ``symsim mutate`` exits
0 when the campaign completes (whatever the score), 2 for a bad
manifest or controller failure, 3 when the baseline is not clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import (
    AccumulationMode, Observability, ReproError, SimulationAborted, api,
    open_sim,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symsim",
        description="Symbolic RTL simulation of behavioral Verilog "
                    "(DAC 2001 reproduction)",
    )
    parser.add_argument("source", help="Verilog source file")
    parser.add_argument("--top", default=None,
                        help="top module (default: auto-detect)")
    parser.add_argument("--until", type=int, default=None,
                        help="simulation time bound")
    parser.add_argument("--accumulation",
                        choices=[m.value for m in AccumulationMode],
                        default=AccumulationMode.FULL.value,
                        help="event accumulation level (Table 1 columns)")
    parser.add_argument("--random-seed", type=int, default=None,
                        help="run conventionally with concrete $random values")
    parser.add_argument("--resimulate", action="store_true",
                        help="after a violation, replay its error trace "
                             "concretely")
    parser.add_argument("--continue-on-violation", action="store_true",
                        help="collect all violations instead of stopping "
                             "at the first")
    parser.add_argument("--define", action="append", default=[],
                        metavar="NAME=VALUE", help="preprocessor define")
    parser.add_argument("--stats", action="store_true",
                        help="print event/CPU statistics")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="disable the hybrid concrete/symbolic fast "
                             "paths (every operator builds BDDs bit by "
                             "bit; results are bit-identical — this is "
                             "the differential-testing / baseline-timing "
                             "switch)")
    parser.add_argument("--no-compile", action="store_true",
                        help="run the instruction interpreter instead of "
                             "the compiled block tier (results are "
                             "bit-identical; this is the differential "
                             "oracle for the codegen)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress $display output echo")
    mem = parser.add_argument_group("BDD memory management")
    mem.add_argument("--gc-threshold", type=int, default=None,
                     metavar="NODES",
                     help="run mark-and-sweep BDD garbage collection "
                          "whenever the arena grows by NODES since the "
                          "last collection (default: no GC)")
    mem.add_argument("--dyn-reorder", action="store_true",
                     help="enable dynamic sifting-based variable "
                          "reordering between time steps")
    mem.add_argument("--reorder-threshold", type=int, default=4096,
                     metavar="NODES",
                     help="minimum arena size before a sift is "
                          "considered (default 4096)")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write a Chrome trace_event JSON "
                          "(chrome://tracing / Perfetto)")
    obs.add_argument("--trace-jsonl", metavar="PATH", default=None,
                     help="write the structured trace as JSONL")
    obs.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write the unified metrics registry as JSON")
    obs.add_argument("--profile", action="store_true",
                     help="print the top-N hot event sites after the run")
    obs.add_argument("--profile-out", metavar="PATH", default=None,
                     help="write the hot-spot profile as JSON "
                          "(render with 'symsim report')")
    obs.add_argument("--profile-top", type=int, default=10, metavar="N",
                     help="sites to print with --profile (default 10)")
    obs.add_argument("--bdd-latency", action="store_true",
                     help="sample BDD operator latency histograms into "
                          "the metrics registry (implies metrics)")
    obs.add_argument("--heartbeat", metavar="PATH", default=None,
                     help="write a live status record here at end-of-step "
                          "safe points (tail it with 'symsim top')")
    obs.add_argument("--heartbeat-every", type=int, default=None,
                     metavar="N",
                     help="safe points between heartbeats (default 25; "
                          "implies --heartbeat-style telemetry even "
                          "without a status file)")
    guard = parser.add_argument_group(
        "robustness (budgets / checkpoint / resume)")
    guard.add_argument("--budget-seconds", type=float, default=None,
                       metavar="S",
                       help="wall-clock budget; exceeded -> structured "
                            "abort (exit 4) with a rescue checkpoint")
    guard.add_argument("--budget-nodes", type=int, default=None,
                       metavar="NODES",
                       help="live BDD node ceiling; pressure runs the "
                            "mitigation ladder (GC -> reorder -> "
                            "concretize) before aborting")
    guard.add_argument("--budget-rss-mb", type=float, default=None,
                       metavar="MB",
                       help="resident-set-size ceiling in MiB (Linux; "
                            "same ladder as --budget-nodes)")
    guard.add_argument("--budget-events", type=int, default=None,
                       metavar="N", help="total processed-event budget")
    guard.add_argument("--max-concretize", type=int, default=8,
                       metavar="N",
                       help="symbolic $random variables the ladder may "
                            "concretize before giving up (default 8)")
    guard.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="write a rolling checkpoint every N time "
                            "steps (requires --checkpoint-dir)")
    guard.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="directory for rolling/rescue/interrupt "
                            "checkpoints")
    guard.add_argument("--resume", metavar="CKPT", default=None,
                       help="resume a checkpointed run of the same "
                            "source instead of starting at time 0")
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symsim report",
        description="Pretty-print a saved observability document "
                    "(profile, metrics, or trace JSONL)",
    )
    parser.add_argument("file", help="JSON/JSONL document written by a "
                                     "symsim run")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="event sites to show for profiles "
                             "(default 10)")
    return parser


def report_main(argv: List[str]) -> int:
    from repro.obs.report import render_file

    args = build_report_parser().parse_args(argv)
    try:
        print(render_file(args.file, top=args.top))
    except BrokenPipeError:
        return 0  # downstream pager/head closed early — not an error
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: cannot render {args.file}: {exc}", file=sys.stderr)
        return 2
    return 0


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symsim batch",
        description="Run a manifest of simulations on a worker pool "
                    "(see docs/BATCH.md for the manifest format)",
    )
    parser.add_argument("manifest", help="jobs manifest (JSON)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--out-dir", metavar="DIR", default=None,
                        help="batch output directory: per-run artifacts, "
                             "merged trace, metrics (default: a fresh "
                             "temp dir)")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip per-worker trace shards and the merged "
                             "Chrome trace")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="also copy the merged Chrome trace here")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="also copy the aggregated metrics JSON here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-run completion stream")
    parser.add_argument("--no-heartbeat", action="store_true",
                        help="skip the per-run live status files under "
                             "<out-dir>/status/")
    parser.add_argument("--heartbeat-every", type=int, default=None,
                        metavar="N",
                        help="safe points between worker heartbeats "
                             "(default 25)")
    parser.add_argument("--stall-after", type=float, default=None,
                        metavar="S",
                        help="flag a run whose heartbeat is older than S "
                             "seconds while it still claims to be running "
                             "(stall watcher; needs heartbeats)")
    durability = parser.add_argument_group(
        "durability (leases / retries / journal — see docs/BATCH.md)")
    durability.add_argument("--max-attempts", type=int, default=None,
                            metavar="N",
                            help="attempts per run before quarantine "
                                 "(default 3; overrides the manifest's "
                                 "\"retry\" object)")
    durability.add_argument("--retry-on", metavar="A,B,...", default=None,
                            help="also retry these run statuses (e.g. "
                                 "'aborted'); infrastructure failures are "
                                 "always retried")
    durability.add_argument("--backoff-base", type=float, default=None,
                            metavar="S",
                            help="base retry backoff in seconds "
                                 "(default 0.25; capped exponential with "
                                 "deterministic jitter)")
    durability.add_argument("--lease-timeout", type=float, default=None,
                            metavar="S",
                            help="kill a run's worker and requeue the run "
                                 "when it holds its lease S seconds with "
                                 "no fresh 'running' heartbeat")
    durability.add_argument("--no-journal", action="store_true",
                            help="skip the BATCHJRNL/1 journal (the batch "
                                 "is then not resumable)")
    durability.add_argument("--resume", metavar="OUT_DIR", default=None,
                            help="resume an interrupted batch: restore "
                                 "terminal runs from OUT_DIR's journal "
                                 "(after fingerprint re-verification) and "
                                 "execute only the rest")
    return parser


def batch_main(argv: List[str]) -> int:
    import dataclasses

    from repro.batch import RetryPolicy, load_manifest, load_policy, \
        run_batch
    from repro.errors import BatchError
    from repro.sim import SimStatus

    args = build_batch_parser().parse_args(argv)
    if args.resume is not None:
        if args.out_dir is not None and args.out_dir != args.resume:
            print("error: --resume OUT_DIR and --out-dir disagree — "
                  "a resume must target the journaled output directory",
                  file=sys.stderr)
            return 2
        args.out_dir = args.resume
        if args.no_journal:
            print("error: --resume needs the journal; drop --no-journal",
                  file=sys.stderr)
            return 2

    def stream(outcome):
        if args.quiet:
            return
        tag = outcome.status.value
        line = f"[{tag:>13}] {outcome.name} ({outcome.wall_seconds:.2f}s)"
        if outcome.error:
            line += f" — {outcome.error}"
        print(line, flush=True)

    def stalled(health):
        print(f"[stall] {health.name}: still 'running' but heartbeat is "
              f"{health.age_seconds:.0f}s old", file=sys.stderr)

    from repro.obs.live import DEFAULT_EVERY

    heartbeat_every = None if args.no_heartbeat \
        else (args.heartbeat_every or DEFAULT_EVERY)
    try:
        requests = load_manifest(args.manifest)
        policy = load_policy(args.manifest) or RetryPolicy()
        overrides = {}
        if args.max_attempts is not None:
            overrides["max_attempts"] = args.max_attempts
        if args.backoff_base is not None:
            overrides["backoff_base"] = args.backoff_base
        if args.lease_timeout is not None:
            overrides["lease_timeout"] = args.lease_timeout
        if args.retry_on is not None:
            overrides["retry_statuses"] = frozenset(
                s.strip() for s in args.retry_on.split(",") if s.strip())
        if overrides:
            policy = dataclasses.replace(policy, **overrides)
        batch = run_batch(
            requests,
            workers=args.workers,
            out_dir=args.out_dir,
            on_result=stream,
            trace=not args.no_trace,
            heartbeat_every=heartbeat_every,
            stall_after=args.stall_after,
            on_stall=stalled if args.stall_after is not None else None,
            retry=policy,
            journal=not args.no_journal,
            resume=args.resume is not None,
        )
    except (BatchError, ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("batch interrupted", file=sys.stderr)
        return 130
    print(batch.summary())
    if batch.trace_path is not None:
        print(f"[obs] merged chrome trace: {batch.trace_path}")
    if batch.metrics_path is not None:
        print(f"[obs] aggregated metrics: {batch.metrics_path}")
    if batch.status_dir is not None:
        print(f"[obs] live status files: {batch.status_dir} "
              "(tail with 'symsim top')")
    if batch.stalled_runs:
        print(f"[obs] stalled mid-batch: {', '.join(batch.stalled_runs)}")
    if batch.journal_path is not None:
        print(f"[obs] batch journal: {batch.journal_path} "
              "(resume with 'symsim batch --resume')")
    if batch.quarantined_runs:
        print(f"[durability] quarantined: "
              f"{', '.join(batch.quarantined_runs)}", file=sys.stderr)
    for src, dst in ((batch.trace_path, args.trace_out),
                     (batch.metrics_path, args.metrics_out)):
        if dst is not None and src is not None:
            import shutil

            try:
                shutil.copyfile(src, dst)
            except OSError as exc:
                print(f"error: cannot write {dst}: {exc}", file=sys.stderr)
                return 2
            print(f"[obs] copied to {dst}")
    statuses = {outcome.status for outcome in batch}
    if batch.quarantined_runs:
        return 5
    if SimStatus.ABORTED in statuses or SimStatus.HANG in statuses:
        return 4
    if SimStatus.ASSERT_FAILED in statuses:
        return 1
    return 0


def build_mutate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symsim mutate",
        description="Run a mutation/fault campaign: generate single-site "
                    "mutants of a design, fan them out through the batch "
                    "engine, classify each with the symbolic checker "
                    "(see docs/MUTATION.md for the manifest format)",
    )
    parser.add_argument("manifest", help="campaign manifest (JSON)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes (overrides the manifest; "
                             "default 1)")
    parser.add_argument("--out-dir", metavar="DIR", default=None,
                        help="campaign output directory: per-run "
                             "artifacts, report.json, metrics.json "
                             "(default: a fresh temp dir)")
    parser.add_argument("--seed", type=int, default=None,
                        help="mutation-plan seed (overrides the manifest)")
    parser.add_argument("--operators", metavar="A,B,...", default=None,
                        help="comma-separated operator subset (overrides "
                             "the manifest)")
    parser.add_argument("--max-mutants", type=int, default=None,
                        metavar="N",
                        help="cap the campaign at N seeded-sampled sites "
                             "(overrides the manifest)")
    parser.add_argument("--plan-only", action="store_true",
                        help="print the canonical MutationPlan JSON and "
                             "exit without running anything")
    parser.add_argument("--report-out", metavar="PATH", default=None,
                        help="also write the campaign report JSON here")
    parser.add_argument("--verify-witnesses", action="store_true",
                        help="concretely resimulate every detected "
                             "mutant's witness (paper Section-5 round "
                             "trip)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-mutant completion stream")
    parser.add_argument("--no-heartbeat", action="store_true",
                        help="skip the per-run live status files under "
                             "<out-dir>/status/")
    parser.add_argument("--stall-after", type=float, default=None,
                        metavar="S",
                        help="flag a mutant run whose heartbeat is older "
                             "than S seconds (stall watcher)")
    parser.add_argument("--max-attempts", type=int, default=None,
                        metavar="N",
                        help="attempts per mutant run before quarantine "
                             "(default 3; infrastructure failures retry, "
                             "classifications never change)")
    parser.add_argument("--retry-on", metavar="A,B,...", default=None,
                        help="also retry these run statuses (e.g. "
                             "'aborted')")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted campaign from the "
                             "batch journal in --out-dir")
    return parser


def mutate_main(argv: List[str]) -> int:
    from repro.errors import MutationError
    from repro.mutate import build_plan, classify, load_campaign, \
        run_campaign
    from repro.obs.live import DEFAULT_EVERY
    from repro.obs.report import format_mutation_report

    args = build_mutate_parser().parse_args(argv)
    try:
        config, workers = load_campaign(args.manifest)
    except MutationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.workers is not None:
        workers = args.workers
    if args.seed is not None:
        config.seed = args.seed
    if args.operators is not None:
        config.operators = [op.strip()
                            for op in args.operators.split(",") if op.strip()]
    if args.max_mutants is not None:
        config.max_mutants = args.max_mutants
    if args.verify_witnesses:
        config.verify_witnesses = True

    if args.plan_only:
        try:
            plan = build_plan(
                config.source, top=config.top, defines=config.defines,
                operators=config.operators, modules=config.modules,
                seed=config.seed, max_mutants=config.max_mutants)
        except (MutationError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(plan.to_json(), end="")
        return 0

    def stream(outcome):
        if args.quiet:
            return
        tag = outcome.status.value if outcome.name == "baseline" \
            else classify(outcome.status.value)
        print(f"[{tag:>10}] {outcome.name} ({outcome.wall_seconds:.2f}s)",
              flush=True)

    heartbeat_every = None if args.no_heartbeat else DEFAULT_EVERY
    if args.resume and args.out_dir is None:
        print("error: --resume needs --out-dir (the journaled campaign "
              "directory)", file=sys.stderr)
        return 2
    try:
        retry = None
        if args.max_attempts is not None or args.retry_on is not None:
            from repro.batch import RetryPolicy
            retry_kwargs = {}
            if args.max_attempts is not None:
                retry_kwargs["max_attempts"] = args.max_attempts
            if args.retry_on is not None:
                retry_kwargs["retry_statuses"] = frozenset(
                    s.strip() for s in args.retry_on.split(",")
                    if s.strip())
            retry = RetryPolicy(**retry_kwargs)
        report = run_campaign(
            config, workers=workers, out_dir=args.out_dir,
            on_result=stream, heartbeat_every=heartbeat_every,
            stall_after=args.stall_after, retry=retry,
            resume=args.resume)
    except MutationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3 if "baseline run is not clean" in str(exc) else 2
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("campaign interrupted", file=sys.stderr)
        return 130

    print(format_mutation_report(report.to_dict()))
    print(f"[campaign] wall {report.wall_seconds:.2f}s on "
          f"{workers} worker(s)")
    if report.report_path is not None:
        print(f"[obs] campaign report: {report.report_path} "
              "(render with 'symsim report')")
    if report.batch.metrics_path is not None:
        print(f"[obs] aggregated metrics: {report.batch.metrics_path}")
    if args.report_out is not None:
        try:
            with open(args.report_out, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
        except OSError as exc:
            print(f"error: cannot write {args.report_out}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"[obs] report copied to {args.report_out}")
    return 0


def build_top_parser(prog: str = "symsim top") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Live table over heartbeat status files (files, "
                    "directories, or globs)",
    )
    parser.add_argument("paths", nargs="+",
                        help="status files / directories / globs "
                             "(e.g. a batch's <out-dir>/status/)")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="refresh period in seconds (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="print one table and exit (scripts, CI)")
    parser.add_argument("--stall-after", type=float, default=None,
                        metavar="S",
                        help="age after which a 'running' heartbeat is "
                             "flagged STALL (default 30)")
    return parser


def top_main(argv: List[str]) -> int:
    from repro.obs.live import DEFAULT_STALL_AFTER
    from repro.obs.top import run_top

    args = build_top_parser().parse_args(argv)
    try:
        return run_top(args.paths, interval=args.interval, once=args.once,
                       stall_after=args.stall_after or DEFAULT_STALL_AFTER)
    except KeyboardInterrupt:
        return 0


def status_main(argv: List[str]) -> int:
    from repro.obs.live import DEFAULT_STALL_AFTER, scan_status
    from repro.obs.top import format_top

    parser = build_top_parser(prog="symsim status")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the raw heartbeat records as a JSON "
                             "array instead of a table")
    args = parser.parse_args(argv)
    records = scan_status(args.paths)
    if args.as_json:
        print(json.dumps(records, indent=2))
    else:
        print(format_top(records,
                         stall_after=args.stall_after or DEFAULT_STALL_AFTER))
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symsim serve-metrics",
        description="Serve saved metrics and live heartbeat files as an "
                    "OpenMetrics scrape endpoint (GET /metrics; also "
                    "/status and /healthz)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=9099,
                        help="bind port; 0 picks an ephemeral port "
                             "(default 9099)")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="a --metrics-out snapshot to re-read and "
                             "expose on every scrape")
    parser.add_argument("--status", action="append", default=[],
                        metavar="PATH",
                        help="heartbeat status file/directory/glob to fold "
                             "into symsim.run.* families (repeatable)")
    parser.add_argument("--once", action="store_true",
                        help="print one scrape body to stdout and exit "
                             "without binding a socket")
    return parser


def serve_metrics_main(argv: List[str]) -> int:
    from repro.obs.metrics import MetricError
    from repro.obs.serve import MetricsServer, build_scrape_source

    args = build_serve_parser().parse_args(argv)
    if args.metrics_json is None and not args.status:
        print("error: nothing to serve — give --metrics-json and/or "
              "--status", file=sys.stderr)
        return 2
    source = build_scrape_source(metrics_json=args.metrics_json,
                                 status_paths=args.status)
    if args.once:
        try:
            sys.stdout.write(source())
        except (OSError, ValueError, MetricError) as exc:
            print(f"error: cannot render scrape: {exc}", file=sys.stderr)
            return 2
        return 0
    try:
        server = MetricsServer(source, host=args.host, port=args.port)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    server.watch_status(args.status)
    print(f"serving OpenMetrics on {server.url} (Ctrl-C to stop)",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server._httpd.server_close()
    return 0


def build_front_door_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symsim serve",
        description="The simulation-as-a-service front door: accept "
                    "repro.serve.request/1 submissions over HTTP+JSON "
                    "and run them on a durable multi-tenant worker pool "
                    "(see docs/SERVE.md)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=9088,
                        help="bind port; 0 picks an ephemeral port "
                             "(default 9088)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker pool width (default 1)")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="artifact root (runs/, status/, serve.jsonl); "
                             "a temp dir when omitted")
    parser.add_argument("--max-in-flight", type=int, default=2, metavar="N",
                        help="default per-tenant concurrent-run quota "
                             "(default 2)")
    parser.add_argument("--max-pending", type=int, default=16, metavar="N",
                        help="default per-tenant queue depth before 429 "
                             "(default 16)")
    parser.add_argument("--heartbeat-every", type=int, default=None,
                        metavar="N",
                        help="per-run heartbeat cadence in safe points "
                             "(default 25; 0 disables)")
    parser.add_argument("--max-attempts", type=int, default=None,
                        metavar="N",
                        help="retry budget per run before quarantine "
                             "(default 3)")
    parser.add_argument("--tenants", default=None, metavar="PATH",
                        help="JSON file of per-tenant quota overrides: "
                             '{"<tenant>": {"max_in_flight": N, '
                             '"max_pending": N, "budget": {...}}}')
    parser.add_argument("--trace", action="store_true",
                        help="give workers JSONL trace shards")
    return parser


def _load_tenants(path: str):
    """Parse a ``--tenants`` quota file through the request schema."""
    from repro.api import parse_budgets
    from repro.errors import RequestError
    from repro.serve import TenantQuota

    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise RequestError(f"tenants file {path!r} must be a JSON object")
    quotas = {}
    for tenant, spec in document.items():
        if not isinstance(spec, dict):
            raise RequestError(f"tenant {tenant!r}: quota must be an object")
        known = {"max_in_flight", "max_pending", "budget"}
        bad = set(spec) - known
        if bad:
            raise RequestError(f"tenant {tenant!r}: unknown quota keys "
                               f"{sorted(bad)} (known: {sorted(known)})")
        budgets = None
        if "budget" in spec:
            budgets = parse_budgets(spec["budget"], f"tenant {tenant!r}")
        quotas[tenant] = TenantQuota(
            max_in_flight=int(spec.get("max_in_flight", 2)),
            max_pending=int(spec.get("max_pending", 16)),
            budgets=budgets)
    return quotas


def front_door_main(argv: List[str]) -> int:
    import signal

    from repro.batch import RetryPolicy
    from repro.errors import RequestError
    from repro.obs.live import DEFAULT_EVERY
    from repro.serve import ServeConfig, TenantQuota, serve_app

    args = build_front_door_parser().parse_args(argv)
    try:
        quotas = _load_tenants(args.tenants) if args.tenants else {}
    except (OSError, json.JSONDecodeError, RequestError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    heartbeat = DEFAULT_EVERY if args.heartbeat_every is None \
        else (args.heartbeat_every or None)
    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        out_dir=args.out_dir, heartbeat_every=heartbeat, trace=args.trace,
        retry=RetryPolicy(max_attempts=args.max_attempts)
        if args.max_attempts else None,
        default_quota=TenantQuota(max_in_flight=args.max_in_flight,
                                  max_pending=args.max_pending),
        quotas=quotas)
    try:
        app = serve_app(config)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(f"serving symsim front door on http://{app.host}:{app.port} "
          f"({args.workers} worker(s), out_dir={app.out_dir}; "
          "SIGINT/SIGTERM drains and stops)", flush=True)

    def _drain(signum, frame):
        raise KeyboardInterrupt

    # explicit handlers: SIGTERM (service managers) drains like Ctrl-C,
    # and background-job shells that start us with SIGINT ignored get
    # the handler back
    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        app.serve_forever()
    except KeyboardInterrupt:
        print("draining in-flight runs...", flush=True)
    finally:
        app.close(drain=True)
    return 0


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symsim bench compare",
        description="Perf-regression gate over BENCH_*.json trajectories: "
                    "compare each benchmark's latest entry and fail on "
                    "regressions beyond the tolerance",
    )
    parser.add_argument("old", help="baseline trajectory (JSON array)")
    parser.add_argument("new", help="candidate trajectory (JSON array)")
    parser.add_argument("--max-regress", default="10%", metavar="TOL",
                        help="allowed regression per cell, e.g. '10%%' "
                             "or '0.1' (default 10%%)")
    return parser


def bench_main(argv: List[str]) -> int:
    from repro.obs.gate import (
        GateError, compare_trajectories, parse_tolerance,
    )

    if not argv or argv[0] != "compare":
        print("usage: symsim bench compare OLD.json NEW.json "
              "[--max-regress TOL]", file=sys.stderr)
        return 2
    args = build_bench_parser().parse_args(argv[1:])
    try:
        report = compare_trajectories(
            args.old, args.new,
            max_regress=parse_tolerance(args.max_regress))
    except (GateError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.describe())
    return 0 if report.passed else 1


_SUBCOMMANDS = {
    "report": report_main,
    "batch": batch_main,
    "mutate": mutate_main,
    "top": top_main,
    "status": status_main,
    "serve-metrics": serve_metrics_main,
    "serve": front_door_main,
    "bench": bench_main,
}


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    args = build_arg_parser().parse_args(argv)
    defines = {}
    for item in args.define:
        name, _, value = item.partition("=")
        defines[name] = value
    want_profile = args.profile or args.profile_out is not None
    try:
        obs = Observability.from_flags(
            trace_out=args.trace_out,
            trace_jsonl=args.trace_jsonl,
            metrics=args.metrics_out is not None or args.bdd_latency,
            profile=want_profile,
        )
    except OSError as exc:
        print(f"error: cannot open trace output: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        print("error: --checkpoint-every requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    # Flags route through the same repro.serve.request/1 schema a
    # manifest or HTTP submission uses.
    options = api.options_from_flags(args, obs=obs)
    aborted = None
    try:
        sim = open_sim(path=args.source, top=args.top, options=options,
                       defines=defines, resume=args.resume)
        if args.bdd_latency:
            sim.mgr.instrument_latency(obs.metrics)
        result = sim.run(until=args.until)
    except SimulationAborted as exc:
        # Structured abort: the guard exhausted its mitigation ladder
        # (or hit a hard budget).  Report, keep the partial result, and
        # exit 4 so scripts can distinguish this from a plain error.
        print(f"aborted: {exc}", file=sys.stderr)
        if exc.partial_result is None:
            return 4
        aborted = exc
        result = exc.partial_result
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if obs is not None:
            obs.close()
    mode = "random" if args.random_seed is not None else "symbolic"
    if aborted is not None:
        ended = "aborted by resource guard"
    elif result.interrupted:
        ended = "interrupted at a safe point"
    elif result.finished:
        ended = "$finish"
    else:
        ended = "queue empty/bound"
    print(f"[{mode}] simulation ended at time {result.time} ({ended})")
    if args.stats:
        print(f"[stats] {result.stats.summary()}")
        print(f"[stats] cpu={sim.kernel.cpu_seconds:.3f}s "
              f"bdd-nodes={sim.mgr.total_nodes} "
              f"bdd-peak={sim.mgr.peak_nodes}")
        heartbeat = getattr(sim.kernel, "_heartbeat", None)
        if heartbeat is not None:
            sink = heartbeat.path or "(in-process only)"
            print(f"[stats] heartbeats={heartbeat.beats} "
                  f"every={heartbeat.every} safe-points sink={sink}")
        cache = sim.mgr.cache_stats()
        print(f"[stats] fastpath-word={cache['fastpath_word_ops']} "
              f"fastpath-bits={cache['fastpath_bit_shortcuts']} "
              f"fastpath-sym={cache['fastpath_symbolic_ops']} "
              f"concrete-ratio={cache['fastpath_word_ratio']:.3f} "
              f"apply-hit-rate={cache['apply_hit_rate']:.3f}")
        ctier = sim.kernel.compile_tier_stats()
        if ctier is not None:
            print(f"[stats] compile-blocks={ctier['blocks']} "
                  f"compile-fused={ctier['fused_instructions']} "
                  f"compile-hits={ctier['tier_hits']} "
                  f"compile-misses={ctier['tier_misses']} "
                  f"compile-build={ctier['build_seconds']:.3f}s")
        if args.gc_threshold is not None or args.dyn_reorder:
            print(f"[stats] gc-runs={cache['gc_runs']} "
                  f"gc-reclaimed={cache['gc_reclaimed']} "
                  f"reorder-runs={cache['reorder_runs']} "
                  f"reorder-swaps={cache['reorder_swaps']} "
                  f"reorder-saved={cache['reorder_saved']}")
    if args.metrics_out is not None:
        try:
            obs.metrics.write_json(args.metrics_out)
        except OSError as exc:
            print(f"error: cannot write {args.metrics_out}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"[obs] metrics written to {args.metrics_out}")
    if args.trace_out is not None:
        print(f"[obs] chrome trace written to {args.trace_out}")
    if args.trace_jsonl is not None:
        print(f"[obs] trace JSONL written to {args.trace_jsonl}")
    if args.heartbeat is not None:
        print(f"[obs] heartbeat status: {args.heartbeat}")
    if want_profile:
        document = sim.kernel.profile_document()
        if args.profile_out is not None:
            try:
                with open(args.profile_out, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, indent=2)
                    handle.write("\n")
            except OSError as exc:
                print(f"error: cannot write {args.profile_out}: {exc}",
                      file=sys.stderr)
                return 2
            print(f"[obs] profile written to {args.profile_out}")
        if args.profile:
            from repro.obs.report import format_profile

            print(format_profile(document, top=args.profile_top))
    for violation in result.violations:
        print(violation)
    if result.violations and args.resimulate:
        print("--- concrete resimulation of the first violation ---")
        try:
            concrete = sim.resimulate(result.violations[0])
        except ReproError as exc:
            print(f"resimulation failed: {exc}", file=sys.stderr)
            return 3
        print(f"resimulation reproduced {len(concrete.violations)} "
              f"violation(s) at time {concrete.time}")
    if aborted is not None:
        return 4
    if result.interrupted:
        return 130
    return 1 if result.violations else 0


if __name__ == "__main__":
    sys.exit(main())
