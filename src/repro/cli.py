"""``symsim`` — command-line front end for the symbolic simulator.

Examples::

    symsim design.v                      # symbolic simulation to quiescence
    symsim design.v --top tb --until 500
    symsim design.v --random-seed 1      # conventional random simulation
    symsim design.v --accumulation none  # Table-1 style comparisons
    symsim design.v --resimulate         # replay the first violation
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    AccumulationMode, ReproError, SimOptions, SymbolicSimulator,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="symsim",
        description="Symbolic RTL simulation of behavioral Verilog "
                    "(DAC 2001 reproduction)",
    )
    parser.add_argument("source", help="Verilog source file")
    parser.add_argument("--top", default=None,
                        help="top module (default: auto-detect)")
    parser.add_argument("--until", type=int, default=None,
                        help="simulation time bound")
    parser.add_argument("--accumulation",
                        choices=[m.value for m in AccumulationMode],
                        default=AccumulationMode.FULL.value,
                        help="event accumulation level (Table 1 columns)")
    parser.add_argument("--random-seed", type=int, default=None,
                        help="run conventionally with concrete $random values")
    parser.add_argument("--resimulate", action="store_true",
                        help="after a violation, replay its error trace "
                             "concretely")
    parser.add_argument("--continue-on-violation", action="store_true",
                        help="collect all violations instead of stopping "
                             "at the first")
    parser.add_argument("--define", action="append", default=[],
                        metavar="NAME=VALUE", help="preprocessor define")
    parser.add_argument("--stats", action="store_true",
                        help="print event/CPU statistics")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress $display output echo")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    defines = {}
    for item in args.define:
        name, _, value = item.partition("=")
        defines[name] = value
    options = SimOptions(
        accumulation=AccumulationMode(args.accumulation),
        stop_on_violation=not args.continue_on_violation,
        echo_output=not args.quiet,
        concrete_random=args.random_seed,
    )
    try:
        sim = SymbolicSimulator.from_file(args.source, top=args.top,
                                          options=options, defines=defines)
        result = sim.run(until=args.until)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    mode = "random" if args.random_seed is not None else "symbolic"
    print(f"[{mode}] simulation ended at time {result.time} "
          f"({'$finish' if result.finished else 'queue empty/bound'})")
    if args.stats:
        print(f"[stats] {result.stats.summary()}")
        print(f"[stats] cpu={sim.kernel.cpu_seconds:.3f}s "
              f"bdd-nodes={sim.mgr.total_nodes}")
    for violation in result.violations:
        print(violation)
    if result.violations and args.resimulate:
        print("--- concrete resimulation of the first violation ---")
        try:
            concrete = sim.resimulate(result.violations[0])
        except ReproError as exc:
            print(f"resimulation failed: {exc}", file=sys.stderr)
            return 3
        print(f"resimulation reproduced {len(concrete.violations)} "
              f"violation(s) at time {concrete.time}")
    return 1 if result.violations else 0


if __name__ == "__main__":
    sys.exit(main())
