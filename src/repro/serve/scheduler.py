"""The serve scheduler: a multi-tenant queue on the batch worker pool.

This is the controller side of the :mod:`repro.serve` front door.  It
owns one long-lived :class:`~repro.batch.engine._WorkerPool` (the same
process pool ``symsim batch`` drains) and feeds it submissions as they
arrive over HTTP, instead of a fixed manifest:

* **Admission** (:meth:`Scheduler.submit`, called from HTTP handler
  threads): parse the body through :func:`repro.api.parse_run`, clamp
  the request's guard budgets to the tenant's
  :class:`TenantQuota` ceilings, compile the design (once per unique
  design — content-addressed, like the batch catalog), fingerprint the
  request, and either serve it from the result cache, coalesce it onto
  an identical in-flight run, or queue it.
* **Fairness**: one FIFO per tenant, drained round-robin — a tenant
  burst-submitting hundreds of runs delays its own queue, not its
  neighbours'.  Per-tenant ``max_in_flight`` caps pool share;
  ``max_pending`` bounds queue depth (:class:`QuotaExceeded` → HTTP
  429 with ``Retry-After``).
* **Dedup**: the result cache is keyed by the PR 8 *request
  fingerprint* — design content hash + seed + every semantic option
  (:func:`repro.batch.journal.request_fingerprint`), so a resubmission
  differing only in operational knobs (``heartbeat_every``, paths,
  ``compile_tier``) still hits.  Hits are served **byte-identically**:
  the cold run's rendered outcome payload is stored and replayed
  verbatim (the ``cached`` marker lives in the run *status* and the
  ``X-Serve-Cache`` header, never inside the payload).  Only verdict
  statuses (``ok``, ``assert_failed``) are cached — aborts, hangs and
  quarantines may be environmental and always re-execute.
* **Durability**: worker deaths requeue the leased run with the batch
  engine's :class:`~repro.batch.queue.RetryPolicy` backoff until
  ``max_attempts``, then quarantine.  Every submission and terminal
  outcome appends to a ``SERVEJRNL/1`` journal under the out dir.
* **Drain**: :meth:`Scheduler.close` stops admission, cancels queued
  runs (journaled as ``cancelled``), lets in-flight runs finish to
  journaled completion, then shuts the pool down.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import json
import os
import pickle
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api import REQUEST_SCHEMA, parse_run
from repro.batch.engine import RunOutcome, _WorkerPool
from repro.batch.journal import request_fingerprint
from repro.batch.queue import RetryPolicy
from repro.batch.request import RunRequest
from repro.errors import ReproError, RequestError
from repro.guard import ResourceBudgets
from repro.obs import MetricsRegistry
from repro.obs.live import DEFAULT_EVERY, read_status, scan_status
from repro.sim.kernel import SimStatus

#: Journal format tag of ``<out_dir>/serve.jsonl``.
SERVE_JOURNAL_SCHEMA = "SERVEJRNL/1"

#: Statuses whose outcomes enter the result cache.  Verdicts only:
#: an abort/hang/quarantine may be environmental (memory pressure,
#: infrastructure) and must re-execute on resubmission.
CACHEABLE_STATUSES = frozenset({"ok", "assert_failed"})


class QuotaExceeded(ReproError):
    """A tenant's queue is full — HTTP 429 with ``Retry-After``."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServeUnavailable(ReproError):
    """The scheduler is draining/closed — HTTP 503."""


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission limits and guard-budget ceilings."""

    #: Pool slots this tenant may hold simultaneously.
    max_in_flight: int = 2
    #: Non-terminal runs (queued + running) this tenant may have before
    #: submissions are rejected with 429.
    max_pending: int = 16
    #: Ceilings clamped onto every submission's
    #: :class:`~repro.guard.ResourceBudgets` — a tenant may ask for
    #: *less* than its ceiling, never more.  None leaves requests
    #: unclamped.
    budgets: Optional[ResourceBudgets] = None

    def clamp(self, options):
        """Options with budgets folded under this tenant's ceilings.

        Field-wise ``min`` with None-is-unlimited semantics; a request
        without budgets inherits the ceilings outright.  Clamping
        happens *before* fingerprinting, so dedup keys on the budgets
        a run actually executes under.
        """
        if self.budgets is None:
            return options
        requested = options.budgets
        fields = {}
        for name in ("wall_seconds", "max_live_nodes", "max_rss_mb",
                     "max_events"):
            ceiling = getattr(self.budgets, name)
            asked = getattr(requested, name) if requested is not None \
                else None
            if ceiling is None:
                fields[name] = asked
            elif asked is None:
                fields[name] = ceiling
            else:
                fields[name] = min(asked, ceiling)
        asked_conc = requested.max_concretizations \
            if requested is not None else self.budgets.max_concretizations
        fields["max_concretizations"] = min(
            asked_conc, self.budgets.max_concretizations)
        return dataclasses.replace(options,
                                   budgets=ResourceBudgets(**fields))


@dataclass
class ServeConfig:
    """Everything :func:`repro.serve.serve_app` needs to boot."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Worker pool width (same semantics as ``run_batch(workers=...)``).
    workers: int = 1
    #: Artifact root (runs/, status/, serve.jsonl); a temp dir when None.
    out_dir: Optional[str] = None
    #: Heartbeat cadence for per-run status files (None/0 disables).
    heartbeat_every: Optional[int] = DEFAULT_EVERY
    #: Give workers JSONL trace shards (off by default for a service).
    trace: bool = False
    #: Lease retry/quarantine policy (the batch default when None).
    retry: Optional[RetryPolicy] = None
    #: Quota for tenants absent from :attr:`quotas`.
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: Per-tenant quota overrides.
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: Append submissions/outcomes to ``<out_dir>/serve.jsonl``.
    journal: bool = True

    def quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)


@dataclass
class _Run:
    """Controller-side state of one submission."""

    id: str
    tenant: str
    request: RunRequest
    #: Design content hash — keys the worker program catalog.
    design_fp: str
    #: Request fingerprint — keys the result cache / coalescing.
    fingerprint: str
    state: str = "queued"  # queued | running | done | cancelled
    cached: bool = False
    #: Run id this submission coalesced onto (identical in-flight run).
    primary: Optional[str] = None
    attempt: int = 1
    attempts: int = 0
    worker_id: Optional[int] = None
    #: Terminal ``RunOutcome.to_dict()`` payload.
    outcome: Optional[dict] = None
    #: The exact bytes ``GET /v1/runs/<id>/result`` serves — stored
    #: once at completion so cache hits replay them verbatim.
    result_bytes: Optional[bytes] = None
    failure_history: List[dict] = field(default_factory=list)
    submitted_unix: float = field(default_factory=time.time)


class Scheduler:
    """See the module docstring.  Thread-safe; HTTP handler threads
    call :meth:`submit`/:meth:`snapshot`/:meth:`wait_done`, one
    controller thread runs :meth:`_loop`."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.out_dir = self.config.out_dir or tempfile.mkdtemp(
            prefix="repro-serve-")
        os.makedirs(self.out_dir, exist_ok=True)
        self.status_dir = os.path.join(self.out_dir, "status") \
            if self.config.heartbeat_every else None
        self.policy = self.config.retry or RetryPolicy()

        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._runs: Dict[str, _Run] = {}
        self._seq = itertools.count(1)
        #: tenant -> FIFO of queued run ids.
        self._ready: Dict[str, deque] = {}
        #: round-robin pointer over tenant names.
        self._rr = 0
        #: retry backoff heap: (ready_mono, run id).
        self._delayed: List[Tuple[float, str]] = []
        #: worker id -> run id of its leased run.
        self._leases: Dict[int, str] = {}
        #: worker id -> design fingerprints already shipped to it.
        self._shipped: Dict[int, set] = {}
        #: request fingerprint -> cached result payload bytes / outcome.
        self._cache: Dict[str, bytes] = {}
        self._cache_outcome: Dict[str, dict] = {}
        #: request fingerprint -> id of the live primary run.
        self._primary_by_fp: Dict[str, str] = {}
        #: primary run id -> coalesced follower run ids.
        self._followers: Dict[str, List[str]] = {}
        #: design fingerprint -> pickled Program image.
        self._images: Dict[str, bytes] = {}
        #: design_key tuple -> design fingerprint (compile-once cache).
        self._designs: Dict[tuple, str] = {}
        self._compile_lock = threading.Lock()
        self._stopping = False
        self._closed = False

        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_submitted = m.counter(
            "serve.submitted", "accepted submissions", labels=("tenant",))
        self._m_rejected = m.counter(
            "serve.rejected", "rejected submissions",
            labels=("tenant", "reason"))
        self._m_completed = m.counter(
            "serve.completed", "terminal runs by status",
            labels=("status",))
        self._m_cache_hits = m.counter(
            "serve.cache.hits", "submissions served from the result cache")
        self._m_cache_misses = m.counter(
            "serve.cache.misses", "submissions that executed cold")
        self._m_cache_coalesced = m.counter(
            "serve.cache.coalesced",
            "submissions coalesced onto an identical in-flight run")
        self._m_retries = m.counter(
            "serve.retries", "re-dispatched attempts after failures")
        self._m_quarantined = m.counter(
            "serve.quarantined", "runs quarantined after max_attempts")
        self._m_cancelled = m.counter(
            "serve.cancelled", "queued runs cancelled by shutdown")
        self._m_queued = m.gauge("serve.queued", "runs waiting for a slot")
        self._m_in_flight = m.gauge("serve.in_flight", "runs on workers")

        self._journal = None
        if self.config.journal:
            self._journal_path = os.path.join(self.out_dir, "serve.jsonl")
            self._journal = open(self._journal_path, "a", encoding="utf-8")
            self._append_journal({"kind": "header",
                                  "schema": SERVE_JOURNAL_SCHEMA,
                                  "workers": self.config.workers})
        else:
            self._journal_path = None

        self._pool = _WorkerPool(
            self.config.workers,
            ({}, self.out_dir, self.config.trace,
             self.config.heartbeat_every or None))
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-scheduler", daemon=True)

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "Scheduler":
        self._pool.spawn(self.config.workers)
        for worker in self._pool.workers:
            self._shipped[worker.id] = set()
        self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop admission, drain (or abandon) in-flight runs, shut the
        pool down, close the journal.  Idempotent."""
        with self._cv:
            if self._closed:
                return
            self._stopping = True
            # queued runs (and followers of queued primaries) cancel now
            for run in self._runs.values():
                if run.state == "queued":
                    self._cancel_locked(run)
            self._ready.clear()
            self._delayed.clear()
            if not drain:
                for run in self._runs.values():
                    if run.state == "running":
                        self._cancel_locked(run)
                self._leases.clear()
            self._refresh_gauges()
            self._cv.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout=60)
        self._pool.shutdown()
        with self._cv:
            self._closed = True
            if self._journal is not None:
                self._append_journal({"kind": "close"})
                self._journal.close()
                self._journal = None
            self._cv.notify_all()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- admission (HTTP handler threads) ------------------------------

    def submit(self, spec: dict) -> dict:
        """Admit one ``repro.serve.request/1`` submission.

        Returns the run's status snapshot.  Raises
        :class:`~repro.errors.RequestError` (bad request, 400),
        :class:`QuotaExceeded` (429) or :class:`ServeUnavailable`
        (503); design compile errors surface as their usual
        :class:`~repro.errors.ReproError` subtypes (also 400 at the
        HTTP layer — the design is part of the request).
        """
        if not isinstance(spec, dict):
            raise RequestError("request body must be a JSON object")
        schema = spec.get("schema")
        if schema is not None and schema != REQUEST_SCHEMA:
            raise RequestError(
                f"unsupported schema {schema!r} "
                f"(this server speaks {REQUEST_SCHEMA})")
        tenant = spec.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise RequestError("\"tenant\" must be a non-empty string")
        quota = self.config.quota(tenant)

        rid = f"r{next(self._seq):06d}"
        request = parse_run(spec, base_dir=None, name=rid)
        request = dataclasses.replace(
            request, options=quota.clamp(request.options))
        # The submitting thread compiles (and pays for) its own design;
        # a bad design is a 400, never a poisoned pool.
        design_fp, image = self._compile(request)
        fingerprint = request_fingerprint(request, design_fp)

        with self._cv:
            if self._stopping:
                raise ServeUnavailable("server is draining; not "
                                       "accepting submissions")
            pending = sum(1 for run in self._runs.values()
                          if run.tenant == tenant
                          and run.state in ("queued", "running"))
            if pending >= quota.max_pending:
                self._m_rejected.labels(tenant=tenant, reason="quota").inc()
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {pending} pending runs "
                    f"(max_pending={quota.max_pending})",
                    retry_after=max(1.0, pending * 0.5))
            run = _Run(id=rid, tenant=tenant, request=request,
                       design_fp=design_fp, fingerprint=fingerprint)
            self._runs[rid] = run
            self._m_submitted.labels(tenant=tenant).inc()

            cached = self._cache.get(fingerprint)
            if cached is not None:
                run.state = "done"
                run.cached = True
                run.result_bytes = cached
                run.outcome = self._cache_outcome[fingerprint]
                self._m_cache_hits.inc()
                self._m_completed.labels(
                    status=run.outcome["status"]).inc()
                self._append_journal({"kind": "cached", "id": rid,
                                      "tenant": tenant,
                                      "fingerprint": fingerprint})
                self._cv.notify_all()
            elif fingerprint in self._primary_by_fp:
                primary = self._primary_by_fp[fingerprint]
                run.primary = primary
                self._followers.setdefault(primary, []).append(rid)
                self._m_cache_coalesced.inc()
                self._append_journal({"kind": "submitted", "id": rid,
                                      "tenant": tenant,
                                      "fingerprint": fingerprint,
                                      "coalesced_with": primary})
            else:
                self._m_cache_misses.inc()
                self._images[design_fp] = image
                self._primary_by_fp[fingerprint] = rid
                self._ready.setdefault(tenant, deque()).append(rid)
                self._append_journal({"kind": "submitted", "id": rid,
                                      "tenant": tenant,
                                      "fingerprint": fingerprint})
            self._refresh_gauges()
            return self._snapshot_locked(run)

    def _compile(self, request: RunRequest) -> Tuple[str, bytes]:
        """Compile-once design cache (content-addressed like the batch
        catalog; see ``_compile_catalog`` for why the key is the full
        design key, not the structural fingerprint)."""
        import hashlib

        from repro.compile import compile_design
        from repro.frontend import elaborate, parse_source

        key = request.design_key()
        with self._compile_lock:
            design_fp = self._designs.get(key)
            if design_fp is not None:
                return design_fp, self._images[design_fp]
            source, top, defines = key
            design_fp = hashlib.sha256(
                repr((source, top, defines)).encode("utf-8")).hexdigest()
            modules = parse_source(source, defines=dict(defines) or None)
            program = compile_design(elaborate(modules, top=top))
            image = pickle.dumps(program)
            self._designs[key] = design_fp
            self._images[design_fp] = image
            return design_fp, image

    # -- inspection (HTTP handler threads) ------------------------------

    def snapshot(self, rid: str) -> Optional[dict]:
        """The run's status document, or None for an unknown id."""
        with self._lock:
            run = self._runs.get(rid)
            if run is None:
                return None
            return self._snapshot_locked(run)

    def _snapshot_locked(self, run: _Run) -> dict:
        doc = {
            "id": run.id,
            "tenant": run.tenant,
            "state": run.state,
            "cached": run.cached,
            "fingerprint": run.fingerprint,
            "attempts": run.attempts or run.attempt - 1,
        }
        if run.primary is not None:
            doc["primary"] = run.primary
        if run.outcome is not None:
            doc["status"] = run.outcome["status"]
            doc["ok"] = run.outcome["ok"]
            doc["quarantined"] = run.outcome["quarantined"]
        if self.status_dir is not None:
            # followers never execute — their heartbeat is the primary's
            beat_id = run.primary or run.id
            record = read_status(
                os.path.join(self.status_dir, f"{beat_id}.json"))
            if record is not None:
                doc["heartbeat"] = record
        return doc

    def result_bytes(self, rid: str) -> Optional[Tuple[str, bytes, bool]]:
        """``(state, payload, cached)`` for a run; payload is None
        unless done.  None for an unknown id."""
        with self._lock:
            run = self._runs.get(rid)
            if run is None:
                return None
            return run.state, run.result_bytes, run.cached

    def wait_done(self, rid: str, timeout: float) -> bool:
        """Block until the run leaves the queue/pool (or timeout)."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while True:
                run = self._runs.get(rid)
                if run is None or run.state in ("done", "cancelled"):
                    return run is not None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(remaining)

    def status_records(self) -> List[dict]:
        if self.status_dir is None:
            return []
        return scan_status([self.status_dir])

    def counters(self) -> Dict[str, float]:
        """Point-in-time scheduler counters (tests, /healthz detail)."""
        with self._lock:
            states: Dict[str, int] = {}
            for run in self._runs.values():
                states[run.state] = states.get(run.state, 0) + 1
            return {
                "runs": len(self._runs),
                "cache_entries": len(self._cache),
                **{f"state_{state}": count
                   for state, count in sorted(states.items())},
            }

    # -- the controller loop -------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cv:
                self._promote_delayed()
                self._dispatch_locked()
                if self._stopping and not self._leases:
                    break
            for worker in self._pool.wait(0.1):
                self._reap_result(worker)
            self._reap_dead()

    def _promote_delayed(self) -> None:
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, rid = heapq.heappop(self._delayed)
            run = self._runs[rid]
            if run.state == "queued":
                self._ready.setdefault(run.tenant, deque()).append(rid)

    def _tenant_in_flight(self, tenant: str) -> int:
        return sum(1 for rid in self._leases.values()
                   if self._runs[rid].tenant == tenant)

    def _next_ready_locked(self) -> Optional[_Run]:
        """Round-robin over tenants: the next dispatchable run."""
        tenants = sorted(name for name, queue in self._ready.items()
                         if queue)
        if not tenants:
            return None
        for offset in range(len(tenants)):
            tenant = tenants[(self._rr + offset) % len(tenants)]
            if self._tenant_in_flight(tenant) >= \
                    self.config.quota(tenant).max_in_flight:
                continue
            self._rr = (self._rr + offset + 1) % len(tenants)
            rid = self._ready[tenant].popleft()
            return self._runs[rid]
        return None

    def _dispatch_locked(self) -> None:
        if self._stopping:
            return
        for worker in self._pool.idle():
            run = self._next_ready_locked()
            if run is None:
                break
            shipped = self._shipped.setdefault(worker.id, set())
            image = None if run.design_fp in shipped \
                else self._images[run.design_fp]
            try:
                worker.task_send.send(
                    (run.request, run.design_fp, run.attempt, image))
            except (BrokenPipeError, OSError):
                # worker died between polls; requeue unblamed — the
                # death itself is reaped below
                self._ready.setdefault(run.tenant, deque()) \
                    .appendleft(run.id)
                continue
            shipped.add(run.design_fp)
            worker.lease = run.id  # reuse the slot's lease field as a tag
            self._leases[worker.id] = run.id
            run.state = "running"
            run.worker_id = worker.id
            if run.attempt > 1:
                self._m_retries.inc()
            self._refresh_gauges()

    def _reap_result(self, worker) -> None:
        try:
            raw = worker.result_recv.recv()
        except (EOFError, OSError):
            return  # died after readiness; reaped as a dead worker
        with self._cv:
            rid = self._leases.pop(worker.id, None)
            worker.lease = None
            if rid is None:
                return
            run = self._runs[rid]
            outcome = RunOutcome(
                name=raw["name"],
                status=SimStatus(raw["status"]),
                result=raw["result"],
                error=raw["error"],
                wall_seconds=raw["wall_seconds"],
                worker_pid=raw["worker_pid"],
                vcd_path=raw["vcd_path"],
                attempts=run.attempt,
                failure_history=list(run.failure_history),
                resumed_from_checkpoint=raw.get(
                    "resumed_from_checkpoint", False),
            )
            if outcome.status.value in self.policy.retry_statuses:
                self._fail_locked(run, "status",
                                  raw["error"] or outcome.status.value,
                                  raw["worker_pid"])
            else:
                self._finalize_locked(run, outcome)
            self._refresh_gauges()
            self._cv.notify_all()

    def _reap_dead(self) -> None:
        for worker in self._pool.dead():
            with self._cv:
                rid = self._leases.pop(worker.id, None)
                worker.lease = None
                self._shipped.pop(worker.id, None)
                if rid is not None:
                    run = self._runs[rid]
                    exitcode = worker.process.exitcode
                    self._fail_locked(
                        run, "worker-lost",
                        f"worker lost: pid {worker.process.pid} died "
                        f"(exit {exitcode}) holding attempt {run.attempt}",
                        worker.process.pid)
                    self._refresh_gauges()
                    self._cv.notify_all()
            self._pool.reap(worker)
        with self._lock:
            want = 0 if self._stopping else self.config.workers
        if len(self._pool.workers) < want:
            self._pool.spawn(want - len(self._pool.workers))
            for worker in self._pool.workers:
                self._shipped.setdefault(worker.id, set())

    def _fail_locked(self, run: _Run, kind: str, error: str,
                     worker_pid: Optional[int]) -> None:
        run.failure_history.append({
            "attempt": run.attempt, "kind": kind, "error": error,
            "worker_pid": worker_pid,
        })
        self._append_journal({"kind": "attempt", "id": run.id,
                              "attempt": run.attempt,
                              "failure_kind": kind, "error": error})
        if run.attempt >= self.policy.max_attempts:
            outcome = RunOutcome(
                name=run.id, status=SimStatus.ABORTED,
                error=(f"quarantined after {run.attempt} attempt(s): "
                       f"{error}"),
                worker_pid=worker_pid, attempts=run.attempt,
                quarantined=True,
                failure_history=list(run.failure_history))
            self._m_quarantined.inc()
            self._finalize_locked(run, outcome)
            return
        run.attempt += 1
        run.state = "queued"
        run.worker_id = None
        delay = self.policy.backoff_delay(run.id, run.attempt)
        if delay > 0:
            heapq.heappush(self._delayed,
                           (time.monotonic() + delay, run.id))
        else:
            self._ready.setdefault(run.tenant, deque()).append(run.id)

    def _finalize_locked(self, run: _Run, outcome: RunOutcome) -> None:
        run.state = "done"
        run.attempts = outcome.attempts
        run.outcome = outcome.to_dict()
        run.result_bytes = json.dumps(
            run.outcome, sort_keys=True).encode("utf-8")
        self._m_completed.labels(status=run.outcome["status"]).inc()
        self._append_journal({"kind": "terminal", "id": run.id,
                              "tenant": run.tenant,
                              "fingerprint": run.fingerprint,
                              "outcome": run.outcome})
        if (outcome.status.value in CACHEABLE_STATUSES
                and not outcome.quarantined):
            self._cache[run.fingerprint] = run.result_bytes
            self._cache_outcome[run.fingerprint] = run.outcome
        # identical submissions that arrived while this ran resolve now,
        # byte-identically, without ever touching a worker
        for fid in self._followers.pop(run.id, []):
            follower = self._runs[fid]
            if follower.state == "cancelled":
                continue
            follower.state = "done"
            follower.cached = True
            follower.attempts = 0
            follower.outcome = run.outcome
            follower.result_bytes = run.result_bytes
            self._m_completed.labels(status=run.outcome["status"]).inc()
            self._append_journal({"kind": "terminal", "id": fid,
                                  "tenant": follower.tenant,
                                  "fingerprint": follower.fingerprint,
                                  "cached_from": run.id})
        self._primary_by_fp.pop(run.fingerprint, None)

    def _cancel_locked(self, run: _Run) -> None:
        run.state = "cancelled"
        self._m_cancelled.inc()
        self._append_journal({"kind": "cancelled", "id": run.id,
                              "tenant": run.tenant})
        if self._primary_by_fp.get(run.fingerprint) == run.id:
            del self._primary_by_fp[run.fingerprint]
        for fid in self._followers.pop(run.id, []):
            follower = self._runs[fid]
            if follower.state == "queued":
                self._cancel_locked(follower)

    def _refresh_gauges(self) -> None:
        queued = running = 0
        for run in self._runs.values():
            if run.state == "queued":
                queued += 1
            elif run.state == "running":
                running += 1
        self._m_queued.set(queued)
        self._m_in_flight.set(running)

    def _append_journal(self, record: dict) -> None:
        if self._journal is None:
            return
        record = dict(record)
        record.setdefault("unix", round(time.time(), 3))
        self._journal.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n")
        self._journal.flush()
