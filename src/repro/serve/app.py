"""The HTTP front door — ``repro.serve``'s endpoint layer.

:class:`ServeApp` binds a :class:`~repro.serve.scheduler.Scheduler` to
the package's shared :class:`~repro.obs.serve.HttpEndpoint` harness
(the same threaded-``http.server`` base behind ``symsim
serve-metrics``, so ``/healthz`` and ``/status`` have exactly one
implementation).  Routes:

* ``POST /v1/runs`` — submit one ``repro.serve.request/1`` body;
  202 + run id (or 200 with ``cached: true`` for a result-cache hit),
  400 for malformed requests (single-line error), 429 +
  ``Retry-After`` past the tenant quota, 503 while draining.
* ``GET /v1/runs/<id>`` — status document (state, cached flag, live
  heartbeat, outcome summary).
* ``GET /v1/runs/<id>/result`` — the full ``RunOutcome.to_dict()``
  payload, byte-identical across cache hits (``X-Serve-Cache:
  hit|miss``); 202 while pending (``?wait=S`` long-polls).
* ``GET /v1/runs/<id>/trace`` — the run's violations with their
  concrete error traces; 202 while pending, 404 unknown.
* ``GET /metrics`` — OpenMetrics: the scheduler's ``serve.*``
  families + per-run ``symsim.run.*`` from the status directory.
* ``GET /status`` / ``GET /healthz`` — the shared handlers.

Errors map one exception to one status code: ``RequestError`` and the
compile-time ``ReproError`` family → 400, :class:`QuotaExceeded` →
429, :class:`ServeUnavailable` → 503 — always a single-line JSON
``{"error": ...}`` body.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Optional

from repro.errors import ReproError, RequestError
from repro.obs.serve import (
    HttpEndpoint, JSON_CONTENT_TYPE, OPENMETRICS_CONTENT_TYPE, Response,
    build_scrape_source,
)
from repro.serve.scheduler import (
    QuotaExceeded, Scheduler, ServeConfig, ServeUnavailable,
)

#: Longest ``?wait=`` long-poll a single request may hold (seconds).
MAX_WAIT_SECONDS = 30.0

_RUN_PATH = re.compile(r"^/v1/runs/([A-Za-z0-9_.-]+)(/result|/trace)?$")


class ServeApp(HttpEndpoint):
    """The simulation-as-a-service HTTP server.  Context-managed:
    ``close()`` drains in-flight runs to journaled completion."""

    thread_name = "repro-serve-http"

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        super().__init__(self.config.host, self.config.port)
        self.scheduler = Scheduler(self.config)
        status_paths = [self.scheduler.status_dir] \
            if self.scheduler.status_dir else []
        self._scrape = build_scrape_source(
            status_paths=status_paths, registry=self.scheduler.metrics)

    @property
    def out_dir(self) -> str:
        return self.scheduler.out_dir

    def start(self) -> "ServeApp":
        self.scheduler.start()
        super().start()
        return self

    def serve_forever(self) -> None:
        self.scheduler.start()
        super().serve_forever()

    def close(self, drain: bool = True) -> None:
        super().close()  # stop accepting connections first
        self.scheduler.close(drain=drain)

    def __enter__(self) -> "ServeApp":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing -------------------------------------------------------

    def handle(self, method: str, path: str, query: Dict[str, str],
               body: Optional[bytes]) -> Response:
        if method == "POST" and path == "/v1/runs":
            return self._submit(body)
        match = _RUN_PATH.match(path)
        if match and method == "GET":
            rid, sub = match.group(1), match.group(2)
            if sub is None:
                return self._run_status(rid)
            self._maybe_wait(rid, query)
            if sub == "/result":
                return self._run_result(rid)
            return self._run_trace(rid)
        if method == "GET" and path == "/metrics":
            payload = self._scrape().encode("utf-8")
            return 200, OPENMETRICS_CONTENT_TYPE, payload, {}
        return super().handle(method, path, query, body)

    def status_records(self):
        return self.scheduler.status_records()

    # -- route handlers ------------------------------------------------

    def _submit(self, body: Optional[bytes]) -> Response:
        try:
            try:
                spec = json.loads((body or b"").decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise RequestError(
                    f"request body is not valid JSON: {exc}") from exc
            doc = self.scheduler.submit(spec)
        except QuotaExceeded as exc:
            return self.json_response(
                429, {"error": str(exc)},
                {"Retry-After": str(int(exc.retry_after + 0.5))})
        except ServeUnavailable as exc:
            return self.json_response(503, {"error": str(exc)})
        except ReproError as exc:
            # RequestError and any compile-time error: the request —
            # including the design it carries — is malformed
            return self.json_response(400, {"error": _one_line(exc)})
        code = 200 if doc["state"] == "done" else 202
        headers = {"Location": f"/v1/runs/{doc['id']}"}
        return self.json_response(code, doc, headers)

    def _run_status(self, rid: str) -> Response:
        doc = self.scheduler.snapshot(rid)
        if doc is None:
            return self.json_response(404, {"error": f"no run {rid!r}"})
        return self.json_response(200, doc)

    def _maybe_wait(self, rid: str, query: Dict[str, str]) -> None:
        wait = query.get("wait")
        if wait is None:
            return
        try:
            seconds = min(max(float(wait), 0.0), MAX_WAIT_SECONDS)
        except ValueError:
            return
        self.scheduler.wait_done(rid, seconds)

    def _run_result(self, rid: str) -> Response:
        found = self.scheduler.result_bytes(rid)
        if found is None:
            return self.json_response(404, {"error": f"no run {rid!r}"})
        state, payload, cached = found
        if state == "cancelled":
            return self.json_response(
                409, {"error": f"run {rid!r} was cancelled", "id": rid,
                      "state": state})
        if payload is None:
            return self.json_response(202, {"id": rid, "state": state})
        # cache hits replay the cold run's payload verbatim — the
        # cached marker travels in this header and the status document,
        # never inside the payload, to keep it byte-identical
        return (200, JSON_CONTENT_TYPE, payload,
                {"X-Serve-Cache": "hit" if cached else "miss"})

    def _run_trace(self, rid: str) -> Response:
        found = self.scheduler.result_bytes(rid)
        if found is None:
            return self.json_response(404, {"error": f"no run {rid!r}"})
        state, payload, cached = found
        if payload is None:
            return self.json_response(
                202 if state != "cancelled" else 409,
                {"id": rid, "state": state})
        outcome = json.loads(payload.decode("utf-8"))
        result = outcome.get("result") or {}
        return self.json_response(
            200,
            {"id": rid, "status": outcome["status"],
             "violations": result.get("violations", [])},
            {"X-Serve-Cache": "hit" if cached else "miss"})


def _one_line(exc: Exception) -> str:
    return " ".join(str(exc).split())


def serve_app(config: Optional[ServeConfig] = None, **overrides) -> ServeApp:
    """Build (but do not start) the front door.

    ``overrides`` are :class:`~repro.serve.scheduler.ServeConfig`
    fields applied over ``config`` (or over a default config)::

        with repro.serve.serve_app(workers=4, port=8080) as app:
            app.start()          # background thread; or serve_forever()
            ...
    """
    import dataclasses

    base = config or ServeConfig()
    if overrides:
        base = dataclasses.replace(base, **overrides)
    return ServeApp(base)
