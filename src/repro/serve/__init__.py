"""``repro.serve`` — simulation-as-a-service front door.

An HTTP+JSON service (stdlib only) that turns the library + batch
engine into the roadmap's "millions of users" system: submissions in
the :data:`repro.api.REQUEST_SCHEMA` shape flow through a multi-tenant
queue — per-tenant guard-budget ceilings and quotas
(:class:`TenantQuota`), FIFO-with-fairness scheduling, content-
addressed result-cache dedup — onto the same controller-owned worker
pool ``symsim batch`` uses.  See docs/SERVE.md for endpoints, the
request schema, the tenancy model and dedup semantics.

Quick start::

    from repro.serve import ServeConfig, serve_app

    with serve_app(ServeConfig(workers=4)) as app:
        app.start()
        # POST http://{app.host}:{app.port}/v1/runs
"""

from repro.serve.app import MAX_WAIT_SECONDS, ServeApp, serve_app
from repro.serve.scheduler import (
    CACHEABLE_STATUSES, QuotaExceeded, Scheduler, SERVE_JOURNAL_SCHEMA,
    ServeConfig, ServeUnavailable, TenantQuota,
)

__all__ = [
    "ServeApp", "ServeConfig", "TenantQuota", "Scheduler", "serve_app",
    "QuotaExceeded", "ServeUnavailable",
    "SERVE_JOURNAL_SCHEMA", "CACHEABLE_STATUSES", "MAX_WAIT_SECONDS",
]
