"""Versioned checkpoint/resume for the symbolic kernel.

A checkpoint is a single file with three sections::

    REPROCKPT 1\n                 magic + format version
    {...header JSON...}\n          one line, utf-8
    <payload>                      pickle of pure-builtin data

The header carries the format version, a structural fingerprint of the
compiled design, the byte length and SHA-256 of the payload, and the
*semantic* simulation options (accumulation mode, priority discipline,
...) that must match on resume.  The payload is written by
:func:`save_checkpoint` from builtins only — ints, strings, lists,
dicts, tuples — so loading uses a restricted unpickler that refuses any
object construction outright; a tampered payload cannot execute code.

What round-trips (proven bit-identical by the crash-recovery tests):

* the BDD arena verbatim — node arrays, variable names/order, the
  guard's concretized-variable set and the GC/sift trigger state.
  Node ids in the rest of the payload are only meaningful against this
  arena image, which is why the arrays are serialized raw rather than
  compacted;
* the scheduler queue, in exact pop order, with non-blocking updates
  serialized through their :class:`~repro.compile.instructions.NbaUpdate`
  ``spec`` (closures are rebuilt on load);
* the value store, net driver sets, event/level waiters (rebuilt from
  the ``WaitEvent``/``WaitCond`` instruction preceding their resume
  label), armed assertions and the active ``$monitor`` (resolved
  through the program's compile-time site registries), the ``$random``
  invocation log, recorded violations, ``$display`` output, statistics
  and the concrete-random RNG state;
* an open VCD stream: the byte offset is saved and the file is
  truncated back to it on resume, so the waveform continues seamlessly.

Closures never enter the file: everything callable is re-derived from
the compiled :class:`~repro.compile.compiler.Program`, which is why
resuming requires recompiling the same source (checked by fingerprint).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from typing import Any, Dict, List, Optional

from repro.compile.compiler import Program
from repro.compile.instructions import (
    AccumulationMode, NbaUpdate, WaitCond, WaitEvent,
)
from repro.errors import CheckpointError
from repro.fourval import FourVec

MAGIC = b"REPROCKPT 1\n"
FORMAT_VERSION = 1

_SEMANTIC_OPTIONS = (
    "accumulation", "depth_first_priorities", "check_unknown_assert",
    "concrete_random",
)


def design_fingerprint(program: Program) -> str:
    """Structural hash of a compiled design.

    Covers the top module, every net (name/width/kind), the process
    table and instruction counts, continuous assigns and ``$random``
    call sites — enough to reject resuming against a different design
    or a differently-compiled one, without hashing source text.
    """
    digest = hashlib.sha256()
    design = program.design
    digest.update(design.top.encode())
    for name in sorted(design.nets):
        info = design.nets[name]
        digest.update(f"|{name}:{info.width}:{info.kind}".encode())
    for proc in program.processes:
        digest.update(
            f"|{proc.name}:{proc.kind}:{len(proc.instructions)}".encode()
        )
    digest.update(f"|assigns:{len(program.assigns)}".encode())
    digest.update(f"|callsites:{len(program.callsites)}".encode())
    return digest.hexdigest()


class _BuiltinsOnlyUnpickler(pickle.Unpickler):
    """Refuses to construct any class: payloads are builtins only."""

    def find_class(self, module, name):  # noqa: D102
        raise CheckpointError(
            f"checkpoint payload references {module}.{name}; "
            "payloads must contain only builtin types"
        )


def _vec_image(vec: FourVec):
    return (list(vec.bits), vec.signed)


def _vec_from(mgr, image) -> FourVec:
    bits, signed = image
    return FourVec(mgr, [tuple(bit) for bit in bits], signed)


def _nba_image(update: NbaUpdate) -> Dict[str, Any]:
    if update.fn is not None and update.spec is None:
        raise CheckpointError(
            "queued non-blocking update has no serializable spec; "
            "cannot checkpoint"
        )
    return {
        "spec": update.spec,
        "vecs": [_vec_image(vec) for vec in update.vecs],
        "controls": list(update.controls),
        "subs": [_nba_image(sub) for sub in update.subs],
    }


def _nba_from(kern, image) -> NbaUpdate:
    spec = image["spec"]
    return NbaUpdate(
        _nba_fn(kern, spec),
        vecs=[_vec_from(kern.mgr, vec) for vec in image["vecs"]],
        controls=list(image["controls"]),
        subs=[_nba_from(kern, sub) for sub in image["subs"]],
        spec=spec,
    )


def _nba_fn(kern, spec):
    """Rebuild an NBA commit closure from its pure-data spec."""
    if spec is None:
        return None
    spec = tuple(spec)
    kind = spec[0]
    if kind == "net":
        full = spec[1]

        def commit(kern2, vecs, controls):
            kern2.write_net(full, vecs[0], controls[0])

        return commit
    if kind == "word":
        _, full, low, high = spec

        def commit_word(kern2, vecs, controls):
            kern2.write_array(full, vecs[0], vecs[1], controls[0], low, high)

        return commit_word
    if kind == "bit":
        from repro.compile.expr import _write_selected_bit

        full = spec[1]
        info = kern.design.net(full)

        def commit_bit(kern2, vecs, controls):
            _write_selected_bit(kern2, full, info, vecs[0], vecs[1],
                                controls[0])

        return commit_bit
    if kind == "part":
        from repro.compile.expr import _write_part

        _, full, offset, width = spec

        def commit_part(kern2, vecs, controls):
            _write_part(kern2, full, offset, width, vecs[0], controls[0])

        return commit_part
    raise CheckpointError(f"unknown NBA spec {spec!r}")


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------


def _collect_payload(kern) -> Dict[str, Any]:
    if kern._busy and kern._strobes:
        raise CheckpointError(
            "cannot checkpoint mid-step state (pending $strobe events)"
        )
    mgr = kern.mgr
    sched = kern.sched
    events: List[Dict[str, Any]] = []
    for event in sched.snapshot_events():
        image: Dict[str, Any] = {
            "time": event.time, "region": event.region, "prio": event.prio,
            "kind": event.kind, "pc": event.pc, "control": event.control,
            "index": event.index,
        }
        if event.kind == "proc":
            image["process"] = event.process.index
        elif event.kind == "nba":
            image["nba"] = _nba_image(event.apply)
        elif event.kind == "drive":
            image["payload"] = _vec_image(event.payload)
        elif event.kind != "assign":
            raise CheckpointError(f"unknown event kind {event.kind!r}")
        events.append(image)
    waiter_list = []
    waiter_index: Dict[int, int] = {}
    for waiter in kern._iter_waiters():
        if waiter.dead:
            continue
        waiter_index[id(waiter)] = len(waiter_list)
        waiter_list.append({
            "kind": waiter.kind,
            "process": waiter.process.index,
            "pc": waiter.pc,
            "control": waiter.control,
            "prio": waiter.prio,
            "lasts": [_vec_image(ts.last) for ts in waiter.triggers],
        })
    waiters_by_net = {
        net: [waiter_index[id(w)] for w in waiters if not w.dead]
        for net, waiters in kern._waiters.items()
    }
    stats = kern.stats
    payload: Dict[str, Any] = {
        "mgr": {
            "level": list(mgr._level),
            "low": list(mgr._low),
            "high": list(mgr._high),
            "var_names": list(mgr._var_names),
            "var_bdds": list(mgr._var_bdds),
            "concretized": dict(mgr._concretized),
            "last_gc_size": mgr._last_gc_size,
            "next_sift_at": mgr._next_sift_at,
            "peak": mgr._peak,
        },
        "now": kern.now,
        "finished": kern.finished,
        "stopped": kern.stopped,
        "interrupted": kern._interrupted,
        "finish_control": kern._finish_control,
        "output": list(kern.output),
        "line_open": kern._line_open,
        "cpu_accum": kern._cpu_accum,
        "state": kern.state.snapshot(),
        "drivers": {
            net: {key: _vec_image(vec) for key, vec in drivers.items()}
            for net, drivers in kern._drivers.items()
        },
        "events": events,
        "sched_scheduled": sched.scheduled,
        "sched_merged": sched.merged,
        "waiters": waiter_list,
        "waiters_by_net": waiters_by_net,
        "assertions": {
            aid: a.armed for aid, a in kern._assertions.items()
        },
        "monitor": (
            None if kern._monitor is None
            else {"key": kern._monitor_key, "control": kern._monitor[1]}
        ),
        "monitor_last": kern._monitor_last,
        "callsite_seq": dict(kern._callsite_seq),
        "random_log": [
            {
                "callsite_index": inv.callsite_index, "seq": inv.seq,
                "time": inv.time, "vector": _vec_image(inv.vector),
                "control": inv.control, "levels": list(inv.levels),
            }
            for inv in kern.random_log
        ],
        "violations": [
            {
                "kind": v.kind, "where": v.where, "message": v.message,
                "time": v.time, "condition": v.condition,
                "witness": dict(v.trace.witness),
                "entries": [
                    (e.callsite_index, e.where, e.seq, e.time, e.executed,
                     e.value)
                    for e in v.trace.entries
                ],
            }
            for v in kern.violations
        ],
        "stats": {
            "events_processed": stats.events_processed,
            "events_scheduled": stats.events_scheduled,
            "events_merged": stats.events_merged,
            "process_events": stats.process_events,
            "nba_events": stats.nba_events,
            "assign_events": stats.assign_events,
            "instructions": stats.instructions,
            "symbols_injected": stats.symbols_injected,
            "timeline": [
                (p.sim_time, p.events, p.cpu_seconds) for p in stats.timeline
            ],
            "bdd": dict(stats.bdd),
        },
        "rng": kern._rng.getstate() if kern._rng is not None else None,
        "concrete": (
            None if kern._concrete is None
            else {index: list(values)
                  for index, values in kern._concrete.items()}
        ),
    }
    if kern._monitor is not None and kern._monitor_key is None:
        raise CheckpointError(
            "active $monitor has no compile-time key; cannot checkpoint"
        )
    if kern._vcd is not None and kern._vcd_stream is not None:
        kern._vcd_stream.flush()
        vcd = kern._vcd
        payload["vcd"] = {
            "path": kern._vcd_path or "dump.vcd",
            "offset": kern._vcd_stream.tell(),
            "ids": dict(vcd._ids),
            "widths": dict(vcd._widths),
            "last": dict(vcd._last),
            "current_time": vcd._current_time,
        }
    else:
        payload["vcd"] = None
    return payload


def save_checkpoint(kern, path: str) -> str:
    """Write a checkpoint of ``kern`` to ``path`` atomically.

    Only legal at a safe point (between time steps or ``run()``
    calls).  The file appears under its final name only once fully
    written (write-to-temp + rename), so a crash mid-save leaves any
    previous checkpoint intact.  Returns ``path``.
    """
    options = kern.options
    header = {
        "version": FORMAT_VERSION,
        "design": design_fingerprint(kern.program),
        "top": kern.design.top,
        "sim_time": kern.now,
        "options": {
            "accumulation": options.accumulation.value,
            "depth_first_priorities": options.depth_first_priorities,
            "check_unknown_assert": options.check_unknown_assert,
            "concrete_random": options.concrete_random,
        },
    }
    payload = pickle.dumps(_collect_payload(kern), protocol=4)
    header["payload_bytes"] = len(payload)
    header["payload_sha256"] = hashlib.sha256(payload).hexdigest()
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(json.dumps(header).encode("utf-8"))
            handle.write(b"\n")
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}")
    return path


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------


def read_header(path: str) -> Dict[str, Any]:
    """Parse and validate a checkpoint's header (cheap; no payload)."""
    header, _ = _read_file(path, want_payload=False)
    return header


def _read_file(path: str, want_payload: bool = True):
    try:
        with open(path, "rb") as handle:
            magic = handle.readline()
            if magic != MAGIC:
                raise CheckpointError(
                    f"{path}: not a repro checkpoint (bad magic)"
                )
            header_line = handle.readline()
            try:
                header = json.loads(header_line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointError(f"{path}: corrupt header: {exc}")
            if not isinstance(header, dict) or "version" not in header:
                raise CheckpointError(f"{path}: corrupt header")
            if header["version"] != FORMAT_VERSION:
                raise CheckpointError(
                    f"{path}: checkpoint format v{header['version']} "
                    f"not supported (this build reads v{FORMAT_VERSION})"
                )
            if not want_payload:
                return header, None
            expected = header.get("payload_bytes")
            payload = handle.read()
            if expected is None or len(payload) != expected:
                raise CheckpointError(
                    f"{path}: truncated checkpoint "
                    f"({len(payload)} of {expected} payload bytes)"
                )
            digest = hashlib.sha256(payload).hexdigest()
            if digest != header.get("payload_sha256"):
                raise CheckpointError(
                    f"{path}: payload checksum mismatch — corrupt checkpoint"
                )
            return header, payload
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")


def load_checkpoint(program: Program, path: str, options=None):
    """Rebuild a :class:`~repro.sim.kernel.Kernel` from a checkpoint.

    ``program`` must be the same design, recompiled from the same
    source (verified by structural fingerprint).  ``options`` defaults
    to the checkpoint's semantic options; when given, its semantic
    fields (accumulation, priority discipline, unknown-assert policy,
    concrete seed) must match the checkpointed run, while operational
    knobs (GC thresholds, observability, budgets...) are free to
    differ.  The resumed kernel continues exactly where the original
    would have: same event order, same symbolic state, same output.
    """
    from repro.sim.kernel import Kernel, SimOptions, _Assertion, _TriggerState, _Waiter
    from repro.sim.scheduler import Event
    from repro.sim.stats import TimePoint
    from repro.sim.trace import ErrorTrace, RandomInvocation, TraceEntry, Violation

    header, raw = _read_file(path)
    fingerprint = design_fingerprint(program)
    if header.get("design") != fingerprint:
        raise CheckpointError(
            f"{path}: checkpoint was taken from a different design "
            f"(fingerprint {header.get('design', '?')[:12]}..., "
            f"this program {fingerprint[:12]}...)"
        )
    semantic = header.get("options", {})
    if options is None:
        options = SimOptions(
            accumulation=AccumulationMode(semantic["accumulation"]),
            depth_first_priorities=semantic["depth_first_priorities"],
            check_unknown_assert=semantic["check_unknown_assert"],
            concrete_random=semantic["concrete_random"],
        )
    else:
        mine = {
            "accumulation": options.accumulation.value,
            "depth_first_priorities": options.depth_first_priorities,
            "check_unknown_assert": options.check_unknown_assert,
            "concrete_random": options.concrete_random,
        }
        for name in _SEMANTIC_OPTIONS:
            if name in semantic and mine[name] != semantic[name]:
                raise CheckpointError(
                    f"{path}: option {name!r} was {semantic[name]!r} at "
                    f"checkpoint time but {mine[name]!r} now; semantic "
                    "options must match to resume"
                )
    try:
        payload = _BuiltinsOnlyUnpickler(io.BytesIO(raw)).load()
    except CheckpointError:
        raise
    except Exception as exc:  # pickle raises a zoo of types on corruption
        raise CheckpointError(f"{path}: corrupt payload: {exc}")
    try:
        return _rebuild(Kernel, program, options, payload,
                        _Assertion, _TriggerState, _Waiter, Event,
                        TimePoint, ErrorTrace, RandomInvocation, TraceEntry,
                        Violation)
    except CheckpointError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise CheckpointError(f"{path}: malformed payload: {exc!r}")


def _rebuild(Kernel, program, options, payload, _Assertion, _TriggerState,
             _Waiter, Event, TimePoint, ErrorTrace, RandomInvocation,
             TraceEntry, Violation):
    kern = Kernel(program, options=options)
    mgr = kern.mgr

    # -- arena image (verbatim: node ids in the payload index into it) --
    image = payload["mgr"]
    mgr._level = list(image["level"])
    mgr._low = list(image["low"])
    mgr._high = list(image["high"])
    mgr._unique = {
        (mgr._level[node], mgr._low[node], mgr._high[node]): node
        for node in range(2, len(mgr._level))
    }
    mgr._ite_cache = {}
    mgr._not_cache = {}
    mgr._and_cache = {}
    mgr._or_cache = {}
    mgr._xor_cache = {}
    mgr._ite_hits = mgr._not_hits = 0
    mgr._ite_miss_base = mgr._not_miss_base = 0
    mgr._and_hits = mgr._or_hits = mgr._xor_hits = 0
    mgr._and_miss_base = mgr._or_miss_base = mgr._xor_miss_base = 0
    mgr._fp_word = mgr._fp_bits = mgr._fp_sym = 0
    mgr._var_names = list(image["var_names"])
    mgr._var_bdds = list(image["var_bdds"])
    mgr._concretized = {int(k): bool(v)
                        for k, v in image["concretized"].items()}
    mgr._last_gc_size = image["last_gc_size"]
    mgr._next_sift_at = image["next_sift_at"]
    mgr._peak = image["peak"]

    # -- kernel scalars --
    kern._started = True
    kern._ensure_compiled_tier()
    kern.now = payload["now"]
    kern.finished = payload["finished"]
    kern.stopped = payload["stopped"]
    kern._interrupted = False
    kern._finish_control = payload["finish_control"]
    kern.output = list(payload["output"])
    kern._line_open = payload["line_open"]
    kern._cpu_accum = payload["cpu_accum"]

    # -- value store / drivers / static subscriber table --
    kern.state.restore(payload["state"])
    kern._drivers = {
        net: {key: _vec_from(mgr, vec) for key, vec in drivers.items()}
        for net, drivers in payload["drivers"].items()
    }
    kern._assign_subs = {}
    for assign in program.assigns:
        for net in assign.support:
            kern._assign_subs.setdefault(net, []).append(assign.index)

    # -- scheduler --
    events = []
    for entry in payload["events"]:
        kind = entry["kind"]
        event = Event(time=entry["time"], region=entry["region"],
                      prio=entry["prio"], kind=kind, pc=entry["pc"],
                      control=entry["control"], index=entry["index"])
        if kind == "proc":
            event.process = program.processes[entry["process"]]
        elif kind == "nba":
            event.apply = _nba_from(kern, entry["nba"])
        elif kind == "drive":
            event.payload = _vec_from(mgr, entry["payload"])
        events.append(event)
    kern.sched.restore_events(events)
    kern.sched.scheduled = payload["sched_scheduled"]
    kern.sched.merged = payload["sched_merged"]

    # -- waiters (rebuilt from the instruction before the resume pc) --
    waiters = []
    for record in payload["waiters"]:
        process = program.processes[record["process"]]
        instruction = process.instructions[record["pc"] - 1]
        waiter = _Waiter(kind=record["kind"], process=process,
                         pc=record["pc"], control=record["control"],
                         prio=record["prio"])
        if record["kind"] == "event":
            if not isinstance(instruction, WaitEvent):
                raise CheckpointError(
                    f"waiter pc {record['pc']} of {process.name} does not "
                    "follow a WaitEvent instruction"
                )
            if len(instruction.triggers) != len(record["lasts"]):
                raise CheckpointError(
                    f"waiter trigger arity mismatch in {process.name}"
                )
            waiter.triggers = [
                _TriggerState(trigger=t, last=_vec_from(mgr, last))
                for t, last in zip(instruction.triggers, record["lasts"])
            ]
        else:
            if not isinstance(instruction, WaitCond):
                raise CheckpointError(
                    f"waiter pc {record['pc']} of {process.name} does not "
                    "follow a WaitCond instruction"
                )
            waiter.cond = instruction.cond
        waiters.append(waiter)
    kern._waiters = {
        net: [waiters[i] for i in indices]
        for net, indices in payload["waiters_by_net"].items()
    }

    # -- assertions / monitor (via compile-time site registries) --
    kern._assertions = {}
    for aid, armed in payload["assertions"].items():
        site = program.assertion_sites.get(aid)
        if site is None:
            raise CheckpointError(f"unknown assertion site {aid!r}")
        cond, where = site
        kern._assertions[aid] = _Assertion(cond=cond, armed=armed,
                                           where=where)
    monitor = payload["monitor"]
    if monitor is not None:
        args = program.monitor_sites.get(monitor["key"])
        if args is None:
            raise CheckpointError(
                f"unknown $monitor site {monitor['key']!r}"
            )
        kern._monitor = (args, monitor["control"])
        kern._monitor_key = monitor["key"]
    kern._monitor_last = payload["monitor_last"]

    # -- $random machinery --
    kern._callsite_seq = {int(k): v
                          for k, v in payload["callsite_seq"].items()}
    kern.random_log = [
        RandomInvocation(
            callsite_index=inv["callsite_index"], seq=inv["seq"],
            time=inv["time"], vector=_vec_from(mgr, inv["vector"]),
            control=inv["control"], levels=tuple(inv["levels"]),
        )
        for inv in payload["random_log"]
    ]
    kern.violations = [
        Violation(
            kind=v["kind"], where=v["where"], message=v["message"],
            time=v["time"], condition=v["condition"],
            trace=ErrorTrace(
                witness={int(k): bool(val)
                         for k, val in v["witness"].items()},
                entries=[TraceEntry(*entry) for entry in v["entries"]],
            ),
        )
        for v in payload["violations"]
    ]

    # -- stats / rng / concrete replay values --
    stats_image = payload["stats"]
    stats = kern.stats
    for name in ("events_processed", "events_scheduled", "events_merged",
                 "process_events", "nba_events", "assign_events",
                 "instructions", "symbols_injected"):
        setattr(stats, name, stats_image[name])
    stats.timeline = [TimePoint(*point) for point in stats_image["timeline"]]
    stats.bdd = dict(stats_image["bdd"])
    if payload["rng"] is not None:
        if kern._rng is None:
            raise CheckpointError(
                "checkpoint has concrete-random state but the resumed "
                "options carry no concrete_random seed"
            )
        kern._rng.setstate(payload["rng"])
    if payload["concrete"] is not None:
        from collections import deque

        kern._concrete = {
            int(index): deque(values)
            for index, values in payload["concrete"].items()
        }

    # -- VCD continuation --
    vcd_image = payload["vcd"]
    if vcd_image is not None:
        from repro.sim.vcd import VcdWriter

        vcd_path = vcd_image["path"]
        try:
            stream = open(vcd_path, "r+", encoding="ascii")
            stream.seek(vcd_image["offset"])
            stream.truncate()
        except OSError as exc:
            raise CheckpointError(
                f"cannot reopen VCD {vcd_path} for resume: {exc}"
            )
        writer = VcdWriter(stream)
        writer._ids = dict(vcd_image["ids"])
        writer._widths = dict(vcd_image["widths"])
        writer._last = dict(vcd_image["last"])
        writer._header_done = True
        writer._current_time = vcd_image["current_time"]
        kern._vcd_path = vcd_path
        kern._vcd = writer
        kern._vcd_stream = stream
    return kern
