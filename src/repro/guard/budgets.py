"""Resource budgets and the graceful-degradation ladder.

Symbolic simulation fails non-linearly: one `$random` too many and the
BDDs blow up, the run eats all RAM and dies with a useless MemoryError
an hour in.  :class:`Guard` turns that cliff into a staircase.  At every
end-of-step safe point it checks the configured
:class:`ResourceBudgets`; on a memory-shaped breach it climbs a
mitigation ladder of increasing aggression, re-checking after each rung:

1. **force a BDD garbage collection** — free dead nodes now instead of
   waiting for the GC threshold;
2. **force a sifting reorder** — spend CPU to shrink the live graph;
3. **concretize** — pick the symbolic ``$random`` variable whose level
   owns the most live nodes and restrict every live BDD to one constant
   value for it (choosing the cheaper branch).  This is the paper's
   symbolic/concrete trade-off applied in reverse: the run continues
   soundly but explores half the input space per concretized bit.  The
   choice is recorded in the manager, logged into the simulation
   output, and counted in ``sim.guard.concretized`` so reported
   violations can be audited against the narrowed space.  Error traces
   remain sound: controls, injected vectors and violation conditions
   are all restricted consistently through the Section-5 invocation
   machinery (the root-provider remap), so a witness extracted later
   still drives a valid concrete resimulation.
4. **abort, usefully** — write a rescue checkpoint and raise
   :class:`~repro.errors.SimulationAborted` carrying the partial
   :class:`~repro.sim.kernel.SimResult` and a :class:`BudgetReport`,
   instead of an opaque MemoryError or a hung process.

Hard budgets (wall-clock deadline, total event count) skip the ladder —
no amount of BDD shrinking buys back time — and go straight to the
rescue-checkpoint abort.  Budget checks are O(1) reads of existing
counters; with no guard configured the kernel's safe-point hook is a
single identity check.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass, field
from typing import List, Optional

_PAGE_SIZE = None


def process_rss_mb() -> Optional[float]:
    """Resident set size in MiB via ``/proc`` (None off Linux)."""
    global _PAGE_SIZE
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        if _PAGE_SIZE is None:
            _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
        return int(fields[1]) * _PAGE_SIZE / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        return None


@dataclass
class ResourceBudgets:
    """Limits enforced at end-of-step safe points.

    All default to None (unlimited).  ``max_live_nodes`` and
    ``max_rss_mb`` are *soft* limits — breaching them runs the
    mitigation ladder before giving up; ``wall_seconds`` and
    ``max_events`` are hard deadlines.
    """

    #: Wall-clock budget for the whole run (measured from the first
    #: ``run()`` call; survives multiple ``run()`` phases).
    wall_seconds: Optional[float] = None
    #: Ceiling on live BDD nodes after the GC rung has run.
    max_live_nodes: Optional[int] = None
    #: Ceiling on process resident set size (MiB); ignored when
    #: ``/proc/self/statm`` is unavailable.
    max_rss_mb: Optional[float] = None
    #: Ceiling on total processed events.
    max_events: Optional[int] = None
    #: How many ``$random`` variables the concretize rung may burn
    #: through (per breach episode) before aborting.
    max_concretizations: int = 8


@dataclass
class BudgetReport:
    """What breached, what the guard did about it, and where the rescue
    checkpoint went.  Attached to :class:`SimulationAborted`."""

    breached: str
    limit: object
    observed: object
    sim_time: int
    actions: List[str] = field(default_factory=list)
    concretized: List[str] = field(default_factory=list)
    checkpoint_path: Optional[str] = None

    def describe(self) -> str:
        lines = [
            f"budget breached: {self.breached} "
            f"(limit {self.limit}, observed {self.observed}) "
            f"at simulation time {self.sim_time}",
        ]
        if self.actions:
            lines.append("mitigations attempted: " + "; ".join(self.actions))
        if self.concretized:
            lines.append("concretized variables: "
                         + ", ".join(self.concretized))
        if self.checkpoint_path:
            lines.append(f"rescue checkpoint: {self.checkpoint_path}")
        return "\n".join(lines)


class Guard:
    """Safe-point supervisor: budgets, checkpoints, fault injection.

    Constructed by the kernel when any of
    :class:`~repro.sim.kernel.SimOptions` ``budgets`` /
    ``checkpoint_every`` / ``faults`` is set.  All work happens in
    :meth:`on_safe_point`; the contract with the kernel is that *every*
    failure inside the guard surfaces as a structured
    :class:`SimulationAborted` — never a bare traceback out of the
    event loop.
    """

    def __init__(self, budgets: Optional[ResourceBudgets] = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir: Optional[str] = None,
                 faults=None, obs=None) -> None:
        from repro.errors import SimulationError

        if checkpoint_every is not None and checkpoint_dir is None:
            raise SimulationError(
                "checkpoint_every requires checkpoint_dir"
            )
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise SimulationError("checkpoint_every must be positive")
        self.budgets = budgets
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.faults = faults
        self._deadline: Optional[float] = None
        self._safe_points = 0
        self._concretized: List[str] = []
        self._m_concretized = None
        self._m_checkpoints = None
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None and obs.metrics is not None:
            self._m_concretized = obs.metrics.counter(
                "sim.guard.concretized",
                "symbolic variables concretized by the mitigation ladder")
            self._m_checkpoints = obs.metrics.counter(
                "sim.guard.checkpoints", "checkpoints written by the guard")

    # ------------------------------------------------------------------
    # kernel hooks
    # ------------------------------------------------------------------

    def on_run_start(self, kern) -> None:
        budgets = self.budgets
        if (budgets is not None and budgets.wall_seconds is not None
                and self._deadline is None):
            self._deadline = _time.perf_counter() + budgets.wall_seconds
        if self.faults is not None:
            self.faults.on_run_start(self, kern)

    def on_safe_point(self, kern) -> None:
        """Fault injection, then budgets/ladder, then rolling checkpoint."""
        from repro.errors import SimulationAborted

        try:
            self._safe_points += 1
            if self.faults is not None:
                self.faults.on_safe_point(self, kern)
            if self.budgets is not None:
                self._check_budgets(kern)
            self._periodic_checkpoint(kern)
        except SimulationAborted:
            raise
        except Exception as exc:
            # The no-bare-traceback contract: anything that goes wrong
            # inside the guard machinery (including injected safe-point
            # faults) aborts with structure, not a stack dump.
            report = BudgetReport(
                breached="guard-failure", limit=None,
                observed=f"{type(exc).__name__}: {exc}",
                sim_time=kern.now,
                concretized=list(self._concretized),
            )
            report.checkpoint_path = self._try_rescue(kern, report)
            raise SimulationAborted(
                f"guard failure at safe point: {exc}",
                budget_report=report,
            ) from exc

    def on_interrupt(self, kern) -> None:
        """Deferred SIGINT reached the safe point: save, if configured."""
        if self.checkpoint_dir is not None:
            path = os.path.join(self.checkpoint_dir, "interrupt.ckpt")
            try:
                self._save(kern, path)
                kern._emit(f"[guard] interrupt checkpoint written: {path}")
            except Exception as exc:
                kern._emit(f"[guard] interrupt checkpoint failed: {exc}")

    # ------------------------------------------------------------------
    # budgets + ladder
    # ------------------------------------------------------------------

    def _check_budgets(self, kern) -> None:
        budgets = self.budgets
        if self._deadline is not None:
            now = _time.perf_counter()
            if now > self._deadline:
                overrun = now - (self._deadline - budgets.wall_seconds)
                self._abort(kern, BudgetReport(
                    breached="wall_seconds", limit=budgets.wall_seconds,
                    observed=round(overrun, 3), sim_time=kern.now,
                ))
        if (budgets.max_events is not None
                and kern.stats.events_processed > budgets.max_events):
            self._abort(kern, BudgetReport(
                breached="max_events", limit=budgets.max_events,
                observed=kern.stats.events_processed, sim_time=kern.now,
            ))
        if budgets.max_live_nodes is None and budgets.max_rss_mb is None:
            return
        breach = self._memory_breach(kern)
        if breach is not None:
            self._run_ladder(kern, breach)

    def _memory_breach(self, kern) -> Optional[BudgetReport]:
        budgets = self.budgets
        if (budgets.max_live_nodes is not None
                and kern.mgr.total_nodes > budgets.max_live_nodes):
            return BudgetReport(
                breached="max_live_nodes", limit=budgets.max_live_nodes,
                observed=kern.mgr.total_nodes, sim_time=kern.now,
            )
        if budgets.max_rss_mb is not None:
            rss = process_rss_mb()
            if rss is not None and rss > budgets.max_rss_mb:
                return BudgetReport(
                    breached="max_rss_mb", limit=budgets.max_rss_mb,
                    observed=round(rss, 1), sim_time=kern.now,
                )
        return None

    def _run_ladder(self, kern, report: BudgetReport) -> None:
        """GC -> sift -> concretize -> abort, re-checking between rungs."""
        mgr = kern.mgr

        reclaimed = mgr.collect()
        report.actions.append(f"gc reclaimed {reclaimed} nodes")
        if self._memory_breach(kern) is None:
            return

        saved = mgr.sift()
        report.actions.append(f"sift reorder saved {saved} nodes")
        if self._memory_breach(kern) is None:
            return

        for _ in range(self.budgets.max_concretizations):
            if not self._concretize_one(kern, report):
                break
            if self._memory_breach(kern) is None:
                return

        self._abort(kern, report)

    def _concretize_one(self, kern, report: BudgetReport) -> bool:
        """Concretize the heaviest un-concretized ``$random`` variable.

        Returns False when no symbolic variable is left to burn.
        """
        mgr = kern.mgr
        candidates = set()
        for invocation in kern.random_log:
            candidates.update(invocation.levels)
        candidates.difference_update(mgr.concretized)
        if not candidates:
            report.actions.append("no symbolic $random variables left "
                                  "to concretize")
            return False
        # One arena pass: live nodes per variable level (arena was just
        # compacted by the GC rung, so every slot >= 2 is live).
        weight = [0] * mgr.var_count
        for node in range(2, len(mgr._level)):
            weight[mgr._level[node]] += 1
        level = max(candidates, key=lambda lvl: (weight[lvl], -lvl))
        name = mgr.var_name(level)
        started = _time.perf_counter()
        value = mgr.concretize(level)
        label = f"{name}={int(value)}"
        self._concretized.append(label)
        report.concretized.append(label)
        report.actions.append(
            f"concretized {label} ({weight[level]} nodes at its level)")
        kern._emit(
            f"[guard] budget pressure: concretized $random variable "
            f"{label} at time {kern.now}; error traces now cover the "
            f"narrowed input space"
        )
        if self._m_concretized is not None:
            self._m_concretized.inc()
        if self._tracer is not None:
            self._tracer.complete(
                "guard-concretize", "guard", self._tracer.to_us(started),
                (_time.perf_counter() - started) * 1e6,
                variable=name, value=int(value), sim_time=kern.now,
            )
        return True

    def _abort(self, kern, report: BudgetReport) -> None:
        from repro.errors import SimulationAborted

        report.concretized = list(self._concretized)
        report.checkpoint_path = self._try_rescue(kern, report)
        raise SimulationAborted(
            f"resource budget exceeded — {report.describe()}",
            budget_report=report,
        )

    def _try_rescue(self, kern, report: BudgetReport) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        path = os.path.join(self.checkpoint_dir, "abort.ckpt")
        try:
            return self._save(kern, path)
        except Exception:
            return None

    # ------------------------------------------------------------------
    # rolling checkpoints
    # ------------------------------------------------------------------

    def _periodic_checkpoint(self, kern) -> None:
        if (self.checkpoint_every is None
                or self._safe_points % self.checkpoint_every != 0):
            return
        path = os.path.join(self.checkpoint_dir, "latest.ckpt")
        started = _time.perf_counter()
        self._save(kern, path)
        if self._tracer is not None:
            self._tracer.complete(
                "guard-checkpoint", "guard", self._tracer.to_us(started),
                (_time.perf_counter() - started) * 1e6,
                path=path, sim_time=kern.now,
            )

    def _save(self, kern, path: str) -> str:
        from repro.guard.checkpoint import save_checkpoint

        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        result = save_checkpoint(kern, path)
        if self._m_checkpoints is not None:
            self._m_checkpoints.inc()
        return result
