"""repro.guard — resource budgets, graceful degradation and
checkpoint/resume for the symbolic kernel.

Three pieces, all acting at the kernel's end-of-step safe points:

* :class:`ResourceBudgets` + :class:`Guard` (``budgets.py``) — enforce
  wall-clock/node/RSS/event ceilings and climb the mitigation ladder
  (GC -> sift -> concretize -> structured abort) under memory pressure;
* ``checkpoint.py`` — versioned, checksummed on-disk snapshots of a
  running simulation, resumable bit-identically in a fresh process;
* :class:`~repro.guard.faults.FaultInjector` (``faults.py``) —
  deterministic chaos for testing all of the above.

The kernel imports this package lazily, only when a
:class:`~repro.sim.kernel.SimOptions` sets ``budgets``,
``checkpoint_every`` or ``faults``; default runs never pay for it.
"""

from repro.guard.budgets import (
    BudgetReport, Guard, ResourceBudgets, process_rss_mb,
)
from repro.guard.checkpoint import (
    FORMAT_VERSION, design_fingerprint, load_checkpoint, read_header,
    save_checkpoint,
)
from repro.guard.faults import Fault, FaultInjector

__all__ = [
    "BudgetReport",
    "Fault",
    "FaultInjector",
    "FORMAT_VERSION",
    "Guard",
    "ResourceBudgets",
    "design_fingerprint",
    "load_checkpoint",
    "process_rss_mb",
    "read_header",
    "save_checkpoint",
]
