"""Deterministic fault injection for the guard subsystem.

Robustness code is the least-executed code in the repo — nothing in a
healthy test run ever drives the mitigation ladder, the rescue
checkpoint path, or the corrupt-checkpoint rejection logic.  The chaos
tests (``pytest -m chaos``) use this module to *make* those paths run,
deterministically: a :class:`FaultInjector` is a scripted plan of
:class:`Fault` records keyed by safe-point ordinal, so the same plan
produces the same failure at the same simulation point every time.

Fault kinds:

``arena-blowup``
    Append ``magnitude`` junk rows to the BDD arena at the safe point.
    The rows are unreachable from any root, so they model sudden dead
    growth: the ladder's GC rung reclaims them — exercising rungs 1-2
    without needing a design that genuinely explodes.  (Deliberately
    *not* ``new_var``: variable nodes are pinned by the manager
    forever and would defeat the GC rung.)

``clock-skew``
    Pull the guard's wall-clock deadline ``magnitude`` seconds into the
    past, as if the host clock jumped — the next deadline check
    breaches immediately.  Exercises the hard-budget abort + rescue
    checkpoint.

``safe-point-error``
    Raise a RuntimeError from inside the safe-point hook.  The guard
    must convert it into a structured
    :class:`~repro.errors.SimulationAborted` (the no-bare-traceback
    contract).

``interrupt``
    Set the kernel's deferred-SIGINT flag, as if the user pressed
    Ctrl-C — exercises the interrupt checkpoint + ``interrupted``
    result path without real signals.

File-corruption helpers (:func:`truncate_file`, :func:`flip_byte`,
:func:`corrupt_header`) damage checkpoints on disk for the loader
tests; every damage mode must surface as
:class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

FAULT_KINDS = ("arena-blowup", "clock-skew", "safe-point-error", "interrupt")


@dataclass
class Fault:
    """One scripted fault: fire ``kind`` at safe point ``at_step``.

    ``on_attempt`` scopes the fault to one batch attempt number: a
    fault with ``on_attempt=1`` fires only the first time the durable
    batch engine runs the request and stays quiet on retries — the
    deterministic model of a *transient* failure (the retry heals it),
    which is what the retry-determinism tests need.  ``None`` (the
    default) fires on every attempt: a *persistent* fault that drives
    a run into quarantine.
    """

    kind: str
    at_step: int
    magnitude: int = 0
    on_attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.on_attempt is not None and self.on_attempt < 1:
            raise ValueError(
                f"on_attempt must be >= 1, got {self.on_attempt}")


class FaultInjector:
    """Fires a scripted fault plan at guard safe points."""

    def __init__(self, faults: List[Fault]) -> None:
        self.faults = list(faults)
        self.fired: List[Fault] = []
        #: Batch attempt number the current run carries; attempt-scoped
        #: faults compare against this.  The batch worker sets it
        #: before each attempt; standalone runs stay at 1.
        self.attempt = 1
        self._ordinal = 0

    def on_run_start(self, guard, kern) -> None:
        self._ordinal = 0

    def on_safe_point(self, guard, kern) -> None:
        self._ordinal += 1
        for fault in self.faults:
            if fault.on_attempt is not None \
                    and fault.on_attempt != self.attempt:
                continue
            if fault.at_step == self._ordinal and fault not in self.fired:
                self.fired.append(fault)
                self._fire(fault, guard, kern)

    def _fire(self, fault: Fault, guard, kern) -> None:
        if fault.kind == "arena-blowup":
            mgr = kern.mgr
            # Junk rows: internal-node shape, reachable from nothing.
            level = max(0, mgr.var_count - 1)
            for _ in range(fault.magnitude):
                mgr._level.append(level)
                mgr._low.append(0)
                mgr._high.append(1)
        elif fault.kind == "clock-skew":
            if guard._deadline is not None:
                guard._deadline -= fault.magnitude
            else:  # no wall budget: skew still forces an instant deadline
                guard._deadline = 0.0
                if guard.budgets is not None:
                    if guard.budgets.wall_seconds is None:
                        guard.budgets.wall_seconds = 0.0
        elif fault.kind == "safe-point-error":
            raise RuntimeError(
                f"injected safe-point fault at ordinal {self._ordinal}"
            )
        elif fault.kind == "interrupt":
            kern._sigint_flag[0] = True


# ----------------------------------------------------------------------
# on-disk checkpoint damage (for loader robustness tests)
# ----------------------------------------------------------------------


def truncate_file(path: str, keep_bytes: int) -> None:
    """Chop a file down to its first ``keep_bytes`` bytes."""
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)


def flip_byte(path: str, offset: int) -> None:
    """XOR one byte (negative offsets count from the end)."""
    with open(path, "r+b") as handle:
        handle.seek(0, 2)
        size = handle.tell()
        if offset < 0:
            offset += size
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def corrupt_header(path: str) -> None:
    """Overwrite the header line with syntactically broken JSON."""
    with open(path, "r+b") as handle:
        magic = handle.readline()
        handle.seek(len(magic))
        handle.write(b"{not json")
