"""Merging per-worker trace shards into one Chrome trace.

The batch engine gives every worker process its own JSONL trace shard
(the ``repro.obs.trace/1`` records the kernel already emits, plus
``run:<name>`` spans bracketing each simulation).  After the batch
drains, :func:`merge_shards` folds the shards into a single Chrome
``trace_event`` document in which **each worker is one process lane**:
the worker's pid becomes the Chrome ``pid``, the record's lane stays
the ``tid``, and ``process_name`` metadata labels the lanes so
Perfetto renders an at-a-glance picture of pool utilisation — which
worker ran which design, where the stragglers are, how compilation
amortised.

Shard timestamps are microseconds since *that worker's* tracer was
constructed; each shard therefore carries a wall-clock anchor
(``t0_unix_us``) so the merger can place all workers on one absolute
axis.  Anchors travel in the :class:`~repro.batch.engine.RunOutcome`
records rather than in the shard files, keeping the shard format
exactly the kernel's.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, Iterable, List, Optional, Tuple

_PHASES = {"begin": "B", "end": "E", "complete": "X",
           "instant": "i", "counter": "C"}


class ShardWarning(UserWarning):
    """A trace shard was empty, truncated, or partially unreadable.

    Emitted (never raised) while merging: a worker killed mid-write —
    OOM reaper, SIGKILL in the chaos lane — legitimately leaves a
    truncated or empty shard behind, and one bad shard must not cost
    the batch its merged trace.
    """


def read_jsonl_records(path: str) -> List[dict]:
    """Load one JSONL trace shard, skipping anything unusable.

    A worker killed mid-write truncates its last line; a worker killed
    before its first flush leaves an empty file.  Malformed lines and
    non-object records are dropped with a :class:`ShardWarning`
    summarising the damage — the merge always completes with whatever
    survived.
    """
    records = []
    dropped = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    dropped += 1
                    continue
                if not isinstance(record, dict):
                    dropped += 1
                    continue
                records.append(record)
    except OSError as exc:
        warnings.warn(f"trace shard {path!r} unreadable, skipped: {exc}",
                      ShardWarning, stacklevel=2)
        return []
    if dropped:
        warnings.warn(
            f"trace shard {path!r}: skipped {dropped} malformed line(s) "
            "(worker likely killed mid-write)", ShardWarning, stacklevel=2)
    elif not records:
        warnings.warn(f"trace shard {path!r} is empty, skipped",
                      ShardWarning, stacklevel=2)
    return records


def shard_to_chrome_events(records: Iterable[dict], pid: int,
                           offset_us: float = 0.0) -> List[dict]:
    """Render one shard's records as Chrome events under process ``pid``.

    Records missing required fields (a truncated shard may parse as
    JSON yet lack ``name``/``ts_us``) are skipped, not raised on.
    """
    events = []
    dropped = 0
    for record in records:
        phase = _PHASES.get(record.get("ev"))
        if phase is None:
            continue
        name, cat, ts_us = (record.get("name"), record.get("cat"),
                            record.get("ts_us"))
        if name is None or cat is None \
                or not isinstance(ts_us, (int, float)):
            dropped += 1
            continue
        event = {
            "name": name, "cat": cat, "ph": phase,
            "ts": round(ts_us + offset_us, 3),
            "pid": pid, "tid": record.get("lane", 0),
        }
        if "dur_us" in record:
            event["dur"] = record["dur_us"]
        if phase == "i":
            event["s"] = "t"
        if "args" in record:
            event["args"] = record["args"]
        events.append(event)
    if dropped:
        warnings.warn(
            f"trace shard for worker {pid}: skipped {dropped} record(s) "
            "missing required fields", ShardWarning, stacklevel=2)
    return events


def merge_shards(
    shards: Dict[int, Tuple[str, float]],
    out_path: str,
    labels: Optional[Dict[int, str]] = None,
) -> int:
    """Merge worker shards into one Chrome trace; returns event count.

    ``shards`` maps a worker pid to ``(jsonl_path, t0_unix_us)`` — the
    shard file and the wall-clock microsecond at which that worker's
    tracer clock started.  The earliest anchor becomes the merged
    trace's time zero, so lane offsets reflect real pool timing.
    ``labels`` optionally overrides the per-worker lane names.
    """
    anchors = [t0 for _, t0 in shards.values()]
    base = min(anchors) if anchors else 0.0
    events: List[dict] = []
    for pid in sorted(shards):
        path, t0 = shards[pid]
        label = (labels or {}).get(pid, f"worker {pid}")
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        if not os.path.exists(path):
            warnings.warn(f"trace shard {path!r} missing (worker {pid} "
                          "never flushed), skipped", ShardWarning,
                          stacklevel=2)
            continue
        events.extend(
            shard_to_chrome_events(read_jsonl_records(path), pid,
                                   offset_us=t0 - base)
        )
    document = {"schema": "repro.obs.trace/1", "displayTimeUnit": "ms",
                "traceEvents": events}
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(events)
