"""Hot-spot profiler — which event site is multiplying events?

The paper's cost model is event-centric: CPU time goes where events
multiply and BDDs grow.  This profiler attributes every dispatched
event to a *site* — a stable label derived from the process name and
the source line of the resumed instruction (``tb.proc:12``), or the
continuous-assign index (``assign#3:line``) — and accumulates per
site:

* ``pops`` — events dispatched,
* ``merges`` — accumulation merges absorbed *into* this site's pending
  event (scheduler fast path, Fig. 8),
* ``cpu_seconds`` — wall time inside the dispatch,
* ``bdd_nodes`` — BDD arena growth during the dispatch (cumulative
  "BDD work" the site caused),
* ``instructions`` — micro-instructions retired while resuming.

``top(n, by=...)`` answers "which ``always`` block is hot" in one
call; :func:`repro.obs.report.format_profile` renders it for the
``symsim report`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

SCHEMA = "repro.obs.profile/1"

SORT_KEYS = ("pops", "merges", "cpu_seconds", "bdd_nodes", "instructions")


def event_label(event) -> str:
    """Stable site label for a scheduler event.

    Process resumes are keyed by the *source line* of the instruction
    at the resumed label, so every split/join of one statement folds
    into one site; NBA applications have no compiled site and share
    one bucket.
    """
    kind = event.kind
    if kind == "proc":
        process = event.process
        try:
            line = process.instructions[event.pc].line
        except IndexError:  # pragma: no cover - defensive
            line = 0
        return f"{process.name}:{line}"
    if kind in ("assign", "drive"):
        return f"assign#{event.index}"
    return "nba"


@dataclass
class SiteStats:
    """Accumulated cost of one event site."""

    label: str
    kind: str
    pops: int = 0
    merges: int = 0
    cpu_seconds: float = 0.0
    bdd_nodes: int = 0
    instructions: int = 0

    def as_dict(self) -> dict:
        return {
            "label": self.label, "kind": self.kind, "pops": self.pops,
            "merges": self.merges, "cpu_seconds": self.cpu_seconds,
            "bdd_nodes": self.bdd_nodes, "instructions": self.instructions,
        }


@dataclass
class HotSpotProfiler:
    """Per-site accumulation of event pops, merges and BDD work."""

    sites: Dict[str, SiteStats] = field(default_factory=dict)

    def _site(self, label: str, kind: str) -> SiteStats:
        site = self.sites.get(label)
        if site is None:
            site = self.sites[label] = SiteStats(label=label, kind=kind)
        return site

    def record_pop(self, event, cpu_seconds: float, bdd_nodes: int,
                   instructions: int = 0) -> None:
        site = self._site(event_label(event), event.kind)
        site.pops += 1
        site.cpu_seconds += cpu_seconds
        site.bdd_nodes += bdd_nodes
        site.instructions += instructions

    def record_merge(self, event) -> None:
        self._site(event_label(event), event.kind).merges += 1

    def record_block(self, sites) -> None:
        """Attribute one fused-block run of the compiled tier.

        ``sites`` is the block's static ``((label, count), ...)`` —
        its constituent source sites and how many fused instructions
        each contributes.  This keeps per-source-site hot spots intact
        when the kernel retires whole blocks at a time instead of
        single instructions (the kernel then reports 0 instructions
        through :meth:`record_pop` so nothing double-counts; pops,
        merges, CPU and BDD growth stay attributed to the resumed
        event's site).
        """
        for label, count in sites:
            self._site(label, "proc").instructions += count

    def record_block_partial(self, site_seq, retired: int) -> None:
        """Attribute a fused block that unwound before completing.

        A ``$finish``/``$error`` raised mid-block retires only a
        prefix of the block's instructions; ``site_seq`` is the
        block's per-instruction label sequence and ``retired`` the
        exact count ``stats.instructions`` advanced, so attribution
        stays equal to the interpreter's total on every path.
        """
        for label in site_seq[:retired]:
            self._site(label, "proc").instructions += 1

    # -- queries -------------------------------------------------------

    def top(self, n: int = 10, by: str = "pops") -> List[SiteStats]:
        if by not in SORT_KEYS:
            raise ValueError(f"sort key {by!r}; expected one of {SORT_KEYS}")
        return sorted(self.sites.values(),
                      key=lambda s: getattr(s, by), reverse=True)[:n]

    def totals(self) -> dict:
        return {
            key: sum(getattr(s, key) for s in self.sites.values())
            for key in SORT_KEYS
        }

    def to_dict(self, meta: Optional[dict] = None,
                bdd: Optional[dict] = None,
                compile_stats: Optional[dict] = None) -> dict:
        """Serializable profile (``repro.obs.profile/1``).

        ``meta`` carries run identification (design, sim time, event
        totals); ``bdd`` the manager's :meth:`cache_stats` so the
        report can print the cache hit-rate next to the hot sites;
        ``compile_stats`` the kernel's ``compile_tier_stats()`` when
        the compiled tier ran (absent for interpreter runs).
        """
        payload = {
            "schema": SCHEMA,
            "meta": meta or {},
            "totals": self.totals(),
            "bdd": bdd or {},
            "sites": [site.as_dict() for site in
                      sorted(self.sites.values(),
                             key=lambda s: s.cpu_seconds, reverse=True)],
        }
        if compile_stats:
            payload["compile"] = compile_stats
        return payload
