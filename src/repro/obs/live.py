"""Live telemetry — heartbeat status records for running simulations.

Post-mortem observability (traces, metrics, profiles) tells you what a
run *did*; a heartbeat tells you what it is doing *now*.  At end-of-step
safe points — the same hook the resource guard uses — the kernel
periodically serializes a compact status record:

* progress: simulation time, the ``until`` bound, processed events;
* cost: live BDD nodes, peak nodes, injected symbols, process RSS;
* rates: events/second and an ETA estimate toward the time bound;
* health: guard-budget headroom (fraction of each budget remaining)
  and the run status (``running`` → a terminal status).

Records go to a *status file* (atomically replaced, so readers never
see a torn write) and/or an in-process callback.  ``symsim top`` tails
one or many status files; ``symsim serve-metrics`` re-exports them as
an OpenMetrics scrape; the batch engine gives every worker run its own
status file and watches the set for stalls.

Determinism contract: every field that depends on the wall clock or
the host (timestamps, rates, RSS, ETA, pid, headroom) lives in
:data:`WALL_FIELDS`; :func:`deterministic_view` strips them, and two
runs of the same deterministic simulation produce byte-identical
deterministic views (asserted by tests/unit/test_obs_live.py).

The schema is ``repro.obs.heartbeat/1``, documented in
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

SCHEMA = "repro.obs.heartbeat/1"

#: Default end-of-step safe-point period between heartbeats.  Chosen so
#: the Table-1 workloads beat a few times per second while the write
#: cost stays well under the <3% overhead envelope.
DEFAULT_EVERY = 25

#: Record fields that depend on the wall clock or the host — excluded
#: from :func:`deterministic_view` so heartbeat payloads of identical
#: runs compare equal.
WALL_FIELDS = frozenset({
    "ts_unix", "pid", "wall_seconds", "events_per_second", "rss_mb",
    "eta_seconds", "headroom",
})

#: Terminal statuses a record may carry (``running`` is the only
#: non-terminal one).
TERMINAL_STATUSES = frozenset({
    "ok", "assert_failed", "aborted", "hang", "interrupted", "crashed",
})


def deterministic_view(record: dict) -> dict:
    """The record minus every wall-clock/host-dependent field.

    Hash/compare this — never the raw record — when asserting that two
    runs of the same simulation report identical progress.
    """
    return {key: value for key, value in record.items()
            if key not in WALL_FIELDS}


def write_status(path: str, record: dict) -> None:
    """Atomically replace ``path`` with one JSON object.

    Writes a sibling temp file and ``os.replace``\\ s it in, so a
    concurrent reader (``symsim top``, the batch stall watcher) always
    sees either the previous record or the new one — never a torn line.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(record, handle, separators=(",", ":"))
        handle.write("\n")
    os.replace(tmp, path)


def read_status(path: str) -> Optional[dict]:
    """Load one status file; ``None`` when missing/empty/malformed.

    Live files are replaced atomically, but a reader must still survive
    files that are mid-creation or not heartbeat records at all.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(record, dict) or record.get("schema") != SCHEMA:
        return None
    return record


def scan_status(paths: Iterable[str]) -> List[dict]:
    """Collect status records from files, directories and globs.

    Directories are scanned (non-recursively) for ``*.json`` files;
    glob patterns expand; unreadable or non-heartbeat files are
    silently skipped.  Records come back sorted by run name so the
    ``symsim top`` table is stable between refreshes.
    """
    import glob as _glob

    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(
                os.path.join(path, entry) for entry in os.listdir(path)
                if entry.endswith(".json")))
        elif any(ch in path for ch in "*?["):
            files.extend(sorted(_glob.glob(path)))
        else:
            files.append(path)
    records = []
    for file_path in files:
        record = read_status(file_path)
        if record is not None:
            records.append(record)
    records.sort(key=lambda r: str(r.get("name", "")))
    return records


def finalize_status(path: str, name: str, status: str,
                    error: Optional[str] = None) -> None:
    """Stamp a terminal ``status`` onto a run's status file.

    Used by the batch worker after a run ends *however* it ended —
    including crash paths the kernel never got to flush — so a status
    file is never left saying ``running`` for a dead run.  Extends the
    last heartbeat when one exists; otherwise writes a minimal record.
    """
    record = read_status(path) or {
        "schema": SCHEMA, "name": name, "seq": 0, "sim_time": 0,
        "until": None, "events_processed": 0, "live_nodes": 0,
        "peak_nodes": 0, "symbols_injected": 0, "violations": 0,
    }
    record["status"] = status
    if error is not None:
        record["error"] = error
    record["ts_unix"] = time.time()
    record["pid"] = os.getpid()
    write_status(path, record)


# ---------------------------------------------------------------------
# the emitter the kernel drives
# ---------------------------------------------------------------------

class Heartbeat:
    """Serializes kernel status at end-of-step safe points.

    Constructed by the kernel when any of the
    :class:`~repro.sim.kernel.SimOptions` heartbeat fields is set.  A
    beat is cheap — one small dict, one atomic file replace — and fires
    every ``every`` safe points plus once more at run end with the
    terminal status, so the status file always converges to the truth.
    """

    def __init__(self, path: Optional[str] = None,
                 callback: Optional[Callable[[dict], None]] = None,
                 every: int = DEFAULT_EVERY,
                 name: Optional[str] = None) -> None:
        if every <= 0:
            raise ValueError(f"heartbeat interval must be positive, "
                             f"got {every}")
        self.path = path
        self.callback = callback
        self.every = every
        self.name = name
        #: Most recent record (also kept when no sink is configured —
        #: the in-process inspection/testing hook).
        self.last: Optional[dict] = None
        #: Total records emitted.
        self.beats = 0
        self._safe_points = 0
        self._wall_start: Optional[float] = None
        self._until: Optional[int] = None

    def on_run_start(self, kern, until: Optional[int]) -> None:
        if self._wall_start is None:
            self._wall_start = time.perf_counter()
        self._until = until

    def on_safe_point(self, kern) -> None:
        self._safe_points += 1
        if self._safe_points % self.every == 0:
            self.beat(kern, "running")

    def on_run_end(self, kern, status: str) -> None:
        self.beat(kern, status)

    # ------------------------------------------------------------------

    def beat(self, kern, status: str) -> dict:
        """Build, record, and deliver one status record."""
        record = self._record(kern, status)
        self.last = record
        self.beats += 1
        if self.path is not None:
            write_status(self.path, record)
        if self.callback is not None:
            self.callback(record)
        return record

    def _record(self, kern, status: str) -> dict:
        wall = (time.perf_counter() - self._wall_start
                if self._wall_start is not None else 0.0)
        events = kern.stats.events_processed
        record = {
            "schema": SCHEMA,
            "name": self.name or kern.design.top,
            "status": status,
            "seq": self.beats,
            "sim_time": kern.now,
            "until": self._until,
            "events_processed": events,
            "live_nodes": kern.mgr.total_nodes,
            "peak_nodes": kern.mgr.peak_nodes,
            "symbols_injected": kern.stats.symbols_injected,
            "violations": len(kern.violations),
            # -- wall-clock/host section (see WALL_FIELDS) -------------
            "ts_unix": time.time(),
            "pid": os.getpid(),
            "wall_seconds": round(wall, 3),
            "events_per_second": round(events / wall, 1) if wall > 0 else 0.0,
            "rss_mb": self._rss_mb(),
            "eta_seconds": self._eta(kern.now, wall),
            "headroom": self._headroom(kern),
        }
        return record

    @staticmethod
    def _rss_mb() -> Optional[float]:
        from repro.guard.budgets import process_rss_mb

        rss = process_rss_mb()
        return round(rss, 1) if rss is not None else None

    def _eta(self, sim_time: int, wall: float) -> Optional[float]:
        """Seconds to the ``until`` bound at the observed sim-time rate."""
        if self._until is None or wall <= 0 or sim_time <= 0:
            return None
        remaining = self._until - sim_time
        if remaining <= 0:
            return 0.0
        return round(remaining * wall / sim_time, 1)

    def _headroom(self, kern) -> Optional[Dict[str, float]]:
        """Fraction of each configured guard budget still unspent."""
        guard = getattr(kern, "_guard", None)
        if guard is None or guard.budgets is None:
            return None
        budgets = guard.budgets
        headroom: Dict[str, float] = {}

        def frac(remaining: float, limit: float) -> float:
            return round(min(max(remaining / limit, 0.0), 1.0), 3)

        if budgets.wall_seconds is not None and guard._deadline is not None:
            headroom["wall_seconds"] = frac(
                guard._deadline - time.perf_counter(), budgets.wall_seconds)
        if budgets.max_live_nodes is not None:
            headroom["max_live_nodes"] = frac(
                budgets.max_live_nodes - kern.mgr.total_nodes,
                budgets.max_live_nodes)
        if budgets.max_rss_mb is not None:
            rss = self._rss_mb()
            if rss is not None:
                headroom["max_rss_mb"] = frac(
                    budgets.max_rss_mb - rss, budgets.max_rss_mb)
        if budgets.max_events is not None:
            headroom["max_events"] = frac(
                budgets.max_events - kern.stats.events_processed,
                budgets.max_events)
        return headroom or None


# ---------------------------------------------------------------------
# health assessment — the batch stall watcher and `symsim top`
# ---------------------------------------------------------------------

#: Default heartbeat age (seconds) after which a run still claiming to
#: be ``running`` is flagged as stalled.
DEFAULT_STALL_AFTER = 30.0


@dataclass
class RunHealth:
    """One run's liveness, judged from its latest status record."""

    name: str
    status: str
    #: Seconds since the record was written (None without a timestamp).
    age_seconds: Optional[float]
    #: True when the run claims ``running`` but its heartbeat is older
    #: than the stall threshold — the worker is wedged, mid-step-bound,
    #: or dead without a terminal record.
    stalled: bool
    record: dict


def assess_health(records: Iterable[dict],
                  now_unix: Optional[float] = None,
                  stall_after: float = DEFAULT_STALL_AFTER,
                  ) -> List[RunHealth]:
    """Judge each record's liveness at time ``now_unix``.

    Pure function of its inputs (pass ``now_unix`` explicitly in tests)
    — this is the unit the batch engine's stall detection and ``symsim
    top``'s staleness column share.
    """
    if now_unix is None:
        now_unix = time.time()
    health = []
    for record in records:
        ts = record.get("ts_unix")
        age = max(now_unix - ts, 0.0) if isinstance(ts, (int, float)) \
            else None
        status = str(record.get("status", "?"))
        stalled = (status == "running" and age is not None
                   and age > stall_after)
        health.append(RunHealth(
            name=str(record.get("name", "?")), status=status,
            age_seconds=age, stalled=stalled, record=record,
        ))
    return health


@dataclass
class LeaseHealth:
    """One leased batch run's liveness, judged for kill escalation.

    Where :class:`RunHealth` asks "is this heartbeat stale?",
    ``LeaseHealth`` asks the sharper scheduling question: "has this
    *lease* gone ``kill_after`` seconds without evidence of progress?"
    Evidence of progress is a ``running`` heartbeat that is both fresh
    (younger than ``kill_after``) and *belongs to this lease* (written
    at or after the lease was granted — a stale record from a previous
    attempt of the same run does not keep a new lease alive).  With
    heartbeats disabled the lease age alone decides.
    """

    name: str
    worker_pid: int
    #: Seconds the lease has been held (monotonic).
    lease_age: float
    #: Seconds since the run's latest heartbeat (None without one).
    heartbeat_age: Optional[float]
    #: True when the engine should kill the worker and requeue the run.
    expired: bool


def assess_lease(name: str, worker_pid: int, lease_age: float,
                 record: Optional[dict], kill_after: float,
                 now_unix: Optional[float] = None,
                 started_unix: Optional[float] = None) -> LeaseHealth:
    """Judge one lease for timeout escalation.

    Pure function of its inputs (the engine passes clocks explicitly;
    tests can too).  ``record`` is the run's latest status record, or
    None when heartbeats are off or nothing was written yet;
    ``started_unix`` is the wall-clock lease grant time used to decide
    whether the record belongs to this lease.
    """
    if now_unix is None:
        now_unix = time.time()
    heartbeat_age: Optional[float] = None
    fresh = False
    if record is not None:
        ts = record.get("ts_unix")
        if isinstance(ts, (int, float)):
            heartbeat_age = max(now_unix - ts, 0.0)
            # 1s of slack absorbs clock skew between the controller
            # stamping the lease and the worker stamping the heartbeat.
            belongs = started_unix is None or ts >= started_unix - 1.0
            fresh = (belongs and heartbeat_age <= kill_after
                     and record.get("status") == "running")
    expired = lease_age > kill_after and not fresh
    return LeaseHealth(name=name, worker_pid=worker_pid,
                       lease_age=lease_age, heartbeat_age=heartbeat_age,
                       expired=expired)
