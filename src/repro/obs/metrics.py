"""Unified metrics registry — counters, gauges, histograms, series.

One :class:`MetricsRegistry` per simulation run collects every numeric
signal the simulator produces: kernel event counters (unifying
:class:`~repro.sim.stats.SimStats`), BDD-manager cache and arena
gauges, per-operation latency histograms, and the cumulative
(sim-time, events, CPU) series behind Fig. 11.  Benchmarks and the CLI
export the registry as JSON so paper figures and ad-hoc telemetry
share one data path.

The design is deliberately prometheus-shaped without the dependency:

* metrics are *families* identified by name + fixed label names;
* ``family.labels(design="gcd")`` returns the child instrument for one
  label assignment (created on first use);
* a family declared with no label names is itself the instrument.

All instruments are plain-Python and allocation-light; a counter
increment is one attribute add.  Snapshots are cheap dictionaries and
the JSON schema (``repro.obs.metrics/1``) is documented in
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

SCHEMA = "repro.obs.metrics/1"

#: Default histogram buckets — wide geometric range that covers both
#: microsecond-scale BDD operations and second-scale runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)


class MetricError(ReproError, ValueError):
    """Misuse of the metrics API (duplicate names, bad labels).

    Subclasses both :class:`~repro.errors.ReproError` (the package-wide
    contract: everything we raise is catchable as one type) and
    ``ValueError`` (the historical base, kept for callers that filter
    on it).
    """


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """Point-in-time value; may also be backed by a callback."""

    __slots__ = ("value", "_fn")

    def __init__(self) -> None:
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` lazily at snapshot time (live gauges)."""
        self._fn = fn

    def snapshot(self):
        if self._fn is not None:
            self.value = float(self._fn())
        return self.value


class Histogram:
    """Bucketed distribution with count / sum / min / max.

    Buckets are upper-bound-inclusive like prometheus; an implicit
    +inf bucket catches the tail.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # linear scan is fine: bucket lists are short and observe()
        # sites that matter are already sampled
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from bucket counts (upper bounds)."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for i, bound in enumerate(self.buckets):
            running += self.counts[i]
            if running >= target:
                return bound
        return self.max if self.max is not None else self.buckets[-1]

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": self.counts[i]}
                for i, bound in enumerate(self.buckets)
            ] + [{"le": "+inf", "count": self.counts[-1]}],
        }


class Series:
    """An append-only (x, y) sample series — Fig. 11-style trajectories.

    ``x`` is typically simulation time; ``y`` a cumulative quantity.
    Consecutive samples with an identical ``x`` overwrite (the kernel
    snapshots once per time advance, but a final flush may repeat the
    last sim time).
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float]] = []

    def sample(self, x: float, y: float) -> None:
        if self.samples and self.samples[-1][0] == x:
            self.samples[-1] = (x, y)
        else:
            self.samples.append((x, y))

    def last(self) -> Optional[Tuple[float, float]]:
        return self.samples[-1] if self.samples else None

    def snapshot(self):
        return [[x, y] for x, y in self.samples]


_TYPES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "series": Series,
}


class Family:
    """All children of one metric name across label assignments."""

    def __init__(self, name: str, type_: str, help_: str,
                 label_names: Tuple[str, ...], **kwargs) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.label_names = label_names
        self._kwargs = kwargs
        self._children: Dict[Tuple[str, ...], object] = {}
        if not label_names:
            # the unlabeled family IS its only instrument
            self._default = self._make()
        else:
            self._default = None

    def _make(self):
        return _TYPES[self.type](**self._kwargs)

    def labels(self, **labels):
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    # Unlabeled convenience passthroughs -------------------------------

    def _only(self):
        if self._default is None:
            raise MetricError(
                f"metric {self.name!r} is labeled; call .labels(...) first"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    def set(self, value: float) -> None:
        self._only().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._only().set_function(fn)

    def observe(self, value: float) -> None:
        self._only().observe(value)

    def sample(self, x: float, y: float) -> None:
        self._only().sample(x, y)

    @property
    def value(self):
        # snapshot() rather than the raw attribute so callback-backed
        # gauges evaluate on read
        return self._only().snapshot()

    @property
    def samples(self):
        return self._only().samples

    def children(self) -> Iterable[Tuple[Dict[str, str], object]]:
        if self._default is not None:
            yield {}, self._default
        for key, child in sorted(self._children.items()):
            yield dict(zip(self.label_names, key)), child


class MetricsRegistry:
    """Namespace of metric families for one run."""

    def __init__(self) -> None:
        self._families: Dict[str, Family] = {}

    # -- declaration ---------------------------------------------------

    def _declare(self, name: str, type_: str, help_: str,
                 labels: Sequence[str], **kwargs) -> Family:
        family = self._families.get(name)
        if family is not None:
            if family.type != type_ or family.label_names != tuple(labels):
                raise MetricError(
                    f"metric {name!r} re-declared as {type_} with labels "
                    f"{tuple(labels)} (was {family.type} "
                    f"{family.label_names})"
                )
            return family
        family = Family(name, type_, help_, tuple(labels), **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Family:
        return self._declare(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Family:
        return self._declare(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Family:
        return self._declare(name, "histogram", help, labels,
                             buckets=buckets)

    def series(self, name: str, help: str = "",
               labels: Sequence[str] = ()) -> Family:
        return self._declare(name, "series", help, labels)

    def get(self, name: str) -> Optional[Family]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def names(self) -> List[str]:
        return sorted(self._families)

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable view of every instrument (evaluates gauges)."""
        metrics = []
        for name in sorted(self._families):
            family = self._families[name]
            for labels, child in family.children():
                metrics.append({
                    "name": name,
                    "type": family.type,
                    "help": family.help,
                    "labels": labels,
                    "value": child.snapshot(),
                })
        return {"schema": SCHEMA, "metrics": metrics}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=2))
            handle.write("\n")

    def to_openmetrics(self) -> str:
        """This registry as an OpenMetrics / Prometheus text exposition."""
        return render_openmetrics(self.snapshot())


# ---------------------------------------------------------------------
# OpenMetrics / Prometheus text exposition
# ---------------------------------------------------------------------

#: Content type of an OpenMetrics scrape response.
OPENMETRICS_CONTENT_TYPE = \
    "application/openmetrics-text; version=1.0.0; charset=utf-8"


def _om_name(name: str) -> str:
    """Sanitize a dotted metric name (``sim.time`` → ``sim_time``)."""
    sanitized = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_"
        for ch in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _om_help_escape(text: str) -> str:
    """Escape HELP text — only ``\\`` and newline per the spec."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _om_escape(text: str) -> str:
    """Escape a label value (quotes too, unlike HELP text)."""
    return _om_help_escape(text).replace('"', '\\"')


def _om_labels(labels: dict, extra: Optional[List[tuple]] = None) -> str:
    pairs = [(key, str(value)) for key, value in sorted(labels.items())]
    pairs.extend(extra or [])
    if not pairs:
        return ""
    inner = ",".join(f'{_om_name(key)}="{_om_escape(value)}"'
                     for key, value in pairs)
    return "{" + inner + "}"


def _om_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_openmetrics(snapshot: dict) -> str:
    """Render a ``repro.obs.metrics/1`` snapshot as OpenMetrics text.

    Works on the *snapshot dict*, not the live registry, so the same
    renderer serves an in-process registry
    (:meth:`MetricsRegistry.to_openmetrics`), a ``--metrics-out`` JSON
    file, and the synthetic registries ``symsim serve-metrics`` builds
    from heartbeat status files.  Counters gain the ``_total`` suffix,
    histograms expose cumulative ``_bucket``/``_count``/``_sum``
    samples, and a series collapses to a gauge carrying its latest
    sample (the full trajectory stays in the JSON export).  The stream
    ends with the mandatory ``# EOF`` marker.
    """
    if not isinstance(snapshot, dict) \
            or not isinstance(snapshot.get("metrics"), list):
        raise MetricError(
            "not a metrics snapshot (expected an object with a "
            "'metrics' array)")
    by_name: Dict[str, List[dict]] = {}
    for metric in snapshot["metrics"]:
        by_name.setdefault(metric["name"], []).append(metric)
    lines: List[str] = []
    for name in sorted(by_name):
        children = by_name[name]
        om_name = _om_name(name)
        type_ = children[0]["type"]
        om_type = {"counter": "counter", "gauge": "gauge",
                   "histogram": "histogram", "series": "gauge"}[type_]
        lines.append(f"# TYPE {om_name} {om_type}")
        help_ = children[0].get("help")
        if help_:
            lines.append(f"# HELP {om_name} {_om_help_escape(help_)}")
        for child in children:
            labels = child.get("labels") or {}
            value = child["value"]
            if type_ == "counter":
                lines.append(f"{om_name}_total{_om_labels(labels)} "
                             f"{_om_value(value)}")
            elif type_ == "gauge":
                lines.append(f"{om_name}{_om_labels(labels)} "
                             f"{_om_value(value)}")
            elif type_ == "series":
                last = value[-1] if value else None
                lines.append(f"{om_name}{_om_labels(labels)} "
                             f"{_om_value(last[1] if last else None)}")
            else:  # histogram
                running = 0
                for bucket in value["buckets"]:
                    running += bucket["count"]
                    le = "+Inf" if bucket["le"] == "+inf" \
                        else _om_value(bucket["le"])
                    lines.append(
                        f"{om_name}_bucket"
                        f"{_om_labels(labels, extra=[('le', le)])} "
                        f"{running}")
                lines.append(f"{om_name}_count{_om_labels(labels)} "
                             f"{value['count']}")
                lines.append(f"{om_name}_sum{_om_labels(labels)} "
                             f"{_om_value(value['sum'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
