"""``repro.obs`` — observability for the symbolic simulation kernel.

Three instruments, one bundle:

* :class:`~repro.obs.tracer.Tracer` — structured spans/instants as
  JSONL and Chrome ``trace_event`` JSON (Perfetto-loadable);
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges,
  histograms and Fig.-11-style series with labels, exportable as JSON;
* :class:`~repro.obs.profiler.HotSpotProfiler` — per-event-site pops /
  merges / CPU / BDD-work attribution, rendered by ``symsim report``.

Attach a bundle via ``SimOptions(obs=Observability(...))``; every hook
in the kernel, scheduler and BDD manager is a single identity check
when observability is off.  See docs/OBSERVABILITY.md for schemas.
"""

from repro.obs.context import Observability
from repro.obs.gate import (
    GateError, GateReport, compare_trajectories, load_trajectory,
)
from repro.obs.live import (
    Heartbeat, LeaseHealth, RunHealth, assess_health, assess_lease,
    deterministic_view, read_status, scan_status, write_status,
)
from repro.obs.merge import (
    ShardWarning, merge_shards, read_jsonl_records, shard_to_chrome_events,
)
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, Series, render_openmetrics,
)
from repro.obs.profiler import HotSpotProfiler, SiteStats, event_label
from repro.obs.serve import MetricsServer, registry_from_status
from repro.obs.tracer import Tracer

__all__ = [
    "Observability", "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "Series", "HotSpotProfiler", "SiteStats", "event_label", "Tracer",
    "merge_shards", "read_jsonl_records", "shard_to_chrome_events",
    "ShardWarning",
    # live telemetry (docs/OBSERVABILITY.md, `symsim top`)
    "Heartbeat", "RunHealth", "assess_health", "deterministic_view",
    "read_status", "scan_status", "write_status",
    "LeaseHealth", "assess_lease",
    # OpenMetrics export + scrape endpoint
    "render_openmetrics", "MetricsServer", "registry_from_status",
    # perf-regression gate (`symsim bench compare`)
    "GateError", "GateReport", "compare_trajectories", "load_trajectory",
]
