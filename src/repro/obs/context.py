"""The per-run observability bundle the kernel hooks into.

:class:`Observability` groups the three instruments — tracer, metrics
registry, hot-spot profiler — behind one object that rides in
:class:`~repro.sim.kernel.SimOptions`.  Each slot is optional; the
kernel and scheduler guard every hook with an identity check, so a run
without an ``obs`` pays nothing, and a run with (say) only a profiler
pays only the profiler.

The bundle also owns the *scheduler merge* hook: the scheduler has no
business knowing about trace lanes or metric names, it just calls
``obs.on_merge(event)`` when an accumulation merge absorbs a schedule.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import HotSpotProfiler, event_label
from repro.obs.tracer import LANE_SCHED, Tracer


class Observability:
    """Tracer + metrics + profiler for one simulation run."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profiler: Optional[HotSpotProfiler] = None) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self._merge_counter = (
            metrics.counter("sim.merges",
                            "accumulation merges absorbed by the scheduler")
            if metrics is not None else None
        )

    @classmethod
    def from_flags(cls, trace_out: Optional[str] = None,
                   trace_jsonl: Optional[str] = None,
                   metrics: bool = False,
                   profile: bool = False) -> Optional["Observability"]:
        """Build a bundle from CLI-style switches (None when all off)."""
        tracer = Tracer(jsonl_path=trace_jsonl, chrome_path=trace_out) \
            if (trace_out or trace_jsonl) else None
        registry = MetricsRegistry() if metrics else None
        profiler = HotSpotProfiler() if profile else None
        if tracer is None and registry is None and profiler is None:
            return None
        return cls(tracer=tracer, metrics=registry, profiler=profiler)

    @property
    def enabled(self) -> bool:
        return (self.tracer is not None or self.metrics is not None
                or self.profiler is not None)

    def on_merge(self, event) -> None:
        """An accumulation merge absorbed a schedule of ``event``."""
        if self.profiler is not None:
            self.profiler.record_merge(event)
        if self._merge_counter is not None:
            self._merge_counter.inc()
        if self.tracer is not None:
            self.tracer.instant("merge", "sched", lane=LANE_SCHED,
                                site=event_label(event), time=event.time)

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()
