"""The perf-regression gate — ``symsim bench compare``.

Benchmark results in this repo are *trajectories*: every recorded run
appends an entry to a ``BENCH_*.json`` file (``bench_fastpath.py`` →
``BENCH_fastpath.json``, ``bench_batch.py`` → ``BENCH_batch.json``), so
a claimed speedup is a time series, not a single lucky number.  This
module makes the trajectory *binding*: ``symsim bench compare OLD.json
NEW.json --max-regress 10%`` flattens the latest entry per bench on
each side into numeric cells, pairs them up, and exits nonzero when
any cell moved the *wrong way* by more than the tolerance.  CI runs it
as the ``bench-gate`` lane so a speedup landed by one PR cannot
silently rot in the next.

Which way is "wrong" is inferred from the cell name: cells naming
rates and speedups (``*speedup*``, ``*ratio*``, ``*per_second*``, ...)
must not *fall*; cells naming costs (``*seconds*``, ``*wall*``,
``*nodes*``, ``*rss*``, ...) must not *rise*.  Cells with no
recognizable direction — and bookkeeping keys like ``recorded`` or
``floors`` — are reported as skipped rather than silently judged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError


class GateError(ReproError):
    """A trajectory file could not be loaded or compared."""


#: Entry keys that are bookkeeping, never performance cells.
_BOOKKEEPING = frozenset({
    "recorded", "bench", "gate", "floors", "effective_cores",
})

#: Substrings marking a cell where *larger is better*.
_HIGHER_IS_BETTER = (
    "speedup", "ratio", "per_second", "throughput", "rate", "hits",
)
#: Substrings marking a cell where *smaller is better*.  Checked after
#: the higher-is-better list so e.g. ``events_per_second`` never
#: matches ``second``.
_LOWER_IS_BETTER = (
    "seconds", "wall", "overhead", "nodes", "rss", "bytes", "_ms",
    "_us", "misses",
)


def direction(key: str) -> int:
    """+1 when larger is better, -1 when smaller is, 0 when unknown."""
    lowered = key.lower()
    if any(mark in lowered for mark in _HIGHER_IS_BETTER):
        return 1
    if any(mark in lowered for mark in _LOWER_IS_BETTER):
        return -1
    return 0


def load_trajectory(path: str) -> List[dict]:
    """Load one ``BENCH_*.json`` file (a JSON array of entries)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise GateError(f"cannot read trajectory {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise GateError(
            f"trajectory {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(document, list) \
            or not all(isinstance(entry, dict) for entry in document):
        raise GateError(
            f"trajectory {path!r} must be a JSON array of entries")
    if not document:
        raise GateError(f"trajectory {path!r} is empty")
    return document


def latest_cells(trajectory: List[dict]) -> Dict[str, float]:
    """Numeric cells of the latest entry per bench, flattened.

    Cell names are ``<bench>/<dotted.key>``; nested dicts flatten with
    ``.`` (``wall_seconds: {"4": ...}`` → ``batch/wall_seconds.4``).
    Later entries for the same bench win — the trajectory's newest
    measurement is the one under comparison.
    """
    latest: Dict[str, dict] = {}
    for index, entry in enumerate(trajectory):
        latest[str(entry.get("bench", f"entry{index}"))] = entry
    cells: Dict[str, float] = {}
    for bench, entry in latest.items():
        for key, value in _flatten(entry):
            cells[f"{bench}/{key}"] = value
    return cells


def _flatten(entry: dict, prefix: str = "") -> List[Tuple[str, float]]:
    leaves: List[Tuple[str, float]] = []
    for key, value in entry.items():
        if not prefix and key in _BOOKKEEPING:
            continue
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            leaves.append((name, float(value)))
        elif isinstance(value, dict):
            leaves.extend(_flatten(value, prefix=f"{name}."))
        # lists/strings are not performance cells
    return leaves


@dataclass
class CellDelta:
    """One compared cell: old vs new and the verdict."""

    cell: str
    old: float
    new: float
    #: +1 larger-is-better, -1 smaller-is-better.
    direction: int
    #: Signed relative change, ``(new - old) / old``.
    delta: float
    regressed: bool

    def describe(self) -> str:
        arrow = {1: "higher=better", -1: "lower=better"}[self.direction]
        verdict = "REGRESSED" if self.regressed else "ok"
        return (f"{self.cell:<44s} {self.old:>10.4g} -> {self.new:>10.4g} "
                f"({self.delta * 100.0:+7.1f}%, {arrow}) {verdict}")


@dataclass
class GateReport:
    """Outcome of one trajectory comparison."""

    cells: List[CellDelta] = field(default_factory=list)
    #: Cell names present on only one side, or with no inferable
    #: direction, or with a zero baseline — listed, never judged.
    skipped: List[str] = field(default_factory=list)
    max_regress: float = 0.10

    @property
    def regressions(self) -> List[CellDelta]:
        return [cell for cell in self.cells if cell.regressed]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines = [
            f"bench gate: {len(self.cells)} cells compared, "
            f"tolerance {self.max_regress * 100.0:g}%"
        ]
        lines.extend(cell.describe() for cell in self.cells)
        for reason in self.skipped:
            lines.append(f"{'(skipped)':<44s} {reason}")
        if self.passed:
            lines.append("PASS: no cell regressed beyond tolerance")
        else:
            lines.append(
                f"FAIL: {len(self.regressions)} cell(s) regressed "
                f"beyond {self.max_regress * 100.0:g}%")
        return "\n".join(lines)


def compare_cells(old: Dict[str, float], new: Dict[str, float],
                  max_regress: float = 0.10) -> GateReport:
    """Pair up cells and judge each delta against the tolerance."""
    report = GateReport(max_regress=max_regress)
    for cell in sorted(set(old) | set(new)):
        if cell not in old:
            report.skipped.append(f"{cell}: only in NEW")
            continue
        if cell not in new:
            report.skipped.append(f"{cell}: only in OLD")
            continue
        sense = direction(cell)
        if sense == 0:
            report.skipped.append(f"{cell}: no inferable direction")
            continue
        if old[cell] == 0:
            report.skipped.append(f"{cell}: zero baseline")
            continue
        delta = (new[cell] - old[cell]) / abs(old[cell])
        regressed = (-delta if sense > 0 else delta) > max_regress
        report.cells.append(CellDelta(
            cell=cell, old=old[cell], new=new[cell], direction=sense,
            delta=delta, regressed=regressed,
        ))
    return report


def compare_trajectories(old_path: str, new_path: str,
                         max_regress: float = 0.10) -> GateReport:
    """Load two trajectory files and gate NEW against OLD."""
    old = latest_cells(load_trajectory(old_path))
    new = latest_cells(load_trajectory(new_path))
    return compare_cells(old, new, max_regress=max_regress)


def parse_tolerance(text: str) -> float:
    """``"10%"`` → 0.10; ``"0.1"`` → 0.1.  Raises :class:`GateError`."""
    raw = text.strip()
    try:
        if raw.endswith("%"):
            value = float(raw[:-1]) / 100.0
        else:
            value = float(raw)
    except ValueError:
        raise GateError(f"bad tolerance {text!r} (want '10%' or '0.1')") \
            from None
    if not 0.0 <= value < 10.0:
        raise GateError(f"tolerance {text!r} out of range")
    return value
