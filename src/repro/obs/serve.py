"""``symsim serve-metrics`` — a stdlib OpenMetrics scrape endpoint.

Serves three routes from a background-threaded ``http.server``:

* ``GET /metrics``  — the OpenMetrics text exposition (Prometheus
  scrapes this; content type per the OpenMetrics spec);
* ``GET /status``   — the raw heartbeat records as a JSON array;
* ``GET /healthz``  — ``ok`` (liveness probe).

The server is *source-driven*: it holds a callable returning the
metric snapshots + status records to expose and re-evaluates it per
request, so a scrape always reflects the files on disk at scrape time
— point it at a live run's ``--metrics-out``/``--heartbeat`` files (or
a batch ``status/`` directory) and watch the run converge from your
dashboard.  No third-party dependency; this is the groundwork for the
``repro.serve`` front door on the roadmap.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable, List, Optional

from repro.obs.live import scan_status
from repro.obs.metrics import (
    MetricsRegistry, OPENMETRICS_CONTENT_TYPE, render_openmetrics,
)


def registry_from_status(records: Iterable[dict]) -> MetricsRegistry:
    """Fold heartbeat records into ``symsim.run.*`` metric families.

    Each run becomes a labeled child (``run="<name>"``), so one scrape
    of a batch status directory yields per-run progress/cost series a
    Prometheus query can aggregate or alert on.
    """
    registry = MetricsRegistry()
    info = registry.gauge("symsim.run.info",
                          "1 per known run, status as a label",
                          labels=("run", "status"))
    gauges = {
        "sim_time": registry.gauge(
            "symsim.run.sim_time", "current simulation time",
            labels=("run",)),
        "events_processed": registry.gauge(
            "symsim.run.events_processed", "kernel events processed",
            labels=("run",)),
        "events_per_second": registry.gauge(
            "symsim.run.events_per_second",
            "cumulative event rate over the run's wall clock",
            labels=("run",)),
        "live_nodes": registry.gauge(
            "symsim.run.bdd_live_nodes", "live BDD arena nodes",
            labels=("run",)),
        "rss_mb": registry.gauge(
            "symsim.run.rss_mb", "worker resident set size (MiB)",
            labels=("run",)),
        "wall_seconds": registry.gauge(
            "symsim.run.wall_seconds", "run wall-clock seconds",
            labels=("run",)),
        "eta_seconds": registry.gauge(
            "symsim.run.eta_seconds",
            "estimated seconds to the time bound", labels=("run",)),
    }
    headroom = registry.gauge(
        "symsim.run.budget_headroom",
        "fraction of a guard budget remaining",
        labels=("run", "budget"))
    for record in records:
        name = str(record.get("name", "?"))
        info.labels(run=name, status=str(record.get("status", "?"))).set(1)
        for field, gauge in gauges.items():
            value = record.get(field)
            if isinstance(value, (int, float)):
                gauge.labels(run=name).set(value)
        for budget, frac in (record.get("headroom") or {}).items():
            headroom.labels(run=name, budget=budget).set(frac)
    return registry


def build_scrape_source(
    metrics_json: Optional[str] = None,
    status_paths: Iterable[str] = (),
    registry: Optional[MetricsRegistry] = None,
) -> Callable[[], str]:
    """A callable rendering the current OpenMetrics exposition.

    Combines, in order: a live in-process ``registry`` (the embedded
    use), a saved ``--metrics-out`` JSON snapshot re-read per scrape,
    and heartbeat status files folded into ``symsim.run.*`` families.
    """
    status_paths = list(status_paths)

    def render() -> str:
        parts: List[str] = []
        if registry is not None:
            parts.append(registry.to_openmetrics())
        if metrics_json is not None:
            with open(metrics_json, "r", encoding="utf-8") as handle:
                parts.append(render_openmetrics(json.load(handle)))
        if status_paths:
            parts.append(
                registry_from_status(scan_status(status_paths))
                .to_openmetrics())
        if not parts:
            parts.append(MetricsRegistry().to_openmetrics())
        # one exposition: strip the per-part EOF, re-add one at the end
        body = "".join(part[:-len("# EOF\n")] for part in parts)
        return body + "# EOF\n"

    return render


class MetricsServer:
    """Threaded HTTP server around a scrape-source callable.

    ``port=0`` binds an ephemeral port (tests, parallel CI lanes);
    read :attr:`port` after construction.  ``start()`` serves from a
    daemon thread; ``serve_forever()`` blocks (the CLI path).
    """

    def __init__(self, source: Callable[[], str],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 — http.server API
                if self.path in ("/metrics", "/"):
                    try:
                        body = source().encode("utf-8")
                    except Exception as exc:  # surface, don't kill serve
                        self.send_error(500, explain=str(exc))
                        return
                    self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
                elif self.path == "/status":
                    body = json.dumps(server.status_records()).encode("utf-8")
                    self._reply(200, "application/json", body)
                elif self.path == "/healthz":
                    self._reply(200, "text/plain; charset=utf-8", b"ok\n")
                else:
                    self.send_error(404)

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # quiet by default
                pass

        self._source = source
        self._status_paths: List[str] = []
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    def watch_status(self, paths: Iterable[str]) -> None:
        """Also expose these heartbeat files on ``/status``."""
        self._status_paths = list(paths)

    def status_records(self) -> List[dict]:
        return scan_status(self._status_paths)

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="symsim-metrics",
            daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        if self._thread is not None:
            # shutdown() must only run against a live serve_forever loop
            # (it deadlocks otherwise), i.e. after start().
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
