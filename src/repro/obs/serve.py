"""Stdlib HTTP serving: the shared endpoint base and the
``symsim serve-metrics`` OpenMetrics scrape endpoint.

:class:`HttpEndpoint` is the one threaded-``http.server`` harness in
the package — request dispatch, reply framing (each response carries
exactly one ``Content-Type``/``Content-Length`` pair), and the shared
``GET /status`` + ``GET /healthz`` handler implementation that both
``symsim serve-metrics`` and the :mod:`repro.serve` front door expose.
Subclasses implement :meth:`HttpEndpoint.handle` for their own routes
and fall through to ``super().handle(...)`` for the common ones.

:class:`MetricsServer` serves three routes:

* ``GET /metrics``  — the OpenMetrics text exposition (Prometheus
  scrapes this; content type per the OpenMetrics spec);
* ``GET /status``   — the raw heartbeat records as a JSON array;
* ``GET /healthz``  — ``ok`` (liveness probe).

The server is *source-driven*: it holds a callable returning the
metric snapshots + status records to expose and re-evaluates it per
request, so a scrape always reflects the files on disk at scrape time
— point it at a live run's ``--metrics-out``/``--heartbeat`` files (or
a batch ``status/`` directory) and watch the run converge from your
dashboard.  No third-party dependency.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.live import scan_status
from repro.obs.metrics import (
    MetricsRegistry, OPENMETRICS_CONTENT_TYPE, render_openmetrics,
)

#: The package's two reply content types, declared once — handlers
#: never spell them inline (that is how the pre-refactor server ended
#: up with drifting duplicates of the charset suffix).
JSON_CONTENT_TYPE = "application/json; charset=utf-8"
TEXT_CONTENT_TYPE = "text/plain; charset=utf-8"

#: What a route handler returns: status code, content type, body, and
#: any extra headers.  ``None`` means "not my route" (404s at the top).
Response = Optional[Tuple[int, str, bytes, Dict[str, str]]]


class HttpEndpoint:
    """Threaded stdlib HTTP server with one shared handler core.

    ``port=0`` binds an ephemeral port (tests, parallel CI lanes);
    read :attr:`port` after construction.  ``start()`` serves from a
    daemon thread; ``serve_forever()`` blocks (the CLI paths).

    Request handling is centralized: the inner ``http.server`` handler
    only parses the request line and delegates to :meth:`handle`,
    which returns a :data:`Response`.  The base implementation serves
    the routes every endpoint in the package shares — ``/healthz``
    (liveness) and ``/status`` (heartbeat records via
    :meth:`status_records`) — so there is exactly one implementation
    of each, however many servers subclass this.
    """

    #: Thread name of the background serve loop.
    thread_name = "symsim-http"

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 — http.server API
                endpoint._dispatch(self, "GET", None)

            def do_POST(self) -> None:  # noqa: N802 — http.server API
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                endpoint._dispatch(self, "POST", body)

            def log_message(self, *args) -> None:  # quiet by default
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    # -- request plumbing ---------------------------------------------

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str,
                  body: Optional[bytes]) -> None:
        path, _, raw_query = handler.path.partition("?")
        query = {key: values[-1] for key, values
                 in urllib.parse.parse_qs(raw_query).items()}
        try:
            response = self.handle(method, path, query, body)
        except Exception as exc:  # surface, don't kill the server
            response = (500, TEXT_CONTENT_TYPE,
                        f"error: {exc}\n".encode("utf-8"), {})
        if response is None:
            handler.send_error(404)
            return
        code, ctype, payload, headers = response
        handler.send_response(code)
        handler.send_header("Content-Type", ctype)
        handler.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            handler.send_header(name, value)
        handler.end_headers()
        try:
            handler.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-reply

    def handle(self, method: str, path: str, query: Dict[str, str],
               body: Optional[bytes]) -> Response:
        """Route one request; subclasses extend and fall through here."""
        if method == "GET" and path == "/healthz":
            return 200, TEXT_CONTENT_TYPE, b"ok\n", {}
        if method == "GET" and path == "/status":
            payload = json.dumps(self.status_records()).encode("utf-8")
            return 200, JSON_CONTENT_TYPE, payload, {}
        return None

    def status_records(self) -> List[dict]:
        """Heartbeat records behind ``/status`` (subclass hook)."""
        return []

    @staticmethod
    def json_response(code: int, payload: dict,
                      headers: Optional[Dict[str, str]] = None) -> Response:
        return (code, JSON_CONTENT_TYPE,
                json.dumps(payload, sort_keys=True).encode("utf-8"),
                dict(headers or {}))

    # -- lifecycle ----------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpEndpoint":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name=self.thread_name,
            daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        if self._thread is not None:
            # shutdown() must only run against a live serve_forever loop
            # (it deadlocks otherwise), i.e. after start().
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "HttpEndpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def registry_from_status(records: Iterable[dict]) -> MetricsRegistry:
    """Fold heartbeat records into ``symsim.run.*`` metric families.

    Each run becomes a labeled child (``run="<name>"``), so one scrape
    of a batch status directory yields per-run progress/cost series a
    Prometheus query can aggregate or alert on.
    """
    registry = MetricsRegistry()
    info = registry.gauge("symsim.run.info",
                          "1 per known run, status as a label",
                          labels=("run", "status"))
    gauges = {
        "sim_time": registry.gauge(
            "symsim.run.sim_time", "current simulation time",
            labels=("run",)),
        "events_processed": registry.gauge(
            "symsim.run.events_processed", "kernel events processed",
            labels=("run",)),
        "events_per_second": registry.gauge(
            "symsim.run.events_per_second",
            "cumulative event rate over the run's wall clock",
            labels=("run",)),
        "live_nodes": registry.gauge(
            "symsim.run.bdd_live_nodes", "live BDD arena nodes",
            labels=("run",)),
        "rss_mb": registry.gauge(
            "symsim.run.rss_mb", "worker resident set size (MiB)",
            labels=("run",)),
        "wall_seconds": registry.gauge(
            "symsim.run.wall_seconds", "run wall-clock seconds",
            labels=("run",)),
        "eta_seconds": registry.gauge(
            "symsim.run.eta_seconds",
            "estimated seconds to the time bound", labels=("run",)),
    }
    headroom = registry.gauge(
        "symsim.run.budget_headroom",
        "fraction of a guard budget remaining",
        labels=("run", "budget"))
    for record in records:
        name = str(record.get("name", "?"))
        info.labels(run=name, status=str(record.get("status", "?"))).set(1)
        for field, gauge in gauges.items():
            value = record.get(field)
            if isinstance(value, (int, float)):
                gauge.labels(run=name).set(value)
        for budget, frac in (record.get("headroom") or {}).items():
            headroom.labels(run=name, budget=budget).set(frac)
    return registry


def build_scrape_source(
    metrics_json: Optional[str] = None,
    status_paths: Iterable[str] = (),
    registry: Optional[MetricsRegistry] = None,
) -> Callable[[], str]:
    """A callable rendering the current OpenMetrics exposition.

    Combines, in order: a live in-process ``registry`` (the embedded
    use), a saved ``--metrics-out`` JSON snapshot re-read per scrape,
    and heartbeat status files folded into ``symsim.run.*`` families.
    """
    status_paths = list(status_paths)

    def render() -> str:
        parts: List[str] = []
        if registry is not None:
            parts.append(registry.to_openmetrics())
        if metrics_json is not None:
            with open(metrics_json, "r", encoding="utf-8") as handle:
                parts.append(render_openmetrics(json.load(handle)))
        if status_paths:
            parts.append(
                registry_from_status(scan_status(status_paths))
                .to_openmetrics())
        if not parts:
            parts.append(MetricsRegistry().to_openmetrics())
        # one exposition: strip the per-part EOF, re-add one at the end
        body = "".join(part[:-len("# EOF\n")] for part in parts)
        return body + "# EOF\n"

    return render


class MetricsServer(HttpEndpoint):
    """Threaded HTTP server around a scrape-source callable."""

    thread_name = "symsim-metrics"

    def __init__(self, source: Callable[[], str],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__(host, port)
        self._source = source
        self._status_paths: List[str] = []

    def handle(self, method: str, path: str, query: Dict[str, str],
               body: Optional[bytes]) -> Response:
        if method == "GET" and path in ("/metrics", "/"):
            payload = self._source().encode("utf-8")
            return 200, OPENMETRICS_CONTENT_TYPE, payload, {}
        return super().handle(method, path, query, body)

    def watch_status(self, paths: Iterable[str]) -> None:
        """Also expose these heartbeat files on ``/status``."""
        self._status_paths = list(paths)

    def status_records(self) -> List[dict]:
        return scan_status(self._status_paths)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def __enter__(self) -> "MetricsServer":
        return self
