"""Structured trace emitter — JSONL stream + Chrome ``trace_event``.

The kernel emits *spans* (begin/end pairs or complete events with a
measured duration) and *instants* for the interesting moments of a
run: simulation time-steps, event pops, process resumes, NBA flushes
and accumulation merges.  The tracer renders each record twice:

* **JSONL** (``--trace-jsonl``): one self-describing object per line —
  the schema (``repro.obs.trace/1``) is grep/jq-friendly and documented
  in docs/OBSERVABILITY.md;
* **Chrome trace_event** (``--trace-out``): a ``{"traceEvents": [...]}``
  JSON document loadable in Perfetto / ``chrome://tracing``.  Spans map
  to ``B``/``E`` (open-ended) or ``X`` (complete) phases, instants to
  ``i``, counters to ``C``.

Zero overhead when off: the kernel holds ``None`` instead of a tracer
and guards every emit site with one identity check; no tracer code
runs in an un-instrumented simulation.

Timestamps are microseconds of ``time.perf_counter`` relative to
tracer construction.  The current simulation time rides along in
``args.sim_time`` so trace viewers can correlate wall-clock spans with
simulated time.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

SCHEMA = "repro.obs.trace/1"

#: Chrome trace "thread" lanes — one per concern so Perfetto renders
#: steps, event pops and scheduler activity as separate tracks.
LANE_STEP = 0
LANE_EVENT = 1
LANE_SCHED = 2


class Tracer:
    """Span/instant/counter recorder with JSONL and Chrome sinks.

    Either sink (or both) may be enabled; with neither, records are
    kept in memory (``records``) — the mode unit tests use.  When a
    file sink is active, records stream out immediately and are *not*
    retained in memory, so long runs stay flat.
    """

    def __init__(self, jsonl_path: Optional[str] = None,
                 chrome_path: Optional[str] = None,
                 keep_in_memory: Optional[bool] = None) -> None:
        self._t0 = time.perf_counter()
        self._jsonl = open(jsonl_path, "w", encoding="utf-8") \
            if jsonl_path else None
        self._chrome = open(chrome_path, "w", encoding="utf-8") \
            if chrome_path else None
        self._chrome_first = True
        if self._chrome is not None:
            self._chrome.write('{"schema": "%s", "displayTimeUnit": "ms", '
                               '"traceEvents": [' % SCHEMA)
        if keep_in_memory is None:
            keep_in_memory = self._jsonl is None and self._chrome is None
        self.records: Optional[List[dict]] = [] if keep_in_memory else None
        self._closed = False

    # -- clock ---------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since tracer construction."""
        return (time.perf_counter() - self._t0) * 1e6

    def to_us(self, perf_counter_time: float) -> float:
        """Convert a raw ``time.perf_counter()`` reading to trace µs."""
        return (perf_counter_time - self._t0) * 1e6

    # -- emission ------------------------------------------------------

    def begin(self, name: str, cat: str, lane: int = LANE_EVENT,
              **args) -> None:
        """Open a span (closed later by :meth:`end` on the same lane)."""
        self._emit("B", name, cat, self.now_us(), None, lane, args)

    def end(self, name: str, cat: str, lane: int = LANE_EVENT,
            **args) -> None:
        """Close the innermost open span on ``lane``."""
        self._emit("E", name, cat, self.now_us(), None, lane, args)

    def complete(self, name: str, cat: str, start_us: float, dur_us: float,
                 lane: int = LANE_EVENT, **args) -> None:
        """One finished span with a known duration."""
        self._emit("X", name, cat, start_us, dur_us, lane, args)

    def instant(self, name: str, cat: str, lane: int = LANE_SCHED,
                **args) -> None:
        self._emit("i", name, cat, self.now_us(), None, lane, args)

    def counter(self, name: str, lane: int = LANE_SCHED, **values) -> None:
        """Chrome counter track — stacked series in the viewer."""
        self._emit("C", name, "counter", self.now_us(), None, lane, values)

    def _emit(self, phase: str, name: str, cat: str, ts_us: float,
              dur_us: Optional[float], lane: int, args: Dict) -> None:
        if self._closed:
            return
        record = {
            "ev": {"B": "begin", "E": "end", "X": "complete", "i": "instant",
                   "C": "counter"}[phase],
            "name": name,
            "cat": cat,
            "ts_us": round(ts_us, 3),
            "lane": lane,
        }
        if dur_us is not None:
            record["dur_us"] = round(dur_us, 3)
        if args:
            record["args"] = args
        if self.records is not None:
            self.records.append(record)
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(record) + "\n")
        if self._chrome is not None:
            event = {
                "name": name, "cat": cat, "ph": phase,
                "ts": record["ts_us"], "pid": 1, "tid": lane,
            }
            if dur_us is not None:
                event["dur"] = record["dur_us"]
            if phase == "i":
                event["s"] = "t"  # instant scope: thread
            if args:
                event["args"] = args
            prefix = "" if self._chrome_first else ", "
            self._chrome_first = False
            self._chrome.write(prefix + json.dumps(event))

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        """Push buffered records to the file sinks (crash hygiene: the
        batch workers flush between runs so a dying worker leaves a
        readable shard behind)."""
        if self._jsonl is not None:
            self._jsonl.flush()
        if self._chrome is not None:
            self._chrome.flush()

    def close(self) -> None:
        """Finalize sinks; further emits are ignored."""
        if self._closed:
            return
        self._closed = True
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None
        if self._chrome is not None:
            self._chrome.write("]}\n")
            self._chrome.close()
            self._chrome = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- in-memory conversion (tests, report tooling) ------------------

    def to_chrome_events(self) -> List[dict]:
        """Render retained records as Chrome trace events."""
        if self.records is None:
            raise ValueError("tracer did not retain records in memory")
        phases = {"begin": "B", "end": "E", "complete": "X",
                  "instant": "i", "counter": "C"}
        events = []
        for record in self.records:
            event = {
                "name": record["name"], "cat": record["cat"],
                "ph": phases[record["ev"]], "ts": record["ts_us"],
                "pid": 1, "tid": record["lane"],
            }
            if "dur_us" in record:
                event["dur"] = record["dur_us"]
            if event["ph"] == "i":
                event["s"] = "t"
            if "args" in record:
                event["args"] = record["args"]
            events.append(event)
        return events
