"""``symsim top`` — a live table over heartbeat status files.

Tails one or many status files (files, directories, or globs — see
:func:`repro.obs.live.scan_status`) and renders a refreshing table of
runs: progress, event rate, BDD cost, RSS, guard headroom, ETA and
heartbeat age.  On a TTY the screen redraws in place; piped output
falls back to printing one plain table per refresh (and ``--once``
prints exactly one, which is also what scripts and tests want).

``symsim status --json`` shares the same scan and emits the raw
records instead, for scripting.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable, List, Optional

from repro.obs.live import (
    DEFAULT_STALL_AFTER, RunHealth, assess_health, scan_status,
)

#: Status → short table tag.  Anything unknown renders verbatim.
_STATUS_TAGS = {
    "running": "run",
    "ok": "ok",
    "assert_failed": "FAIL",
    "aborted": "ABRT",
    "hang": "HANG",
    "interrupted": "INT",
    "crashed": "CRSH",
}


def _fmt_count(value) -> str:
    """Humanize large counters (1234567 → '1.2M')."""
    if not isinstance(value, (int, float)):
        return "-"
    value = float(value)
    for bound, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= bound:
            return f"{value / bound:.1f}{suffix}"
    return f"{value:g}"


def _fmt_seconds(value) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


def _fmt_headroom(headroom) -> str:
    """The *tightest* remaining budget fraction, e.g. 'nodes 12%'."""
    if not isinstance(headroom, dict) or not headroom:
        return "-"
    key, frac = min(headroom.items(), key=lambda item: item[1])
    label = {"wall_seconds": "wall", "max_live_nodes": "nodes",
             "max_rss_mb": "rss", "max_events": "events"}.get(key, key)
    return f"{label} {frac * 100.0:.0f}%"


def _progress(record: dict) -> str:
    until = record.get("until")
    sim_time = record.get("sim_time", 0)
    if isinstance(until, (int, float)) and until:
        return f"{sim_time}/{until:g}"
    return f"{sim_time}"


def format_top(records: Iterable[dict],
               now_unix: Optional[float] = None,
               stall_after: float = DEFAULT_STALL_AFTER) -> str:
    """Render one refresh of the run table (pure — tests call this)."""
    health = assess_health(records, now_unix=now_unix,
                           stall_after=stall_after)
    columns = (f"{'RUN':<20s} {'STAT':<5s} {'TIME':>12s} {'EVENTS':>8s} "
               f"{'EV/S':>8s} {'NODES':>8s} {'RSS':>7s} {'HEADROOM':>11s} "
               f"{'ETA':>6s} {'AGE':>6s}")
    lines = [columns]
    running = stalled = 0
    for row in health:
        record = row.record
        tag = _STATUS_TAGS.get(row.status, row.status)
        if row.stalled:
            tag = "STALL"
            stalled += 1
        elif row.status == "running":
            running += 1
        rss = record.get("rss_mb")
        lines.append(
            f"{row.name:<20.20s} {tag:<5s} {_progress(record):>12s} "
            f"{_fmt_count(record.get('events_processed')):>8s} "
            f"{_fmt_count(record.get('events_per_second')):>8s} "
            f"{_fmt_count(record.get('live_nodes')):>8s} "
            f"{rss and f'{rss:.0f}M' or '-':>7s} "
            f"{_fmt_headroom(record.get('headroom')):>11s} "
            f"{_fmt_seconds(record.get('eta_seconds')):>6s} "
            f"{_fmt_seconds(row.age_seconds):>6s}"
        )
    if len(lines) == 1:
        lines.append("(no heartbeat records found)")
    done = len(health) - running - stalled
    lines.append(f"{len(health)} runs: {running} running, {done} done, "
                 f"{stalled} stalled (heartbeat older than "
                 f"{stall_after:g}s)")
    return "\n".join(lines)


def stalled_runs(records: Iterable[dict],
                 now_unix: Optional[float] = None,
                 stall_after: float = DEFAULT_STALL_AFTER,
                 ) -> List[RunHealth]:
    """Just the stalled rows — the batch engine's watcher helper."""
    return [row for row in assess_health(records, now_unix=now_unix,
                                         stall_after=stall_after)
            if row.stalled]


def run_top(paths: List[str], interval: float = 2.0, once: bool = False,
            stall_after: float = DEFAULT_STALL_AFTER,
            stream=None) -> int:
    """The ``symsim top`` loop; returns a process exit code.

    ``--once`` (or a non-TTY stream with ``interval <= 0``) prints a
    single table.  The loop exits 0 on Ctrl-C or when every watched
    run has reached a terminal status.
    """
    if stream is None:
        stream = sys.stdout
    is_tty = getattr(stream, "isatty", lambda: False)()
    while True:
        records = scan_status(paths)
        table = format_top(records, stall_after=stall_after)
        if is_tty and not once:
            stream.write("\x1b[2J\x1b[H")  # clear + home
        stream.write(table + "\n")
        stream.flush()
        if once:
            return 0
        health = assess_health(records, stall_after=stall_after)
        if health and all(row.status != "running" for row in health):
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
