"""Pretty-printing for saved profiles and metrics — ``symsim report``.

``symsim run ... --profile-out p.json`` (or ``--metrics-out m.json``)
persists a run's telemetry; ``symsim report p.json`` renders it for a
terminal.  The renderer sniffs the schema field, so one subcommand
covers both document kinds (and the trace JSONL header, for which it
prints summary statistics rather than the full stream).
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.obs import metrics as _metrics
from repro.obs import profiler as _profiler


def load_document(path: str) -> dict:
    """Load a saved observability document, sniffing its schema.

    Raises ``OSError`` for unreadable files and ``ValueError`` for
    files that are empty, malformed, or not observability documents —
    the CLI folds both into one clear one-line message (never a
    traceback).
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.read(1)
        handle.seek(0)
        if not first:
            raise ValueError("file is empty")
        if first == "{":
            try:
                document = json.load(handle)
            except json.JSONDecodeError:
                handle.seek(0)
            else:
                if not isinstance(document, dict):
                    raise ValueError(
                        "not an observability document (top-level JSON "
                        f"is {type(document).__name__}, expected object)")
                return document
        elif first == "[":
            raise ValueError(
                "not an observability document (top-level JSON is a "
                "list; did you point at a BENCH_*.json trajectory? "
                "use 'symsim bench compare' for those)")
        # JSONL trace stream: summarize into a synthetic document
        try:
            records = [json.loads(line) for line in handle if line.strip()]
        except json.JSONDecodeError as exc:
            raise ValueError(f"neither JSON nor JSONL: {exc}") from exc
    if not all(isinstance(record, dict) for record in records):
        raise ValueError("JSONL stream contains non-object records")
    return {"schema": "jsonl-trace", "records": records}


def format_report(document: dict, top: int = 10) -> str:
    schema = document.get("schema", "")
    if schema == _profiler.SCHEMA:
        return format_profile(document, top=top)
    if schema == _metrics.SCHEMA:
        return format_metrics(document)
    if schema == "jsonl-trace" or "records" in document:
        return format_trace_summary(document)
    if "traceEvents" in document:
        return format_trace_summary(
            {"records": [{"ev": e.get("ph"), "name": e.get("name"),
                          "cat": e.get("cat")}
                         for e in document["traceEvents"]]})
    if schema == "repro.mutate.report/1":
        return format_mutation_report(document)
    raise ValueError(f"unrecognized observability document "
                     f"(schema={schema!r})")


# ---------------------------------------------------------------------
# mutation campaign report
# ---------------------------------------------------------------------

def format_mutation_report(document: dict) -> str:
    """Render a ``repro.mutate.report/1`` campaign summary."""
    totals = document.get("totals", {})
    score = document.get("score")
    lines: List[str] = []
    lines.append(f"=== mutation campaign — top {document.get('top')} ===")
    lines.append(
        f"operators: {', '.join(document.get('operators', []))} | "
        f"modules: {', '.join(document.get('target_modules', []))} | "
        f"seed {document.get('seed')}")
    planned = totals.get("planned", 0)
    lines.append(
        f"sites: {totals.get('sites', 0)} enumerated, {planned} planned"
        + (" (max_mutants cap)" if planned < totals.get("sites", 0)
           else ""))
    score_text = f"{score:.3f}" if score is not None else "n/a"
    lines.append(
        f"score: {score_text}  "
        f"(detected {totals.get('detected', 0)} / undetected "
        f"{totals.get('undetected', 0)} / aborted "
        f"{totals.get('aborted', 0)} / invalid "
        f"{totals.get('invalid', 0)})")
    by_operator = document.get("by_operator", {})
    if by_operator:
        lines.append(f"{'operator':<10s} {'planned':>8s} {'detect':>7s} "
                     f"{'survive':>8s} {'abort':>6s} {'invalid':>8s} "
                     f"{'score':>7s}")
        for name, row in by_operator.items():
            op_planned = sum(row.get(k, 0) for k in
                             ("detected", "undetected", "aborted",
                              "invalid"))
            op_score = row.get("score")
            op_score_text = f"{op_score:7.3f}" if op_score is not None \
                else f"{'n/a':>7s}"
            lines.append(
                f"{name:<10s} {op_planned:8d} {row.get('detected', 0):7d} "
                f"{row.get('undetected', 0):8d} {row.get('aborted', 0):6d} "
                f"{row.get('invalid', 0):8d} {op_score_text}")
    variants = document.get("variants", [])
    if variants:
        lines.append("explicit variants:")
        for variant in variants:
            verified = variant.get("witness_verified")
            note = ""
            if variant.get("witness"):
                note = " — witness" + {
                    True: " verified", False: " NOT REPRODUCED",
                    None: "",
                }[verified]
            lines.append(f"  {variant['id']:<28s} "
                         f"{variant['classification']}{note}")
    survivors = document.get("survivors", [])
    if survivors:
        lines.append(f"surviving mutants ({len(survivors)} — possibly "
                     "equivalent, see docs/MUTATION.md):")
        for mutant in survivors:
            lines.append(
                f"  {mutant['id']:<28s} {mutant['module']}:"
                f"{mutant['line']}  {mutant['description']}")
    else:
        lines.append("surviving mutants: none")
    return "\n".join(lines)


# ---------------------------------------------------------------------
# profile
# ---------------------------------------------------------------------

def format_profile(document: dict, top: int = 10,
                   by: str = "cpu_seconds") -> str:
    meta = document.get("meta", {})
    totals = document.get("totals", {})
    sites = document.get("sites", [])
    ranked = sorted(sites, key=lambda s: s.get(by, 0), reverse=True)[:top]
    lines: List[str] = []
    title = meta.get("design") or meta.get("source") or "run"
    lines.append(f"=== hot-spot profile — {title} ===")
    if meta:
        bits = []
        if "sim_time" in meta:
            bits.append(f"sim time {meta['sim_time']}")
        if "events_processed" in meta:
            bits.append(f"{meta['events_processed']} events")
        if "cpu_seconds" in meta:
            bits.append(f"{meta['cpu_seconds']:.3f}s cpu")
        if bits:
            lines.append("run: " + ", ".join(bits))
    lines.append(
        f"top {len(ranked)} event sites by {by} "
        f"(of {len(sites)} sites):"
    )
    lines.append(f"{'#':>3s} {'site':<40s} {'kind':<7s} {'pops':>8s} "
                 f"{'merges':>8s} {'cpu(ms)':>9s} {'bdd-nodes':>10s}")
    for rank, site in enumerate(ranked, 1):
        lines.append(
            f"{rank:3d} {site['label']:<40.40s} {site['kind']:<7s} "
            f"{site['pops']:8d} {site['merges']:8d} "
            f"{site['cpu_seconds'] * 1e3:9.2f} {site['bdd_nodes']:10d}"
        )
    if totals:
        lines.append(
            f"totals: {totals.get('pops', 0)} pops, "
            f"{totals.get('merges', 0)} merges, "
            f"{totals.get('cpu_seconds', 0.0):.3f}s cpu, "
            f"{totals.get('bdd_nodes', 0)} bdd nodes created"
        )
    bdd = document.get("bdd") or {}
    if bdd:
        lines.append(_format_bdd_line(bdd))
    ctier = document.get("compile") or {}
    if ctier:
        lines.append(_format_compile_line(ctier))
    return "\n".join(lines)


def _format_compile_line(ctier: dict) -> str:
    hits = ctier.get("tier_hits", 0)
    misses = ctier.get("tier_misses", 0)
    total = hits + misses
    rate = f"{100.0 * hits / total:.1f}%" if total else "n/a"
    return (
        f"compile: {ctier.get('blocks', 0)} blocks covering "
        f"{ctier.get('fused_instructions', 0)} instructions, "
        f"fast-path hit-rate {rate} ({hits}/{total}), "
        f"build {ctier.get('build_seconds', 0.0):.3f}s"
    )


def _format_bdd_line(bdd: dict) -> str:
    ite_h, ite_m = bdd.get("ite_hits", 0), bdd.get("ite_misses", 0)
    not_h, not_m = bdd.get("not_hits", 0), bdd.get("not_misses", 0)
    apply_h = bdd.get("apply_hits", 0)
    apply_m = bdd.get("apply_misses", 0)

    def rate(hits: int, misses: int) -> str:
        total = hits + misses
        return f"{100.0 * hits / total:.1f}%" if total else "n/a"

    line = (
        f"bdd: ite-cache hit-rate {rate(ite_h, ite_m)} "
        f"({ite_h}/{ite_h + ite_m}), apply-cache {rate(apply_h, apply_m)}, "
        f"not-cache {rate(not_h, not_m)}, "
        f"nodes={bdd.get('nodes', 0)} (peak {bdd.get('peak_nodes', 0)}), "
        f"vars={bdd.get('var_count', 0)}"
    )
    fp_word = bdd.get("fastpath_word_ops", 0)
    fp_bits = bdd.get("fastpath_bit_shortcuts", 0)
    fp_sym = bdd.get("fastpath_symbolic_ops", 0)
    if fp_word or fp_bits or fp_sym:
        total = fp_word + fp_sym
        ratio = f"{100.0 * fp_word / total:.1f}%" if total else "n/a"
        line += (
            f"\nfastpath: {fp_word} word-level ops ({ratio} concrete), "
            f"{fp_bits} per-bit shortcuts, {fp_sym} symbolic fallbacks"
        )
    return line


# ---------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------

def format_metrics(document: dict) -> str:
    lines = ["=== metrics snapshot ==="]
    for metric in document.get("metrics", []):
        labels = metric.get("labels") or {}
        label_text = ("{" + ", ".join(f"{k}={v}"
                                      for k, v in sorted(labels.items()))
                      + "}") if labels else ""
        name = f"{metric['name']}{label_text}"
        value = metric["value"]
        kind = metric["type"]
        if kind in ("counter", "gauge"):
            lines.append(f"{name:<48s} {kind:<9s} {value:g}")
        elif kind == "histogram":
            lines.append(
                f"{name:<48s} histogram count={value['count']} "
                f"mean={value['mean']:.3g} min={value['min']} "
                f"max={value['max']}"
            )
        elif kind == "series":
            tail = value[-1] if value else None
            lines.append(
                f"{name:<48s} series    {len(value)} samples"
                + (f", last=({tail[0]:g}, {tail[1]:g})" if tail else "")
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------
# trace summary
# ---------------------------------------------------------------------

def format_trace_summary(document: dict) -> str:
    records = document.get("records", [])
    by_cat: dict = {}
    for record in records:
        key = (record.get("cat", "?"), record.get("ev", record.get("ph", "?")))
        by_cat[key] = by_cat.get(key, 0) + 1
    lines = [f"=== trace summary — {len(records)} records ==="]
    for (cat, ev), count in sorted(by_cat.items()):
        lines.append(f"{cat:<12s} {ev:<9s} {count:8d}")
    return "\n".join(lines)


def render_file(path: str, top: int = 10) -> str:
    """Load + format in one call (the ``symsim report`` entry point)."""
    return format_report(load_document(path), top=top)
