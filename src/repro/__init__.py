"""Symbolic RTL simulation of behavioral Verilog — DAC 2001 reproduction.

This package reimplements Kölbl, Kukula & Damiano, *"Symbolic RTL
Simulation"* (DAC 2001): an event-driven simulator that executes the
full behavioral Verilog subset — delays, event controls, zero-delay
loops, non-synthesizable testbench code — over *symbolic* four-valued
data represented with BDDs.  One run covers ``2^n`` input patterns at
once; ``$random`` injects fresh symbolic variables anywhere in the
code; *event accumulation* merges re-converging execution paths to
avoid exponential event multiplication; ``$error``/``$assert``
violations yield concrete error traces that can be resimulated.

Quick start::

    import repro

    sim = repro.SymbolicSimulator.from_source('''
        module tb;
          reg [1:0] a; reg [3:0] b;
          initial begin
            a = $random;               // symbolic 2-bit value
            if (a == 0) b = $random;   // both branches simulated
            else        b = 1;
            $assert(b != 9);
          end
        endmodule
    ''')
    result = sim.run()
    for violation in result.violations:
        print(violation)                     # concrete error trace
        sim.resimulate(violation)            # conventional replay
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bdd import BddManager
from repro.compile import compile_design, Program
from repro.compile.instructions import AccumulationMode
from repro.errors import (
    AssertionViolation, BddError, CheckpointError, CompileError,
    ElaborationError, FourValueError, ReproError, ResimulationError,
    SimulationAborted, SimulationError, SimulationHang, SymbolicDelayError,
    VerilogSyntaxError,
)
from repro.fourval import FourVec
from repro.frontend import elaborate, parse_source
from repro.guard import (
    BudgetReport, Fault, FaultInjector, ResourceBudgets, load_checkpoint,
    save_checkpoint,
)
from repro.obs import (
    HotSpotProfiler, MetricsRegistry, Observability, Tracer,
)
from repro.sim import (
    ErrorTrace, Kernel, SimOptions, SimResult, Violation,
)
from repro.sim.resim import resimulate, resimulate_violation

__version__ = "1.0.0"

__all__ = [
    "SymbolicSimulator", "SimOptions", "SimResult", "AccumulationMode",
    "FourVec", "BddManager", "ErrorTrace", "Violation",
    "Observability", "MetricsRegistry", "Tracer", "HotSpotProfiler",
    "ResourceBudgets", "BudgetReport", "Fault", "FaultInjector",
    "save_checkpoint", "load_checkpoint",
    "parse_source", "elaborate", "compile_design", "resimulate",
    "resimulate_violation",
    "ReproError", "VerilogSyntaxError", "ElaborationError", "CompileError",
    "SimulationError", "SimulationHang", "SimulationAborted",
    "SymbolicDelayError", "CheckpointError",
    "AssertionViolation", "ResimulationError", "BddError", "FourValueError",
]


class SymbolicSimulator:
    """High-level façade: source text in, symbolic simulation out.

    Wraps the full pipeline (preprocess → parse → elaborate → compile →
    kernel) and keeps the compiled :class:`Program` so error traces can
    be resimulated against the identical design.
    """

    def __init__(self, program: Program,
                 options: Optional[SimOptions] = None) -> None:
        self.program = program
        self.options = options or SimOptions()
        self.kernel = Kernel(program, options=self.options)

    # ------------------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source: str,
        top: Optional[str] = None,
        options: Optional[SimOptions] = None,
        defines: Optional[Dict[str, str]] = None,
    ) -> "SymbolicSimulator":
        """Build a simulator from Verilog source text."""
        modules = parse_source(source, defines=defines)
        design = elaborate(modules, top=top)
        program = compile_design(design)
        return cls(program, options=options)

    @classmethod
    def from_file(
        cls,
        path: str,
        top: Optional[str] = None,
        options: Optional[SimOptions] = None,
        defines: Optional[Dict[str, str]] = None,
    ) -> "SymbolicSimulator":
        """Build a simulator from a Verilog file on disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_source(handle.read(), top=top, options=options,
                                   defines=defines)

    @classmethod
    def resume_source(
        cls,
        source: str,
        checkpoint_path: str,
        top: Optional[str] = None,
        options: Optional[SimOptions] = None,
        defines: Optional[Dict[str, str]] = None,
    ) -> "SymbolicSimulator":
        """Rebuild a checkpointed simulation from the same source text.

        The source is recompiled and verified against the checkpoint's
        design fingerprint; the returned simulator continues exactly
        where the checkpointed run stopped (see ``docs/ROBUSTNESS.md``).
        With ``options=None`` the checkpoint's semantic options are
        reused; a given ``options`` must match them semantically but may
        change operational knobs (GC, observability, budgets).
        """
        modules = parse_source(source, defines=defines)
        design = elaborate(modules, top=top)
        program = compile_design(design)
        kernel = load_checkpoint(program, checkpoint_path, options=options)
        sim = cls.__new__(cls)
        sim.program = program
        sim.options = kernel.options
        sim.kernel = kernel
        return sim

    @classmethod
    def resume_file(
        cls,
        path: str,
        checkpoint_path: str,
        top: Optional[str] = None,
        options: Optional[SimOptions] = None,
        defines: Optional[Dict[str, str]] = None,
    ) -> "SymbolicSimulator":
        """Rebuild a checkpointed simulation from a Verilog file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.resume_source(handle.read(), checkpoint_path, top=top,
                                     options=options, defines=defines)

    # ------------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> SimResult:
        """Run (or continue) the symbolic simulation."""
        return self.kernel.run(until=until)

    def value(self, name: str) -> FourVec:
        """Current symbolic value of a net by full hierarchical name."""
        return self.kernel.state.value(name)

    @property
    def mgr(self) -> BddManager:
        return self.kernel.mgr

    def resimulate(
        self,
        violation_or_trace,
        until: Optional[int] = None,
        expect_violation: bool = True,
    ) -> SimResult:
        """Concrete replay of a violation / error trace on this design."""
        trace = (
            violation_or_trace.trace
            if isinstance(violation_or_trace, Violation)
            else violation_or_trace
        )
        return resimulate(self.program, trace,
                          options=SimOptions(
                              stop_on_violation=self.options.stop_on_violation
                          ),
                          until=until, expect_violation=expect_violation)
