"""Symbolic RTL simulation of behavioral Verilog — DAC 2001 reproduction.

This package reimplements Kölbl, Kukula & Damiano, *"Symbolic RTL
Simulation"* (DAC 2001): an event-driven simulator that executes the
full behavioral Verilog subset — delays, event controls, zero-delay
loops, non-synthesizable testbench code — over *symbolic* four-valued
data represented with BDDs.  One run covers ``2^n`` input patterns at
once; ``$random`` injects fresh symbolic variables anywhere in the
code; *event accumulation* merges re-converging execution paths to
avoid exponential event multiplication; ``$error``/``$assert``
violations yield concrete error traces that can be resimulated.

Quick start::

    import repro

    sim = repro.open_sim('''
        module tb;
          reg [1:0] a; reg [3:0] b;
          initial begin
            a = $random;               // symbolic 2-bit value
            if (a == 0) b = $random;   // both branches simulated
            else        b = 1;
            $assert(b != 9);
          end
        endmodule
    ''')
    result = sim.run()
    assert result.status is repro.SimStatus.ASSERT_FAILED
    for violation in result.violations:
        print(violation)                     # concrete error trace
        sim.resimulate(violation)            # conventional replay

Many runs at once go through :mod:`repro.batch`: describe each as a
:class:`RunRequest` and fan them across a process pool with
:func:`run_batch` (see docs/BATCH.md).

The supported surface is ``repro.__all__``; every exception the
package raises inherits :class:`repro.errors.ReproError`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import api, errors
from repro.batch import (
    BatchResult, RetryPolicy, RunOutcome, RunRequest, load_manifest,
    run_batch,
)
from repro.bdd import BddManager
from repro.compile import compile_design, Program
from repro.compile.instructions import AccumulationMode
from repro.errors import (
    AssertionViolation, BatchError, BddError, CheckpointError, CompileError,
    ElaborationError, FourValueError, MutationError, QuarantinedRunError,
    ReproError, RequestError, ResimulationError, SimulationAborted,
    SimulationError, SimulationHang, SymbolicDelayError, VerilogSyntaxError,
)
from repro.fourval import FourVec
from repro.frontend import elaborate, parse_source
from repro.guard import (
    BudgetReport, Fault, FaultInjector, ResourceBudgets, load_checkpoint,
    save_checkpoint,
)
from repro.mutate import (
    CampaignConfig, CampaignReport, MutationPlan, build_plan, run_campaign,
)
from repro.obs import (
    HotSpotProfiler, MetricsRegistry, Observability, Tracer,
)
from repro.serve import ServeApp, ServeConfig, TenantQuota, serve_app
from repro.sim import (
    ErrorTrace, Kernel, SimOptions, SimResult, SimStatus, Violation,
)
from repro.sim.resim import resimulate, resimulate_violation

__version__ = "1.1.0"

#: The supported public surface.  Anything importable but absent here
#: is an implementation detail and may change without notice.
__all__ = [
    # entry points
    "open_sim", "SymbolicSimulator",
    # unified request/options schema (`api` is the module)
    "api",
    # batch engine (durable: leases, retries, quarantine, resume)
    "RunRequest", "RunOutcome", "BatchResult", "run_batch", "load_manifest",
    "RetryPolicy",
    # serving (simulation-as-a-service front door)
    "ServeApp", "ServeConfig", "TenantQuota", "serve_app",
    # mutation campaigns
    "CampaignConfig", "CampaignReport", "MutationPlan", "build_plan",
    "run_campaign",
    # core types
    "SimOptions", "SimResult", "SimStatus", "AccumulationMode",
    "FourVec", "BddManager", "ErrorTrace", "Violation",
    # observability
    "Observability", "MetricsRegistry", "Tracer", "HotSpotProfiler",
    # robustness
    "ResourceBudgets", "BudgetReport", "Fault", "FaultInjector",
    "save_checkpoint", "load_checkpoint",
    # pipeline pieces
    "parse_source", "elaborate", "compile_design", "resimulate",
    "resimulate_violation",
    # exceptions (all inherit ReproError; `errors` is the module)
    "errors",
    "ReproError", "VerilogSyntaxError", "ElaborationError", "CompileError",
    "SimulationError", "SimulationHang", "SimulationAborted",
    "SymbolicDelayError", "CheckpointError", "BatchError", "MutationError",
    "QuarantinedRunError", "RequestError",
    "AssertionViolation", "ResimulationError", "BddError", "FourValueError",
]


def open_sim(
    source: Optional[str] = None,
    *,
    path: Optional[str] = None,
    top: Optional[str] = None,
    options: Optional[SimOptions] = None,
    defines: Optional[Dict[str, str]] = None,
    resume: Optional[str] = None,
) -> "SymbolicSimulator":
    """The one entry point: source in, ready-to-run simulator out.

    Give exactly one of ``source`` (Verilog text, also the positional
    argument) or ``path`` (a file on disk).  ``resume`` names a
    checkpoint file: the design is recompiled, verified against the
    checkpoint's structural fingerprint, and the returned simulator
    continues exactly where the checkpointed run stopped — with
    ``options=None`` the checkpoint's semantic options are reused; a
    given ``options`` must match them semantically but may change
    operational knobs (GC, observability, budgets).
    """
    if (source is None) == (path is None):
        raise CompileError("open_sim takes exactly one of source= or path=")
    if path is not None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    modules = parse_source(source, defines=defines)
    design = elaborate(modules, top=top)
    program = compile_design(design)
    if resume is None:
        return SymbolicSimulator(program, options=options)
    kernel = load_checkpoint(program, resume, options=options)
    sim = SymbolicSimulator.__new__(SymbolicSimulator)
    sim.program = program
    sim.options = kernel.options
    sim.kernel = kernel
    return sim


class SymbolicSimulator:
    """High-level façade: source text in, symbolic simulation out.

    Wraps the full pipeline (preprocess → parse → elaborate → compile →
    kernel) and keeps the compiled :class:`Program` so error traces can
    be resimulated against the identical design.  Build instances with
    :func:`open_sim` (or :meth:`repro.batch.RunRequest.open`).
    """

    def __init__(self, program: Program,
                 options: Optional[SimOptions] = None) -> None:
        self.program = program
        self.options = options or SimOptions()
        self.kernel = Kernel(program, options=self.options)

    def run(self, until: Optional[int] = None) -> SimResult:
        """Run (or continue) the symbolic simulation."""
        return self.kernel.run(until=until)

    def value(self, name: str) -> FourVec:
        """Current symbolic value of a net by full hierarchical name."""
        return self.kernel.state.value(name)

    @property
    def mgr(self) -> BddManager:
        return self.kernel.mgr

    def resimulate(
        self,
        violation_or_trace,
        until: Optional[int] = None,
        expect_violation: bool = True,
    ) -> SimResult:
        """Concrete replay of a violation / error trace on this design."""
        trace = (
            violation_or_trace.trace
            if isinstance(violation_or_trace, Violation)
            else violation_or_trace
        )
        return resimulate(self.program, trace,
                          options=SimOptions(
                              stop_on_violation=self.options.stop_on_violation
                          ),
                          until=until, expect_violation=expect_violation)
