"""IEEE-1364 operator semantics over :class:`FourVec`.

Every function here is pure: it takes vectors, returns a new vector (or
a raw BDD for predicates) and never mutates its inputs.  X/Z handling
follows the standard's pessimism rules:

* bitwise ops use the 4-valued truth tables (``0 & x = 0``,
  ``1 & x = x``, Z reads as X),
* arithmetic and relational ops produce all-X / X when any operand bit
  can be X or Z (guarded per-condition, not globally: a vector that is
  X/Z only under BDD condition ``c`` poisons the result only under
  ``c``),
* ``===``/``!==`` compare literally and always produce a known bit,
* the conditional operator merges branches bitwise when the selector
  is X.

Binary operators require pre-sized equal-width operands; the expression
compiler (``repro.compile.expr``) implements the 1364 context-sizing
rules and calls :meth:`FourVec.resize` before dispatching here.

Two-tier evaluation (docs/PERFORMANCE.md)
-----------------------------------------

Most of a real RTL run is concrete — testbench counters, literals,
resolved nets — so every operator first consults the vectors' cached
concrete summaries (:meth:`FourVec.concrete_summary`):

* **word level**: both operands fully concrete-known → one pure-int
  computation, no BDD calls at all (``mgr._fp_word``);
* **per-bit short-circuits**: mixed operands → constant bits collapse
  without touching the manager (``0 & x = 0``, ``1 | x = 1``,
  known shift amounts; ``mgr._fp_bits``);
* **symbolic fallback**: the original per-bit BDD path
  (``mgr._fp_sym``).

Every fast-path result is bit-identical to the fallback path: constant
rails short-circuit to the same terminal nodes inside the manager, so
the shortcuts below are algebraic reductions of the generic
constructions, not approximations.  Setting ``mgr.fastpath = False``
(``SimOptions.no_fastpath`` / ``--no-fastpath``) disables both fast
tiers for differential testing.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.bdd import FALSE, TRUE, BddManager
from repro.errors import FourValueError
from repro.fourval.vector import BIT_0, BIT_1, BIT_X, BitPair, FourVec


def _check_same_width(x: FourVec, y: FourVec, op: str) -> None:
    if x.width != y.width:
        raise FourValueError(
            f"{op}: operand width mismatch {x.width} vs {y.width} "
            "(the expression compiler should have resized)"
        )


def _fast1(x: FourVec) -> Optional[int]:
    """``x`` as a raw unsigned int when the word-level tier may run."""
    if not x.mgr.fastpath:
        return None
    return x.known_int()


def _fast2(x: FourVec, y: FourVec) -> Optional[Tuple[int, int]]:
    """Both operands as raw unsigned ints, or None (symbolic/disabled)."""
    if not x.mgr.fastpath:
        return None
    vx = x.known_int()
    if vx is None:
        return None
    vy = y.known_int()
    if vy is None:
        return None
    return vx, vy


def _to_signed(value: int, width: int) -> int:
    """Reinterpret a raw unsigned word as two's complement."""
    if value >> (width - 1):
        return value - (1 << width)
    return value


def _known0(mgr: BddManager, bit: BitPair) -> int:
    """BDD: this bit is a known 0."""
    a, b = bit
    return mgr.nor(a, b)


def _known1(mgr: BddManager, bit: BitPair) -> int:
    """BDD: this bit is a known 1."""
    a, b = bit
    return mgr.and_(a, mgr.not_(b))


def _make_tristate(mgr: BddManager, is1: int, is0: int) -> BitPair:
    """Encode a 3-valued bit from disjoint is-1 / is-0 conditions.

    Anywhere neither holds, the bit is X.
    """
    b = mgr.nor(is1, is0)
    a = mgr.or_(is1, b)
    return a, b


# ----------------------------------------------------------------------
# bitwise operators
# ----------------------------------------------------------------------


def bitwise_not(x: FourVec) -> FourVec:
    """``~x`` — 4-valued inversion (X/Z stay X)."""
    mgr = x.mgr
    value = _fast1(x)
    if value is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, ~value, x.width)
    if mgr.fastpath:
        mgr._fp_sym += 1
    bits = [(mgr.or_(b, mgr.not_(a)), b) for a, b in x.bits]
    # Z must become X, not Z: force the a-rail high wherever b is set —
    # done above — and normalize b unchanged (Z and X share b=1; with
    # a=1 both map to X).
    return FourVec(mgr, bits)


def _bitwise_binary(
    x: FourVec,
    y: FourVec,
    bit_op: Callable[[BddManager, BitPair, BitPair], BitPair],
    name: str,
) -> FourVec:
    _check_same_width(x, y, name)
    mgr = x.mgr
    return FourVec(mgr, [bit_op(mgr, bx, by) for bx, by in zip(x.bits, y.bits)])


def _and_bit(mgr: BddManager, bx: BitPair, by: BitPair) -> BitPair:
    is0 = mgr.or_(_known0(mgr, bx), _known0(mgr, by))
    is1 = mgr.and_(_known1(mgr, bx), _known1(mgr, by))
    return _make_tristate(mgr, is1, is0)


def _or_bit(mgr: BddManager, bx: BitPair, by: BitPair) -> BitPair:
    is1 = mgr.or_(_known1(mgr, bx), _known1(mgr, by))
    is0 = mgr.and_(_known0(mgr, bx), _known0(mgr, by))
    return _make_tristate(mgr, is1, is0)


def _xor_bit(mgr: BddManager, bx: BitPair, by: BitPair) -> BitPair:
    known = mgr.nor(bx[1], by[1])
    value = mgr.xor(bx[0], by[0])
    is1 = mgr.and_(known, value)
    is0 = mgr.and_(known, mgr.not_(value))
    return _make_tristate(mgr, is1, is0)


def bitwise_and(x: FourVec, y: FourVec) -> FourVec:
    """``x & y``."""
    _check_same_width(x, y, "&")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, vals[0] & vals[1], x.width)
    if not mgr.fastpath:
        return _bitwise_binary(x, y, _and_bit, "&")
    mgr._fp_sym += 1
    # Mixed operands: constant-cofactor short-circuits.  Each branch is
    # the algebraic reduction of _and_bit for that constant input, so
    # the rails are identical BDD nodes.
    bits: List[BitPair] = []
    shortcuts = 0
    for bx, by in zip(x.bits, y.bits):
        if bx == BIT_0 or by == BIT_0:
            bits.append(BIT_0)
            shortcuts += 1
        elif bx == BIT_1 and by[1] == FALSE:
            bits.append(by)
            shortcuts += 1
        elif by == BIT_1 and bx[1] == FALSE:
            bits.append(bx)
            shortcuts += 1
        else:
            bits.append(_and_bit(mgr, bx, by))
    mgr._fp_bits += shortcuts
    return FourVec(mgr, bits)


def bitwise_or(x: FourVec, y: FourVec) -> FourVec:
    """``x | y``."""
    _check_same_width(x, y, "|")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, vals[0] | vals[1], x.width)
    if not mgr.fastpath:
        return _bitwise_binary(x, y, _or_bit, "|")
    mgr._fp_sym += 1
    bits: List[BitPair] = []
    shortcuts = 0
    for bx, by in zip(x.bits, y.bits):
        if bx == BIT_1 or by == BIT_1:
            bits.append(BIT_1)
            shortcuts += 1
        elif bx == BIT_0 and by[1] == FALSE:
            bits.append(by)
            shortcuts += 1
        elif by == BIT_0 and bx[1] == FALSE:
            bits.append(bx)
            shortcuts += 1
        else:
            bits.append(_or_bit(mgr, bx, by))
    mgr._fp_bits += shortcuts
    return FourVec(mgr, bits)


def bitwise_xor(x: FourVec, y: FourVec) -> FourVec:
    """``x ^ y``."""
    _check_same_width(x, y, "^")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, vals[0] ^ vals[1], x.width)
    if not mgr.fastpath:
        return _bitwise_binary(x, y, _xor_bit, "^")
    mgr._fp_sym += 1
    bits: List[BitPair] = []
    shortcuts = 0
    for bx, by in zip(x.bits, y.bits):
        if bx == BIT_0 and by[1] == FALSE:
            bits.append(by)
            shortcuts += 1
        elif by == BIT_0 and bx[1] == FALSE:
            bits.append(bx)
            shortcuts += 1
        elif bx == BIT_1 and by[1] == FALSE:
            bits.append((mgr.not_(by[0]), FALSE))
            shortcuts += 1
        elif by == BIT_1 and bx[1] == FALSE:
            bits.append((mgr.not_(bx[0]), FALSE))
            shortcuts += 1
        else:
            bits.append(_xor_bit(mgr, bx, by))
    mgr._fp_bits += shortcuts
    return FourVec(mgr, bits)


def bitwise_xnor(x: FourVec, y: FourVec) -> FourVec:
    """``x ~^ y``."""
    return bitwise_not(bitwise_xor(x, y))


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------


def reduce_and(x: FourVec) -> FourVec:
    """``&x`` — 1 iff all bits known 1, 0 if any bit known 0, else X."""
    mgr = x.mgr
    value = _fast1(x)
    if value is not None:
        mgr._fp_word += 1
        return FourVec.from_int(
            mgr, 1 if value == (1 << x.width) - 1 else 0, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    is1 = mgr.and_all(_known1(mgr, bit) for bit in x.bits)
    is0 = mgr.or_all(_known0(mgr, bit) for bit in x.bits)
    return FourVec(mgr, [_make_tristate(mgr, is1, is0)])


def reduce_or(x: FourVec) -> FourVec:
    """``|x``."""
    mgr = x.mgr
    value = _fast1(x)
    if value is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, 1 if value else 0, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    is1 = mgr.or_all(_known1(mgr, bit) for bit in x.bits)
    is0 = mgr.and_all(_known0(mgr, bit) for bit in x.bits)
    return FourVec(mgr, [_make_tristate(mgr, is1, is0)])


def reduce_xor(x: FourVec) -> FourVec:
    """``^x`` — X if any bit is X/Z, else parity."""
    mgr = x.mgr
    value = _fast1(x)
    if value is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, bin(value).count("1") & 1, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    any_xz = x.has_xz()
    parity = FALSE
    for a, _ in x.bits:
        parity = mgr.xor(parity, a)
    is1 = mgr.and_(mgr.not_(any_xz), parity)
    is0 = mgr.and_(mgr.not_(any_xz), mgr.not_(parity))
    return FourVec(mgr, [_make_tristate(mgr, is1, is0)])


def reduce_nand(x: FourVec) -> FourVec:
    """``~&x``."""
    return bitwise_not(reduce_and(x))


def reduce_nor(x: FourVec) -> FourVec:
    """``~|x``."""
    return bitwise_not(reduce_or(x))


def reduce_xnor(x: FourVec) -> FourVec:
    """``~^x``."""
    return bitwise_not(reduce_xor(x))


# ----------------------------------------------------------------------
# logical operators (3-valued truth)
# ----------------------------------------------------------------------


def _truth_conditions(x: FourVec) -> Tuple[int, int]:
    """Return BDDs (is-true, is-false) for a value used as a condition.

    True: some bit is a known 1.  False: every bit is a known 0.
    Anything else is unknown.
    """
    mgr = x.mgr
    is_true = x.truthy()
    is_false = mgr.and_all(_known0(mgr, bit) for bit in x.bits)
    return is_true, is_false


def logical_not(x: FourVec) -> FourVec:
    """``!x``."""
    mgr = x.mgr
    value = _fast1(x)
    if value is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, 0 if value else 1, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    is_true, is_false = _truth_conditions(x)
    return FourVec(mgr, [_make_tristate(mgr, is_false, is_true)])


def logical_and(x: FourVec, y: FourVec) -> FourVec:
    """``x && y`` (short-circuit pessimism per 1364)."""
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, 1 if vals[0] and vals[1] else 0, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    tx, fx = _truth_conditions(x)
    ty, fy = _truth_conditions(y)
    is1 = mgr.and_(tx, ty)
    is0 = mgr.or_(fx, fy)
    return FourVec(mgr, [_make_tristate(mgr, is1, is0)])


def logical_or(x: FourVec, y: FourVec) -> FourVec:
    """``x || y``."""
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, 1 if vals[0] or vals[1] else 0, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    tx, fx = _truth_conditions(x)
    ty, fy = _truth_conditions(y)
    is1 = mgr.or_(tx, ty)
    is0 = mgr.and_(fx, fy)
    return FourVec(mgr, [_make_tristate(mgr, is1, is0)])


# ----------------------------------------------------------------------
# equality / relational
# ----------------------------------------------------------------------


def equal(x: FourVec, y: FourVec) -> FourVec:
    """``x == y`` — X when the comparison cannot be decided."""
    _check_same_width(x, y, "==")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, 1 if vals[0] == vals[1] else 0, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    definite_diff = FALSE
    all_known_equal = TRUE
    for bx, by in zip(x.bits, y.bits):
        both_known = mgr.nor(bx[1], by[1])
        diff = mgr.xor(bx[0], by[0])
        definite_diff = mgr.or_(definite_diff, mgr.and_(both_known, diff))
        all_known_equal = mgr.and_(
            all_known_equal, mgr.and_(both_known, mgr.not_(diff))
        )
    return FourVec(mgr, [_make_tristate(mgr, all_known_equal, definite_diff)])


def not_equal(x: FourVec, y: FourVec) -> FourVec:
    """``x != y``."""
    return logical_not(equal(x, y))


def case_equal(x: FourVec, y: FourVec) -> FourVec:
    """``x === y`` — literal 4-valued match, always a known result."""
    _check_same_width(x, y, "===")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, 1 if vals[0] == vals[1] else 0, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    match = TRUE
    for bx, by in zip(x.bits, y.bits):
        match = mgr.and_(
            match, mgr.and_(mgr.xnor(bx[0], by[0]), mgr.xnor(bx[1], by[1]))
        )
    return FourVec(mgr, [(match, FALSE)])


def case_not_equal(x: FourVec, y: FourVec) -> FourVec:
    """``x !== y``."""
    mgr = x.mgr
    match = case_equal(x, y).bits[0][0]
    return FourVec(mgr, [(mgr.not_(match), FALSE)])


def casez_match(expr: FourVec, item: FourVec) -> int:
    """BDD: ``casez`` item match (Z is a wildcard on either side)."""
    return _wildcard_match(expr, item, z_wild=True, x_wild=False)


def casex_match(expr: FourVec, item: FourVec) -> int:
    """BDD: ``casex`` item match (X and Z are wildcards on either side)."""
    return _wildcard_match(expr, item, z_wild=True, x_wild=True)


def _wildcard_match(
    expr: FourVec, item: FourVec, z_wild: bool, x_wild: bool
) -> int:
    _check_same_width(expr, item, "case-match")
    mgr = expr.mgr
    vals = _fast2(expr, item)
    if vals is not None:
        # Fully-known operands contain no Z/X, so no wildcard can fire.
        mgr._fp_word += 1
        return TRUE if vals[0] == vals[1] else FALSE
    if mgr.fastpath:
        mgr._fp_sym += 1
    match = TRUE
    for be, bi in zip(expr.bits, item.bits):
        if x_wild:
            wild = mgr.or_(be[1], bi[1])
        elif z_wild:
            is_z_e = mgr.and_(mgr.not_(be[0]), be[1])
            is_z_i = mgr.and_(mgr.not_(bi[0]), bi[1])
            wild = mgr.or_(is_z_e, is_z_i)
        else:
            wild = FALSE
        bits_same = mgr.and_(mgr.xnor(be[0], bi[0]), mgr.xnor(be[1], bi[1]))
        match = mgr.and_(match, mgr.or_(wild, bits_same))
    return match


def _unsigned_less_than(x: FourVec, y: FourVec) -> int:
    """BDD: x < y on the a-rails (caller handles X/Z poisoning)."""
    mgr = x.mgr
    lt = FALSE
    eq_above = TRUE
    for bx, by in zip(reversed(x.bits), reversed(y.bits)):
        here = mgr.and_(mgr.not_(bx[0]), by[0])
        lt = mgr.or_(lt, mgr.and_(eq_above, here))
        eq_above = mgr.and_(eq_above, mgr.xnor(bx[0], by[0]))
    return lt


def _signed_flip(x: FourVec) -> FourVec:
    """Invert the sign bit so unsigned compare implements signed compare."""
    mgr = x.mgr
    a, b = x.bits[-1]
    return FourVec(mgr, x.bits[:-1] + ((mgr.not_(a), b),), x.signed)


def less_than(x: FourVec, y: FourVec) -> FourVec:
    """``x < y`` — signed iff both operands are signed (1364 rule)."""
    _check_same_width(x, y, "<")
    mgr = x.mgr
    signed = x.signed and y.signed
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        vx, vy = vals
        if signed:
            vx = _to_signed(vx, x.width)
            vy = _to_signed(vy, y.width)
        return FourVec.from_int(mgr, 1 if vx < vy else 0, 1)
    if mgr.fastpath:
        mgr._fp_sym += 1
    if signed:
        x, y = _signed_flip(x), _signed_flip(y)
    known = mgr.and_(x.known(), y.known())
    lt = _unsigned_less_than(x, y)
    is1 = mgr.and_(known, lt)
    is0 = mgr.and_(known, mgr.not_(lt))
    return FourVec(mgr, [_make_tristate(mgr, is1, is0)])


def greater_than(x: FourVec, y: FourVec) -> FourVec:
    """``x > y``."""
    return less_than(y, x)


def less_equal(x: FourVec, y: FourVec) -> FourVec:
    """``x <= y``."""
    return logical_not(less_than(y, x))


def greater_equal(x: FourVec, y: FourVec) -> FourVec:
    """``x >= y``."""
    return logical_not(less_than(x, y))


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------


def _poisoned(mgr: BddManager, xz: int, a_rails: List[int], signed: bool) -> FourVec:
    """Wrap 2-valued result rails, forcing all-X wherever ``xz`` holds."""
    bits = [(mgr.or_(xz, a), xz) for a in a_rails]
    return FourVec(mgr, bits, signed)


def _add_rails(
    mgr: BddManager, x: FourVec, y: FourVec, carry_in: int
) -> List[int]:
    rails: List[int] = []
    carry = carry_in
    for bx, by in zip(x.bits, y.bits):
        a, b = bx[0], by[0]
        rails.append(mgr.xor(mgr.xor(a, b), carry))
        carry = mgr.or_(mgr.and_(a, b), mgr.and_(carry, mgr.xor(a, b)))
    return rails


def add(x: FourVec, y: FourVec) -> FourVec:
    """``x + y`` (wrapping at the common width)."""
    _check_same_width(x, y, "+")
    mgr = x.mgr
    signed = x.signed and y.signed
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, vals[0] + vals[1], x.width, signed)
    if mgr.fastpath:
        mgr._fp_sym += 1
    xz = mgr.or_(x.has_xz(), y.has_xz())
    rails = _add_rails(mgr, x, y, FALSE)
    return _poisoned(mgr, xz, rails, signed)


def subtract(x: FourVec, y: FourVec) -> FourVec:
    """``x - y``."""
    _check_same_width(x, y, "-")
    mgr = x.mgr
    signed = x.signed and y.signed
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, vals[0] - vals[1], x.width, signed)
    if mgr.fastpath:
        mgr._fp_sym += 1
    xz = mgr.or_(x.has_xz(), y.has_xz())
    inverted = FourVec(mgr, [(mgr.not_(a), FALSE) for a, _ in y.bits])
    rails = _add_rails(mgr, x, inverted, TRUE)
    return _poisoned(mgr, xz, rails, signed)


def negate(x: FourVec) -> FourVec:
    """Unary ``-x``."""
    zero = FourVec.from_int(x.mgr, 0, x.width, x.signed)
    return subtract(zero, x)


def multiply(x: FourVec, y: FourVec) -> FourVec:
    """``x * y`` truncated to the common width."""
    _check_same_width(x, y, "*")
    mgr = x.mgr
    signed = x.signed and y.signed
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, vals[0] * vals[1], x.width, signed)
    if mgr.fastpath:
        mgr._fp_sym += 1
    width = x.width
    xz = mgr.or_(x.has_xz(), y.has_xz())
    acc = [FALSE] * width
    for shift, (yb, _) in enumerate(y.bits):
        if yb == FALSE:
            continue
        carry = FALSE
        for i in range(shift, width):
            partial = mgr.and_(yb, x.bits[i - shift][0])
            total = mgr.xor(mgr.xor(acc[i], partial), carry)
            carry = mgr.or_(
                mgr.and_(acc[i], partial),
                mgr.and_(carry, mgr.xor(acc[i], partial)),
            )
            acc[i] = total
    return _poisoned(mgr, xz, acc, signed)


def _divmod_rails(
    mgr: BddManager, x: FourVec, y: FourVec
) -> Tuple[List[int], List[int]]:
    """Restoring division on the a-rails; returns (quotient, remainder)."""
    width = x.width
    rem = [FALSE] * width
    quo = [FALSE] * width
    for i in range(width - 1, -1, -1):
        # remainder <<= 1; remainder[0] = x[i]
        rem = [x.bits[i][0]] + rem[:-1]
        # ge = rem >= y (unsigned)
        ge = TRUE
        lt = FALSE
        for rb, (yb, _) in zip(reversed(rem), reversed(y.bits)):
            lt = mgr.or_(lt, mgr.and_(ge, mgr.and_(mgr.not_(rb), yb)))
            ge = mgr.and_(ge, mgr.xnor(rb, yb))
        ge = mgr.not_(lt)
        quo[i] = ge
        # rem = ge ? rem - y : rem
        borrow = FALSE
        new_rem = []
        for rb, (yb, _) in zip(rem, y.bits):
            diff = mgr.xor(mgr.xor(rb, yb), borrow)
            borrow = mgr.or_(
                mgr.and_(mgr.not_(rb), yb),
                mgr.and_(borrow, mgr.xnor(rb, yb)),
            )
            new_rem.append(diff)
        rem = [mgr.ite(ge, nr, rb) for nr, rb in zip(new_rem, rem)]
    return quo, rem


def _div_xz(mgr: BddManager, x: FourVec, y: FourVec) -> int:
    """Poison condition for division: any X/Z operand or zero divisor."""
    zero_div = mgr.and_all(mgr.not_(a) for a, _ in y.bits)
    return mgr.or_(mgr.or_(x.has_xz(), y.has_xz()), zero_div)


def divide(x: FourVec, y: FourVec) -> FourVec:
    """``x / y`` (unsigned; division by zero yields all X, per 1364).

    Signed division on signed operands negates through the unsigned
    core.
    """
    _check_same_width(x, y, "/")
    mgr = x.mgr
    signed = x.signed and y.signed
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        vx, vy = vals
        if vy == 0:
            return FourVec(mgr, (BIT_X,) * x.width, signed)
        if signed:
            sx = _to_signed(vx, x.width)
            sy = _to_signed(vy, y.width)
            quo = abs(sx) // abs(sy)
            if (sx < 0) != (sy < 0):
                quo = -quo
            return FourVec.from_int(mgr, quo, x.width, True)
        return FourVec.from_int(mgr, vx // vy, x.width)
    if mgr.fastpath:
        mgr._fp_sym += 1
    xz = _div_xz(mgr, x, y)
    if signed:
        return _signed_div_or_mod(x, y, xz, want_mod=False)
    quo, _ = _divmod_rails(mgr, x, y)
    return _poisoned(mgr, xz, quo, False)


def modulo(x: FourVec, y: FourVec) -> FourVec:
    """``x % y`` (result takes the sign of the first operand)."""
    _check_same_width(x, y, "%")
    mgr = x.mgr
    signed = x.signed and y.signed
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        vx, vy = vals
        if vy == 0:
            return FourVec(mgr, (BIT_X,) * x.width, signed)
        if signed:
            sx = _to_signed(vx, x.width)
            sy = _to_signed(vy, y.width)
            rem = abs(sx) % abs(sy)
            if sx < 0:
                rem = -rem
            return FourVec.from_int(mgr, rem, x.width, True)
        return FourVec.from_int(mgr, vx % vy, x.width)
    if mgr.fastpath:
        mgr._fp_sym += 1
    xz = _div_xz(mgr, x, y)
    if signed:
        return _signed_div_or_mod(x, y, xz, want_mod=True)
    _, rem = _divmod_rails(mgr, x, y)
    return _poisoned(mgr, xz, rem, False)


def _signed_div_or_mod(
    x: FourVec, y: FourVec, xz: int, want_mod: bool
) -> FourVec:
    mgr = x.mgr
    sx, sy = x.bits[-1][0], y.bits[-1][0]

    def abs_rails(v: FourVec, sign: int) -> FourVec:
        neg = negate(FourVec(mgr, [(a, FALSE) for a, _ in v.bits]))
        bits = [
            (mgr.ite(sign, na, a), FALSE)
            for (na, _), (a, _) in zip(neg.bits, v.bits)
        ]
        return FourVec(mgr, bits)

    ax, ay = abs_rails(x, sx), abs_rails(y, sy)
    quo, rem = _divmod_rails(mgr, ax, ay)
    if want_mod:
        rails, flip = rem, sx
    else:
        rails, flip = quo, mgr.xor(sx, sy)
    pos = FourVec(mgr, [(a, FALSE) for a in rails])
    neg = negate(pos)
    rails = [
        mgr.ite(flip, na, a) for (na, _), (a, _) in zip(neg.bits, pos.bits)
    ]
    return _poisoned(mgr, xz, rails, True)


def power(x: FourVec, y: FourVec) -> FourVec:
    """``x ** y`` by square-and-multiply over the exponent bits.

    (A Verilog-2001 operator, supported as a convenience; exponent bits
    beyond 16 are rejected to bound BDD blow-up.)
    """
    _check_same_width(x, y, "**")
    if y.width > 16 and not y.is_constant():
        raise FourValueError("symbolic exponent wider than 16 bits")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        # The generic path runs on the raw a-rails: base and exponent
        # are both treated as unsigned words and the result is unsigned.
        mgr._fp_word += 1
        return FourVec.from_int(
            mgr, pow(vals[0], vals[1], 1 << x.width), x.width)
    if mgr.fastpath:
        mgr._fp_sym += 1
    xz = mgr.or_(x.has_xz(), y.has_xz())
    result = FourVec.from_int(mgr, 1, x.width)
    base = FourVec(mgr, [(a, FALSE) for a, _ in x.bits])
    for yb, _ in y.bits:
        if yb == FALSE:
            base = multiply(base, base)
            continue
        multiplied = multiply(result, base)
        result = multiplied.ite(yb, result)
        base = multiply(base, base)
    return _poisoned(mgr, xz, [a for a, _ in result.bits], False)


# ----------------------------------------------------------------------
# shifts
# ----------------------------------------------------------------------


def _shift(x: FourVec, y: FourVec, direction: str) -> FourVec:
    mgr = x.mgr
    width = x.width
    if mgr.fastpath:
        amount = y.known_int()
        if amount is not None:
            value = x.known_int()
            if value is not None:
                # fully concrete: one int shift
                mgr._fp_word += 1
                if direction == "shl":
                    result = value << amount if amount < width else 0
                elif direction == "shr":
                    result = value >> amount if amount < width else 0
                else:  # ashr: replicate the original sign bit
                    sign = value >> (width - 1) & 1
                    if amount >= width:
                        result = (1 << width) - 1 if sign else 0
                    else:
                        result = value >> amount
                        if sign:
                            result |= ((1 << width) - 1) ^ (
                                (1 << (width - amount)) - 1)
                return FourVec.from_int(mgr, result, width)
            # known shift amount over a symbolic word: positionally
            # rearrange the rails once instead of per-power-of-2 merges
            # (the generic loop's ite(TRUE, s, r) selections compose to
            # exactly this single shift, so the rails are identical).
            mgr._fp_sym += 1
            mgr._fp_bits += width
            xz = x.has_xz()
            rails = [a for a, _ in x.bits]
            fill = x.bits[-1][0] if direction == "ashr" else FALSE
            if amount >= width:
                rails = [fill] * width
            elif amount:
                if direction == "shl":
                    rails = [FALSE] * amount + rails[: width - amount]
                else:
                    rails = rails[amount:] + [fill] * amount
            return _poisoned(mgr, xz, rails, False)
        mgr._fp_sym += 1
    xz = mgr.or_(x.has_xz(), y.has_xz())
    rails = [a for a, _ in x.bits]
    fill = x.bits[-1][0] if direction == "ashr" else FALSE
    for bit_index, (yb, _) in enumerate(y.bits):
        amount = 1 << bit_index
        if yb == FALSE:
            continue
        if amount >= width:
            shifted = [fill] * width
        elif direction == "shl":
            shifted = [FALSE] * amount + rails[: width - amount]
        else:  # shr / ashr
            shifted = rails[amount:] + [fill] * amount
        rails = [mgr.ite(yb, s, r) for s, r in zip(shifted, rails)]
    return _poisoned(mgr, xz, rails, False)


def shift_left(x: FourVec, y: FourVec) -> FourVec:
    """``x << y`` (``y`` self-determined, possibly symbolic)."""
    return _shift(x, y, "shl")


def shift_right(x: FourVec, y: FourVec) -> FourVec:
    """``x >> y`` — logical right shift."""
    return _shift(x, y, "shr")


def arith_shift_right(x: FourVec, y: FourVec) -> FourVec:
    """``x >>> y`` — arithmetic right shift (sign fill)."""
    return _shift(x, y, "ashr")


# ----------------------------------------------------------------------
# conditional operator
# ----------------------------------------------------------------------


def conditional(cond: FourVec, then_v: FourVec, else_v: FourVec) -> FourVec:
    """``cond ? then_v : else_v`` with 1364 X-merge semantics.

    When the selector is X/Z the result is the bitwise merge: bits on
    which the branches agree (and are known) keep their value, all
    others become X.
    """
    _check_same_width(then_v, else_v, "?:")
    mgr = cond.mgr
    selector = _fast1(cond)
    if selector is not None:
        # A fully-known selector is definitely true or definitely
        # false; the branches may stay symbolic.
        mgr._fp_word += 1
        chosen = then_v if selector else else_v
        return chosen.as_signed(then_v.signed and else_v.signed)
    if mgr.fastpath:
        mgr._fp_sym += 1
    is_true, is_false = _truth_conditions(cond)
    unknown = mgr.nor(is_true, is_false)
    bits: List[BitPair] = []
    for bt, be in zip(then_v.bits, else_v.bits):
        agree = mgr.and_(
            mgr.nor(bt[1], be[1]), mgr.xnor(bt[0], be[0])
        )
        merged_a = mgr.ite(agree, bt[0], TRUE)
        merged_b = mgr.not_(agree)
        a = mgr.ite(is_true, bt[0], mgr.ite(is_false, be[0], merged_a))
        b = mgr.ite(is_true, bt[1], mgr.ite(is_false, be[1], merged_b))
        bits.append((a, b))
    return FourVec(mgr, bits, then_v.signed and else_v.signed)


# ----------------------------------------------------------------------
# net resolution (multiple drivers)
# ----------------------------------------------------------------------


def resolve_wire(x: FourVec, y: FourVec) -> FourVec:
    """Two-driver ``wire``/``tri`` resolution.

    Z yields to the other driver; agreeing known values survive;
    conflicting known values, or any X, produce X.
    """
    _check_same_width(x, y, "wire-resolve")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        vx, vy = vals
        if vx == vy:
            return FourVec.from_int(mgr, vx, x.width)
        bits = []
        for i in range(x.width):
            if (vx ^ vy) >> i & 1:
                bits.append(BIT_X)
            else:
                bits.append(BIT_1 if vx >> i & 1 else BIT_0)
        return FourVec(mgr, bits)
    if mgr.fastpath:
        mgr._fp_sym += 1
    bits: List[BitPair] = []
    for bx, by in zip(x.bits, y.bits):
        x_is_z = mgr.and_(mgr.not_(bx[0]), bx[1])
        y_is_z = mgr.and_(mgr.not_(by[0]), by[1])
        both_known_same = mgr.and_(
            mgr.nor(bx[1], by[1]), mgr.xnor(bx[0], by[0])
        )
        # Result selection: x if y is Z, y if x is Z, shared value if
        # equal and known, else X.
        a = mgr.ite(
            y_is_z,
            bx[0],
            mgr.ite(x_is_z, by[0], mgr.ite(both_known_same, bx[0], TRUE)),
        )
        b = mgr.ite(
            y_is_z,
            bx[1],
            mgr.ite(x_is_z, by[1], mgr.ite(both_known_same, FALSE, TRUE)),
        )
        bits.append((a, b))
    return FourVec(mgr, bits)


def _driver_states(mgr: BddManager, bit: BitPair):
    """(is0, is1, isz, isx) decomposition of one driver bit."""
    a, b = bit
    is0 = mgr.nor(a, b)
    is1 = mgr.and_(a, mgr.not_(b))
    isz = mgr.and_(mgr.not_(a), b)
    isx = mgr.and_(a, b)
    return is0, is1, isz, isx


def _encode_states(mgr: BddManager, out0: int, out1: int, outz: int) -> BitPair:
    """Encode a bit from disjoint is-0/is-1/is-Z conditions (rest: X)."""
    outx = mgr.not_(mgr.or_(out0, mgr.or_(out1, outz)))
    a = mgr.or_(out1, outx)
    b = mgr.or_(outz, outx)
    return a, b


def resolve_wand(x: FourVec, y: FourVec) -> FourVec:
    """``wand`` net resolution — wired AND (1364 Table 9: 0 dominates)."""
    _check_same_width(x, y, "wand-resolve")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, vals[0] & vals[1], x.width)
    if mgr.fastpath:
        mgr._fp_sym += 1
    bits: List[BitPair] = []
    for bx, by in zip(x.bits, y.bits):
        x0, x1, xz, _ = _driver_states(mgr, bx)
        y0, y1, yz, _ = _driver_states(mgr, by)
        out0 = mgr.or_(x0, y0)
        out1 = mgr.or_all([mgr.and_(x1, y1), mgr.and_(x1, yz),
                           mgr.and_(xz, y1)])
        outz = mgr.and_(xz, yz)
        bits.append(_encode_states(mgr, out0, out1, outz))
    return FourVec(mgr, bits)


def resolve_wor(x: FourVec, y: FourVec) -> FourVec:
    """``wor`` net resolution — wired OR (1 dominates)."""
    _check_same_width(x, y, "wor-resolve")
    mgr = x.mgr
    vals = _fast2(x, y)
    if vals is not None:
        mgr._fp_word += 1
        return FourVec.from_int(mgr, vals[0] | vals[1], x.width)
    if mgr.fastpath:
        mgr._fp_sym += 1
    bits: List[BitPair] = []
    for bx, by in zip(x.bits, y.bits):
        x0, x1, xz, _ = _driver_states(mgr, bx)
        y0, y1, yz, _ = _driver_states(mgr, by)
        out1 = mgr.or_(x1, y1)
        out0 = mgr.or_all([mgr.and_(x0, y0), mgr.and_(x0, yz),
                           mgr.and_(xz, y0)])
        outz = mgr.and_(xz, yz)
        bits.append(_encode_states(mgr, out0, out1, outz))
    return FourVec(mgr, bits)


def pull_z(x: FourVec, pull_to_one: bool) -> FourVec:
    """``tri0``/``tri1`` pull: undriven (Z) bits read 0 or 1."""
    mgr = x.mgr
    value = _fast1(x)
    if value is not None:
        # Fully-known: no Z bit to pull, the value passes through
        # (stripped of any signedness, matching the generic result).
        mgr._fp_word += 1
        return x.as_signed(False)
    if mgr.fastpath:
        mgr._fp_sym += 1
    bits: List[BitPair] = []
    for a, b in x.bits:
        isz = mgr.and_(mgr.not_(a), b)
        if pull_to_one:
            bits.append((mgr.or_(a, isz), mgr.and_(b, mgr.not_(isz))))
        else:
            bits.append((a, mgr.and_(b, mgr.not_(isz))))
    return FourVec(mgr, bits)


# ----------------------------------------------------------------------
# edge detection (1364 Table: posedge/negedge transition sets)
# ----------------------------------------------------------------------


def posedge_condition(old: FourVec, new: FourVec) -> int:
    """BDD: a positive edge occurred on bit 0 between ``old`` and ``new``.

    Per 1364, posedge is any transition 0→1, 0→X/Z, X/Z→1.
    """
    mgr = old.mgr
    if mgr.fastpath:
        omask, oval = old.concrete_summary()
        nmask, nval = new.concrete_summary()
        if omask & 1 and nmask & 1:
            # both bit-0s concrete-known: the only posedge transition
            # left in the 1364 table is a plain 0 -> 1
            mgr._fp_word += 1
            return TRUE if not oval & 1 and nval & 1 else FALSE
        mgr._fp_sym += 1
    o, n = old.bits[0], new.bits[0]
    o0 = _known0(mgr, o)
    o1 = _known1(mgr, o)
    oxz = o[1]
    n1 = _known1(mgr, n)
    nxz = n[1]
    return mgr.or_all(
        [
            mgr.and_(o0, n1),
            mgr.and_(o0, nxz),
            mgr.and_(oxz, n1),
        ]
    )


def negedge_condition(old: FourVec, new: FourVec) -> int:
    """BDD: a negative edge occurred on bit 0 (1→0, 1→X/Z, X/Z→0)."""
    mgr = old.mgr
    if mgr.fastpath:
        omask, oval = old.concrete_summary()
        nmask, nval = new.concrete_summary()
        if omask & 1 and nmask & 1:
            mgr._fp_word += 1
            return TRUE if oval & 1 and not nval & 1 else FALSE
        mgr._fp_sym += 1
    o, n = old.bits[0], new.bits[0]
    o1 = _known1(mgr, o)
    oxz = o[1]
    n0 = _known0(mgr, n)
    nxz = n[1]
    return mgr.or_all(
        [
            mgr.and_(o1, n0),
            mgr.and_(o1, nxz),
            mgr.and_(oxz, n0),
        ]
    )
