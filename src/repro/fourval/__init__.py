"""Four-valued (0/1/X/Z) symbolic bit vectors over BDDs.

The paper's simulator performs "complete four-valued (0,1,X,Z) symbolic
simulation"; this package is that data layer.  Every Verilog scalar bit
is a *dual-rail* pair of BDDs ``(a, b)`` using the VPI aval/bval
encoding:

====  ===  ===
bit    a    b
====  ===  ===
``0``  0    0
``1``  1    0
``Z``  0    1
``X``  1    1
====  ===  ===

so "known" is simply ``¬b``.  :class:`~repro.fourval.vector.FourVec`
bundles a little-endian tuple of such pairs with a signedness flag and
implements the full Verilog-1995 operator set with IEEE-1364 X/Z
pessimism (any X/Z operand poisons arithmetic, comparisons yield X,
``===`` compares literally, ...).
"""

from repro.fourval.vector import FourVec, BitPair
from repro.fourval import ops

__all__ = ["FourVec", "BitPair", "ops"]
