"""The :class:`FourVec` symbolic vector type.

A ``FourVec`` is an immutable little-endian tuple of dual-rail bits
(see package docstring for the encoding) plus a ``signed`` flag.  All
Boolean structure lives in the owning :class:`repro.bdd.BddManager`;
``FourVec`` itself is a thin, hashable value object so vectors can be
stored, compared and merged freely by the simulation kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd import FALSE, TRUE, BddManager
from repro.errors import FourValueError

#: One four-valued bit: ``(a, b)`` BDD pair in aval/bval encoding.
BitPair = Tuple[int, int]

_CHAR_TO_PAIR = {
    "0": (FALSE, FALSE),
    "1": (TRUE, FALSE),
    "z": (FALSE, TRUE),
    "x": (TRUE, TRUE),
}
_PAIR_TO_CHAR = {v: k for k, v in _CHAR_TO_PAIR.items()}

BIT_0: BitPair = _CHAR_TO_PAIR["0"]
BIT_1: BitPair = _CHAR_TO_PAIR["1"]
BIT_X: BitPair = _CHAR_TO_PAIR["x"]
BIT_Z: BitPair = _CHAR_TO_PAIR["z"]


class FourVec:
    """An immutable four-valued symbolic bit vector.

    Attributes:
        mgr: owning BDD manager.
        bits: little-endian tuple of ``(a, b)`` BDD pairs.
        signed: Verilog signedness (only ``integer`` values and
            ``$signed`` casts are signed in 1364-1995).
    """

    __slots__ = ("mgr", "bits", "signed", "_summary")

    def __init__(
        self, mgr: BddManager, bits: Sequence[BitPair], signed: bool = False
    ) -> None:
        if not bits:
            raise FourValueError("zero-width vector")
        self.mgr = mgr
        self.bits = tuple(bits)
        self.signed = signed
        #: cached (known_mask, value) concrete summary; see
        #: :meth:`concrete_summary`.  Lazily computed, incrementally
        #: carried by the structural operations where possible.
        self._summary: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_int(
        cls, mgr: BddManager, value: int, width: int, signed: bool = False
    ) -> "FourVec":
        """Constant vector from a Python integer (two's complement wrap)."""
        value &= (1 << width) - 1
        # FourVec is immutable and constant rails are terminal node ids
        # (stable across GC/reorder), so identical constants can share
        # one instance — the word-level fast path mints them constantly.
        cache = mgr._const_vec_cache
        key = (value, width, signed)
        vec = cache.get(key)
        if vec is not None:
            return vec
        bits = [BIT_1 if (value >> i) & 1 else BIT_0 for i in range(width)]
        vec = cls(mgr, bits, signed)
        vec._summary = ((1 << width) - 1, value)
        if len(cache) < 16384:
            cache[key] = vec
        return vec

    @classmethod
    def from_verilog_bits(
        cls, mgr: BddManager, text: str, signed: bool = False
    ) -> "FourVec":
        """Constant from a bit string like ``"10xz"`` (MSB first)."""
        bits: List[BitPair] = []
        for char in reversed(text.lower()):
            if char == "_":
                continue
            pair = _CHAR_TO_PAIR.get(char)
            if pair is None:
                raise FourValueError(f"invalid four-valued digit {char!r}")
            bits.append(pair)
        return cls(mgr, bits, signed)

    @classmethod
    def all_x(cls, mgr: BddManager, width: int) -> "FourVec":
        """Vector of all-X bits — the initial value of every ``reg``."""
        return cls(mgr, [BIT_X] * width)

    @classmethod
    def all_z(cls, mgr: BddManager, width: int) -> "FourVec":
        """Vector of all-Z bits — the value of an undriven net."""
        return cls(mgr, [BIT_Z] * width)

    @classmethod
    def fresh_symbol(
        cls, mgr: BddManager, width: int, name: str, four_valued: bool = False
    ) -> "FourVec":
        """Vector of fresh symbolic variables (the ``$random`` payload).

        With ``four_valued=True`` each bit gets *two* fresh variables so
        it ranges over all of {0,1,X,Z} (the paper's ``$randomxz``);
        otherwise one variable per bit ranging over {0,1}.
        """
        bits: List[BitPair] = []
        for i in range(width):
            a = mgr.new_var(f"{name}[{i}]")
            b = mgr.new_var(f"{name}[{i}].xz") if four_valued else FALSE
            bits.append((a, b))
        return cls(mgr, bits)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of bits."""
        return len(self.bits)

    def __len__(self) -> int:
        return len(self.bits)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FourVec)
            and self.mgr is other.mgr
            and self.bits == other.bits
            and self.signed == other.signed
        )

    def __hash__(self) -> int:
        return hash((id(self.mgr), self.bits, self.signed))

    def __repr__(self) -> str:
        if self.is_constant():
            return f"FourVec('{self.to_verilog_bits()}')"
        return f"FourVec(width={self.width}, symbolic)"

    def is_constant(self) -> bool:
        """True when every rail is a constant BDD (no symbolic bits)."""
        return all(a <= TRUE and b <= TRUE for a, b in self.bits)

    def is_fully_known(self) -> bool:
        """True when no bit can ever be X or Z."""
        return all(b == FALSE for _, b in self.bits)

    def concrete_summary(self) -> Tuple[int, int]:
        """``(known_mask, value)`` summary of the concrete-known bits.

        Bit *i* of ``known_mask`` is set iff bit *i* is concrete-known —
        a constant 0 or 1 on both rails (``b == FALSE`` and ``a`` a
        terminal).  ``value`` holds the integer value of exactly those
        bits (zero elsewhere).  The word-level fast path in
        :mod:`repro.fourval.ops` dispatches on this summary.

        Cached on first use; constructors and structural operations
        carry it incrementally where they can, so steady-state concrete
        traffic never rescans the rails.
        """
        summary = self._summary
        if summary is None:
            mask = 0
            value = 0
            pos = 1
            for a, b in self.bits:
                if b == FALSE and a <= TRUE:
                    mask |= pos
                    if a == TRUE:
                        value |= pos
                pos <<= 1
            summary = (mask, value)
            self._summary = summary
        return summary

    def known_int(self) -> Optional[int]:
        """The raw unsigned integer value iff *every* bit is
        concrete-known, else ``None``.  (Signedness is the caller's
        concern — this is the fast-path dispatch test.)"""
        summary = self._summary
        if summary is None:
            summary = self.concrete_summary()
        mask, value = summary
        if mask == (1 << len(self.bits)) - 1:
            return value
        return None

    def has_xz(self) -> int:
        """BDD condition: *some* bit of this vector is X or Z."""
        return self.mgr.or_all(b for _, b in self.bits)

    def known(self) -> int:
        """BDD condition: *every* bit is 0 or 1."""
        return self.mgr.not_(self.has_xz())

    def to_int(self) -> int:
        """Convert a constant, fully-known vector to a Python int.

        Raises :class:`FourValueError` if any bit is symbolic or X/Z.
        Signed vectors convert via two's complement.
        """
        summary = self._summary
        if summary is not None and summary[0] == (1 << len(self.bits)) - 1:
            value = summary[1]
            if self.signed and value >> (self.width - 1):
                value -= 1 << self.width
            return value
        value = 0
        for i, (a, b) in enumerate(self.bits):
            if b != FALSE or a > TRUE:
                raise FourValueError(
                    "vector is not a known constant "
                    f"(bit {i} is {'symbolic' if a > TRUE or b > TRUE else 'x/z'})"
                )
            if a == TRUE:
                value |= 1 << i
        if self.signed and value >> (self.width - 1):
            value -= 1 << self.width
        return value

    def to_int_or_none(self) -> Optional[int]:
        """Like :meth:`to_int` but returning ``None`` instead of raising."""
        try:
            return self.to_int()
        except FourValueError:
            return None

    def to_verilog_bits(self) -> str:
        """Render a constant vector as an MSB-first 0/1/x/z string."""
        chars = []
        for a, b in reversed(self.bits):
            if a > TRUE or b > TRUE:
                raise FourValueError("vector is symbolic")
            chars.append(_PAIR_TO_CHAR[(a, b)])
        return "".join(chars)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------

    def as_signed(self, signed: bool = True) -> "FourVec":
        """Same bits with the given signedness."""
        if signed == self.signed:
            return self
        result = FourVec(self.mgr, self.bits, signed)
        result._summary = self._summary
        return result

    def remap(self, lookup) -> "FourVec":
        """Rebuild with every rail id passed through ``lookup``.

        Used by the BDD garbage collector's root-provider protocol:
        after an arena compaction or in-place reorder, every held node
        id must be translated to its new value.
        """
        result = FourVec(
            self.mgr, [(lookup(a), lookup(b)) for a, b in self.bits],
            self.signed,
        )
        # Terminal ids are stable across compaction/reorder, so the
        # concrete summary survives the remap untouched.
        result._summary = self._summary
        return result

    def resize(self, width: int) -> "FourVec":
        """Truncate or extend to ``width``.

        Extension is sign extension for signed vectors, zero extension
        otherwise — the 1364 context-sizing rule.
        """
        own = len(self.bits)
        if width == own:
            return self
        if width < own:
            result = FourVec(self.mgr, self.bits[:width], self.signed)
            if self._summary is not None:
                mask = (1 << width) - 1
                result._summary = (self._summary[0] & mask,
                                   self._summary[1] & mask)
            return result
        fill = self.bits[-1] if self.signed else BIT_0
        result = FourVec(
            self.mgr, self.bits + (fill,) * (width - own), self.signed
        )
        if self._summary is not None:
            mask, value = self._summary
            ext = ((1 << width) - 1) ^ ((1 << own) - 1)
            if fill == BIT_0:
                result._summary = (mask | ext, value)
            elif mask >> (own - 1) & 1:
                if value >> (own - 1) & 1:
                    result._summary = (mask | ext, value | ext)
                else:
                    result._summary = (mask | ext, value)
            else:
                result._summary = (mask, value)
        return result

    def slice(self, low: int, width: int) -> "FourVec":
        """Constant-index part select ``[low + width - 1 : low]``.

        Out-of-range bits read as X, matching 1364 semantics.
        """
        own = len(self.bits)
        if 0 <= low and low + width <= own:
            bits: List[BitPair] = list(self.bits[low:low + width])
        else:
            bits = [self.bits[i] if 0 <= i < own else BIT_X
                    for i in range(low, low + width)]
        result = FourVec(self.mgr, bits)
        if self._summary is not None and low >= 0:
            mask = (1 << width) - 1
            result._summary = ((self._summary[0] >> low) & mask,
                               (self._summary[1] >> low) & mask)
        return result

    def concat(self, other: "FourVec") -> "FourVec":
        """Concatenation ``{self, other}`` (``other`` is the LSB part)."""
        result = FourVec(self.mgr, other.bits + self.bits)
        if self._summary is not None and other._summary is not None:
            shift = other.width
            result._summary = (
                other._summary[0] | (self._summary[0] << shift),
                other._summary[1] | (self._summary[1] << shift),
            )
        return result

    def replicate(self, count: int) -> "FourVec":
        """Replication ``{count{self}}``."""
        if count < 1:
            raise FourValueError(f"invalid replication count {count}")
        result = FourVec(self.mgr, self.bits * count)
        if self._summary is not None:
            mask, value = self._summary
            rmask = rvalue = 0
            for i in range(count):
                rmask |= mask << (i * self.width)
                rvalue |= value << (i * self.width)
            result._summary = (rmask, rvalue)
        return result

    # ------------------------------------------------------------------
    # merge / change — the primitives the kernel is built from
    # ------------------------------------------------------------------

    def ite(self, control: int, other: "FourVec") -> "FourVec":
        """Per-bit ``ite(control, self, other)``.

        This is the paper's fundamental guarded-assignment operator:
        ``new = ite(control, rhs, old)`` (Section 3.2).  Widths must
        match.
        """
        if self.width != other.width:
            raise FourValueError(
                f"ite width mismatch: {self.width} vs {other.width}"
            )
        if control == TRUE:
            return self
        if control == FALSE:
            return other
        mgr = self.mgr
        bits = [
            (mgr.ite(control, a1, a2), mgr.ite(control, b1, b2))
            for (a1, b1), (a2, b2) in zip(self.bits, other.bits)
        ]
        return FourVec(mgr, bits, self.signed)

    def change_condition(self, other: "FourVec") -> int:
        """BDD condition under which ``self`` differs from ``other``.

        Used to decide, symbolically, whether an assignment generated a
        value-change event on a net (DESIGN.md "Event controls").
        """
        if self.width != other.width:
            raise FourValueError(
                f"change width mismatch: {self.width} vs {other.width}"
            )
        mgr = self.mgr
        if mgr.fastpath:
            # Identical rails can never differ; two all-constant-rail
            # vectors differ iff any pair mismatches.  Both cases are
            # exactly what the generic xor/or chain reduces to.
            if self.bits == other.bits:
                return FALSE
            for (a1, b1), (a2, b2) in zip(self.bits, other.bits):
                if a1 > TRUE or b1 > TRUE or a2 > TRUE or b2 > TRUE:
                    break  # a symbolic rail: fall through to the BDDs
            else:
                return TRUE  # bits differ and all rails are terminals
        diffs = []
        for (a1, b1), (a2, b2) in zip(self.bits, other.bits):
            diffs.append(mgr.or_(mgr.xor(a1, a2), mgr.xor(b1, b2)))
        return mgr.or_all(diffs)

    def substitute(self, assignment: Dict[int, bool]) -> "FourVec":
        """Cofactor every rail under a partial variable assignment.

        Used when concretizing an error-trace witness (Section 5).
        """
        mgr = self.mgr
        bits = [
            (mgr.restrict_many(a, assignment), mgr.restrict_many(b, assignment))
            for a, b in self.bits
        ]
        return FourVec(mgr, bits, self.signed)

    def truthy(self) -> int:
        """BDD condition under which this value is *true* in Verilog.

        Per 1364, a condition is true iff it compares unequal to zero
        with a *known* result — i.e. at least one bit is a known 1.
        An all-X value is not true (the else branch runs).
        """
        mgr = self.mgr
        if mgr.fastpath:
            mask, value = self.concrete_summary()
            if value:           # a concrete-known 1 bit: always true
                return TRUE
            if mask == (1 << len(self.bits)) - 1:
                return FALSE    # fully known, all zero: never true
        return mgr.or_all(mgr.and_(a, mgr.not_(b)) for a, b in self.bits)
