"""Verilog-1995 frontend: lexer, parser, AST, elaboration.

The pipeline is::

    source text
      └─ preprocess  (``\\`define``/``\\`ifdef``/``\\`include``)
      └─ Lexer       (tokens with source coordinates)
      └─ Parser      (per-module ASTs, ``repro.frontend.ast_nodes``)
      └─ elaborate   (hierarchy flattening into a :class:`Design` of
                      nets + processes + continuous assigns)

The supported language is the broad behavioral subset listed in
DESIGN.md — everything the paper's translation schemes exercise,
including all delay/event control, tasks/functions and
non-synthesizable testbench constructs.
"""

from repro.frontend.lexer import Lexer, Token
from repro.frontend.parser import parse_source
from repro.frontend.elaborate import Design, elaborate
from repro.frontend.printer import print_module, print_modules

__all__ = ["Lexer", "Token", "parse_source", "Design", "elaborate",
           "print_module", "print_modules"]
