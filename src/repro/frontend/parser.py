"""Recursive-descent parser for the Verilog-1995 subset.

Produces :class:`repro.frontend.ast_nodes.Module` objects.  Both
1995-style headers (directions declared in the body) and ANSI-style
headers (directions in the port list) are accepted, as are a few
ubiquitous 2001 conveniences (``@*``, ``output reg``, declaration
initializers) that cost nothing and make testbenches pleasant to
write.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import VerilogSyntaxError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Lexer, Token, preprocess

_GATE_TYPES = frozenset(
    ["and", "nand", "or", "nor", "xor", "xnor", "not", "buf",
     "bufif0", "bufif1", "notif0", "notif1"]
)

_NET_KINDS = frozenset(["wire", "tri", "tri0", "tri1", "wand", "wor",
                        "supply0", "supply1"])

# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "^~": 4, "~^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

_UNARY_OPS = frozenset(["+", "-", "!", "~", "&", "|", "^", "~&", "~|", "~^", "^~"])


def parse_source(
    text: str,
    filename: str = "<input>",
    defines: Optional[Dict[str, str]] = None,
    include_resolver=None,
) -> Dict[str, ast.Module]:
    """Preprocess, lex and parse ``text``; return modules by name."""
    clean = preprocess(text, defines, include_resolver)
    tokens = Lexer(clean, filename).tokenize()
    return Parser(tokens, filename).parse_modules()


class Parser:
    """Token-stream parser; one instance per source unit."""

    def __init__(self, tokens: List[Token], filename: str = "<input>") -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise VerilogSyntaxError(
                f"expected {want!r}, found {token.value!r}", token.line, token.col
            )
        return self.next()

    def error(self, message: str) -> VerilogSyntaxError:
        token = self.peek()
        return VerilogSyntaxError(message, token.line, token.col)

    # ------------------------------------------------------------------
    # modules
    # ------------------------------------------------------------------

    def parse_modules(self) -> Dict[str, ast.Module]:
        modules: Dict[str, ast.Module] = {}
        while not self.at("eof"):
            module = self.parse_module()
            if module.name in modules:
                raise VerilogSyntaxError(
                    f"duplicate module {module.name!r}", module.line, 0
                )
            modules[module.name] = module
        return modules

    def parse_module(self) -> ast.Module:
        start = self.expect("keyword", "module")
        name = self.expect("id").value
        module = ast.Module(name=name, line=start.line)
        if self.accept("op", "#"):
            # ANSI parameter list: #(parameter W = 8, ...)
            self.expect("op", "(")
            while not self.at("op", ")"):
                self.accept("keyword", "parameter")
                self.accept("keyword", "signed")
                if self.at("op", "["):
                    self._parse_range()
                pname = self.expect("id").value
                self.expect("op", "=")
                value = self.parse_expression()
                module.decls.append(
                    ast.Decl(kind="parameter", name=pname, init=value)
                )
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        if self.accept("op", "("):
            self._parse_port_list(module)
        self.expect("op", ";")
        while not self.at("keyword", "endmodule"):
            if self.at("eof"):
                raise self.error("unexpected end of file inside module")
            self.parse_module_item(module)
        self.expect("keyword", "endmodule")
        return module

    def _parse_port_list(self, module: ast.Module) -> None:
        while not self.at("op", ")"):
            token = self.peek()
            if token.kind == "keyword" and token.value in ("input", "output", "inout"):
                # ANSI-style header
                direction = self.next().value
                is_reg = bool(self.accept("keyword", "reg"))
                self.accept("keyword", "wire")
                signed = bool(self.accept("keyword", "signed"))
                rng = self._parse_range() if self.at("op", "[") else None
                pname = self.expect("id").value
                module.port_names.append(pname)
                module.decls.append(
                    ast.Decl(kind=direction, name=pname, range=rng,
                             signed=signed, line=token.line)
                )
                if is_reg:
                    module.decls.append(
                        ast.Decl(kind="reg", name=pname, range=rng,
                                 signed=signed, line=token.line)
                    )
                # Subsequent bare names reuse this direction/range.
                while self.accept("op", ","):
                    if self.at("keyword") or self.at("op", ")"):
                        break
                    extra = self.expect("id").value
                    module.port_names.append(extra)
                    module.decls.append(
                        ast.Decl(kind=direction, name=extra, range=rng,
                                 signed=signed, line=token.line)
                    )
                    if is_reg:
                        module.decls.append(
                            ast.Decl(kind="reg", name=extra, range=rng,
                                     signed=signed, line=token.line)
                        )
                continue
            pname = self.expect("id").value
            module.port_names.append(pname)
            if not self.accept("op", ","):
                break
        self.expect("op", ")")

    # ------------------------------------------------------------------
    # module items
    # ------------------------------------------------------------------

    def parse_module_item(self, module: ast.Module) -> None:
        token = self.peek()
        if token.kind == "keyword":
            value = token.value
            if value in ("input", "output", "inout"):
                self._parse_direction_decl(module)
                return
            if value in _NET_KINDS or value in ("reg", "integer", "time", "event",
                                                "genvar"):
                module.decls.extend(self._parse_data_decl())
                return
            if value in ("parameter", "localparam"):
                module.decls.extend(self._parse_parameter_decl(value))
                return
            if value == "assign":
                self._parse_continuous_assign(module)
                return
            if value in ("initial", "always"):
                self.next()
                body = self.parse_statement()
                module.processes.append(
                    ast.Process(kind=value, body=body, line=token.line)
                )
                return
            if value == "task":
                module.tasks.append(self._parse_task())
                return
            if value == "function":
                module.functions.append(self._parse_function())
                return
            if value in _GATE_TYPES:
                self._parse_gate_instances(module)
                return
            if value == "defparam":
                raise self.error("defparam is not supported; use #(...) overrides")
            if value in ("specify", "generate"):
                raise self.error(f"{value} blocks are not supported")
            raise self.error(f"unsupported module item {value!r}")
        if token.kind == "id":
            self._parse_module_instances(module)
            return
        raise self.error(f"unexpected token {token.value!r} in module body")

    def _parse_direction_decl(self, module: ast.Module) -> None:
        direction = self.next().value
        line = self.peek().line
        is_reg = bool(self.accept("keyword", "reg"))
        self.accept("keyword", "wire")
        signed = bool(self.accept("keyword", "signed"))
        rng = self._parse_range() if self.at("op", "[") else None
        while True:
            name = self.expect("id").value
            module.decls.append(
                ast.Decl(kind=direction, name=name, range=rng, signed=signed,
                         line=line)
            )
            if is_reg:
                module.decls.append(
                    ast.Decl(kind="reg", name=name, range=rng, signed=signed,
                             line=line)
                )
            if not self.accept("op", ","):
                break
        self.expect("op", ";")

    def _parse_data_decl(self) -> List[ast.Decl]:
        kind = self.next().value
        line = self.peek().line
        signed = bool(self.accept("keyword", "signed"))
        rng = self._parse_range() if self.at("op", "[") else None
        if kind == "integer":
            signed = True
        decls: List[ast.Decl] = []
        while True:
            name = self.expect("id").value
            array = self._parse_range() if self.at("op", "[") else None
            init = None
            if self.accept("op", "="):
                init = self.parse_expression()
            decls.append(
                ast.Decl(kind=kind, name=name, range=rng, array=array,
                         signed=signed, init=init, line=line)
            )
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return decls

    def _parse_parameter_decl(self, kind: str) -> List[ast.Decl]:
        self.next()
        self.accept("keyword", "signed")
        if self.at("op", "["):
            self._parse_range()
        decls: List[ast.Decl] = []
        while True:
            name = self.expect("id").value
            self.expect("op", "=")
            value = self.parse_expression()
            decls.append(ast.Decl(kind=kind, name=name, init=value))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return decls

    def _parse_continuous_assign(self, module: ast.Module) -> None:
        line = self.next().line
        delay = None
        if self.accept("op", "#"):
            delay = self._parse_delay_value()
        while True:
            lhs = self._parse_lvalue()
            self.expect("op", "=")
            rhs = self.parse_expression()
            module.assigns.append(
                ast.ContAssign(lhs=lhs, rhs=rhs, delay=delay, line=line)
            )
            if not self.accept("op", ","):
                break
        self.expect("op", ";")

    def _parse_task(self) -> ast.TaskDecl:
        line = self.expect("keyword", "task").line
        name = self.expect("id").value
        task = ast.TaskDecl(name=name, line=line)
        if self.accept("op", "("):
            # ANSI-style task ports
            while not self.at("op", ")"):
                direction = self.expect("keyword").value
                if direction not in ("input", "output", "inout"):
                    raise self.error(f"bad task port direction {direction!r}")
                self.accept("keyword", "reg")
                signed = bool(self.accept("keyword", "signed"))
                rng = self._parse_range() if self.at("op", "[") else None
                pname = self.expect("id").value
                task.ports.append(
                    ast.Decl(kind=direction, name=pname, range=rng, signed=signed)
                )
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        self.expect("op", ";")
        while not self.at("keyword", "endtask"):
            token = self.peek()
            if token.kind == "keyword" and token.value in ("input", "output", "inout"):
                direction = self.next().value
                self.accept("keyword", "reg")
                signed = bool(self.accept("keyword", "signed"))
                rng = self._parse_range() if self.at("op", "[") else None
                while True:
                    pname = self.expect("id").value
                    task.ports.append(
                        ast.Decl(kind=direction, name=pname, range=rng,
                                 signed=signed)
                    )
                    if not self.accept("op", ","):
                        break
                self.expect("op", ";")
            elif token.kind == "keyword" and token.value in ("reg", "integer", "time"):
                task.decls.extend(self._parse_data_decl())
            else:
                break
        body_stmts: List[ast.Stmt] = []
        while not self.at("keyword", "endtask"):
            body_stmts.append(self.parse_statement())
        self.expect("keyword", "endtask")
        if len(body_stmts) == 1:
            task.body = body_stmts[0]
        else:
            task.body = ast.Block(stmts=body_stmts, line=line)
        return task

    def _parse_function(self) -> ast.FunctionDecl:
        line = self.expect("keyword", "function").line
        signed = bool(self.accept("keyword", "signed"))
        rng = None
        if self.at("op", "["):
            rng = self._parse_range()
        if self.at("keyword", "integer"):
            self.next()
            signed = True
            rng = ast.Range(
                msb=ast.Number(bits=format(31, "b"), width=32, sized=False),
                lsb=ast.Number(bits="0", width=32, sized=False),
            )
        name = self.expect("id").value
        func = ast.FunctionDecl(name=name, range=rng, signed=signed, line=line)
        if self.accept("op", "("):
            while not self.at("op", ")"):
                self.expect("keyword", "input")
                self.accept("keyword", "reg")
                psigned = bool(self.accept("keyword", "signed"))
                prng = self._parse_range() if self.at("op", "[") else None
                pname = self.expect("id").value
                func.ports.append(
                    ast.Decl(kind="input", name=pname, range=prng, signed=psigned)
                )
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        self.expect("op", ";")
        while True:
            token = self.peek()
            if token.kind == "keyword" and token.value == "input":
                self.next()
                self.accept("keyword", "reg")
                psigned = bool(self.accept("keyword", "signed"))
                prng = self._parse_range() if self.at("op", "[") else None
                while True:
                    pname = self.expect("id").value
                    func.ports.append(
                        ast.Decl(kind="input", name=pname, range=prng,
                                 signed=psigned)
                    )
                    if not self.accept("op", ","):
                        break
                self.expect("op", ";")
            elif token.kind == "keyword" and token.value in ("reg", "integer", "time"):
                func.decls.extend(self._parse_data_decl())
            else:
                break
        body_stmts: List[ast.Stmt] = []
        while not self.at("keyword", "endfunction"):
            body_stmts.append(self.parse_statement())
        self.expect("keyword", "endfunction")
        if len(body_stmts) == 1:
            func.body = body_stmts[0]
        else:
            func.body = ast.Block(stmts=body_stmts, line=line)
        return func

    def _parse_gate_instances(self, module: ast.Module) -> None:
        gate = self.next().value
        line = self.peek().line
        delay = None
        if self.accept("op", "#"):
            delay = self._parse_delay_value()
        while True:
            name = ""
            if self.at("id") and self.peek(1).value == "(":
                name = self.next().value
            self.expect("op", "(")
            terminals = [self.parse_expression()]
            while self.accept("op", ","):
                terminals.append(self.parse_expression())
            self.expect("op", ")")
            module.gates.append(
                ast.GateInst(gate=gate, name=name, delay=delay,
                             terminals=terminals, line=line)
            )
            if not self.accept("op", ","):
                break
        self.expect("op", ";")

    def _parse_module_instances(self, module: ast.Module) -> None:
        module_name = self.expect("id").value
        line = self.peek().line
        param_overrides: List[ast.PortConnection] = []
        if self.accept("op", "#"):
            self.expect("op", "(")
            param_overrides = self._parse_connection_list()
            self.expect("op", ")")
        while True:
            inst_name = self.expect("id").value
            self.expect("op", "(")
            connections = self._parse_connection_list()
            self.expect("op", ")")
            module.instances.append(
                ast.ModuleInst(module=module_name, name=inst_name,
                               param_overrides=list(param_overrides),
                               connections=connections, line=line)
            )
            if not self.accept("op", ","):
                break
        self.expect("op", ";")

    def _parse_connection_list(self) -> List[ast.PortConnection]:
        connections: List[ast.PortConnection] = []
        if self.at("op", ")"):
            return connections
        while True:
            if self.accept("op", "."):
                name = self.expect("id").value
                self.expect("op", "(")
                expr = None if self.at("op", ")") else self.parse_expression()
                self.expect("op", ")")
                connections.append(ast.PortConnection(name=name, expr=expr))
            elif self.at("op", ","):
                connections.append(ast.PortConnection(name=None, expr=None))
            else:
                connections.append(
                    ast.PortConnection(name=None, expr=self.parse_expression())
                )
            if not self.accept("op", ","):
                break
        return connections

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "op":
            if token.value == ";":
                self.next()
                return ast.NullStmt(line=token.line)
            if token.value == "#":
                self.next()
                delay = self._parse_delay_value()
                stmt = self.parse_statement_or_null()
                return ast.DelayStmt(delay=delay, stmt=stmt, line=token.line)
            if token.value == "@":
                self.next()
                items = self._parse_event_control()
                stmt = self.parse_statement_or_null()
                return ast.EventStmt(items=items, stmt=stmt, line=token.line)
            if token.value == "->":
                self.next()
                name = self.expect("id").value
                self.expect("op", ";")
                return ast.EventTrigger(name=name, line=token.line)
            return self._parse_assignment_statement()
        if token.kind == "keyword":
            handler = {
                "begin": self._parse_block,
                "if": self._parse_if,
                "case": self._parse_case,
                "casez": self._parse_case,
                "casex": self._parse_case,
                "for": self._parse_for,
                "while": self._parse_while,
                "repeat": self._parse_repeat,
                "forever": self._parse_forever,
                "wait": self._parse_wait,
                "disable": self._parse_disable,
            }.get(token.value)
            if handler is not None:
                return handler()
            if token.value == "fork":
                return self._parse_fork()
            if token.value in ("force", "release", "deassign"):
                raise self.error(f"{token.value} is not supported")
            if token.value == "assign":
                raise self.error("procedural continuous assign is not supported")
            raise self.error(f"unexpected keyword {token.value!r} in statement")
        if token.kind == "sysid":
            return self._parse_system_task_statement()
        if token.kind == "id":
            # Task enable or assignment — disambiguate by what follows
            # the (possibly hierarchical, possibly indexed) reference.
            return self._parse_assignment_or_task()
        raise self.error(f"unexpected token {token.value!r} in statement")

    def parse_statement_or_null(self) -> ast.Stmt:
        if self.accept("op", ";"):
            return ast.NullStmt()
        return self.parse_statement()

    def _parse_block(self) -> ast.Block:
        line = self.expect("keyword", "begin").line
        name = None
        if self.accept("op", ":"):
            name = self.expect("id").value
        block = ast.Block(name=name, line=line)
        while self.at("keyword", "reg") or self.at("keyword", "integer") or self.at(
            "keyword", "time"
        ):
            block.decls.extend(self._parse_data_decl())
        while not self.at("keyword", "end"):
            if self.at("eof"):
                raise self.error("unexpected end of file inside begin/end")
            block.stmts.append(self.parse_statement())
        self.expect("keyword", "end")
        return block

    def _parse_fork(self) -> ast.ForkJoin:
        line = self.expect("keyword", "fork").line
        name = None
        if self.accept("op", ":"):
            name = self.expect("id").value
        fork = ast.ForkJoin(name=name, line=line)
        while self.at("keyword", "reg") or self.at("keyword", "integer") \
                or self.at("keyword", "time"):
            fork.decls.extend(self._parse_data_decl())
        while not self.at("keyword", "join"):
            if self.at("eof"):
                raise self.error("unexpected end of file inside fork/join")
            fork.branches.append(self.parse_statement())
        self.expect("keyword", "join")
        return fork

    def _parse_if(self) -> ast.If:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_stmt = self.parse_statement_or_null()
        else_stmt = None
        if self.accept("keyword", "else"):
            else_stmt = self.parse_statement_or_null()
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt, line=line)

    def _parse_case(self) -> ast.Case:
        token = self.next()
        self.expect("op", "(")
        expr = self.parse_expression()
        self.expect("op", ")")
        case = ast.Case(kind=token.value, expr=expr, line=token.line)
        while not self.at("keyword", "endcase"):
            if self.accept("keyword", "default"):
                self.accept("op", ":")
                stmt = self.parse_statement_or_null()
                case.items.append(ast.CaseItem(exprs=[], stmt=stmt))
                continue
            exprs = [self.parse_expression()]
            while self.accept("op", ","):
                exprs.append(self.parse_expression())
            self.expect("op", ":")
            stmt = self.parse_statement_or_null()
            case.items.append(ast.CaseItem(exprs=exprs, stmt=stmt))
        self.expect("keyword", "endcase")
        return case

    def _parse_for(self) -> ast.For:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init = self._parse_plain_assign()
        self.expect("op", ";")
        cond = self.parse_expression()
        self.expect("op", ";")
        step = self._parse_plain_assign()
        self.expect("op", ")")
        body = self.parse_statement_or_null()
        return ast.For(init=init, cond=cond, step=step, body=body, line=line)

    def _parse_plain_assign(self) -> ast.BlockingAssign:
        lhs = self._parse_lvalue()
        line = self.peek().line
        self.expect("op", "=")
        rhs = self.parse_expression()
        return ast.BlockingAssign(lhs=lhs, rhs=rhs, line=line)

    def _parse_lvalue(self) -> ast.Expr:
        """Parse an assignment target: identifier (with selects) or a
        concatenation of lvalues.

        A dedicated production is needed because parsing the target with
        ``parse_expression`` would swallow ``a <= b`` as a relational
        comparison.
        """
        if self.at("op", "{"):
            line = self.next().line
            parts = [self._parse_lvalue()]
            while self.accept("op", ","):
                parts.append(self._parse_lvalue())
            self.expect("op", "}")
            return ast.Concat(parts=parts, line=line)
        ident = self._parse_hier_identifier()
        return self._parse_lvalue_selects(ident)

    def _parse_lvalue_selects(self, base: ast.Expr) -> ast.Expr:
        while self.at("op", "["):
            self.next()
            first = self.parse_expression()
            if self.accept("op", ":"):
                second = self.parse_expression()
                self.expect("op", "]")
                base = ast.PartSelect(base=base, msb=first, lsb=second,
                                      line=first.line)
            else:
                self.expect("op", "]")
                base = ast.Index(base=base, index=first, line=first.line)
        return base

    def _parse_while(self) -> ast.While:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement_or_null()
        return ast.While(cond=cond, body=body, line=line)

    def _parse_repeat(self) -> ast.Repeat:
        line = self.expect("keyword", "repeat").line
        self.expect("op", "(")
        count = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement_or_null()
        return ast.Repeat(count=count, body=body, line=line)

    def _parse_forever(self) -> ast.Forever:
        line = self.expect("keyword", "forever").line
        body = self.parse_statement()
        return ast.Forever(body=body, line=line)

    def _parse_wait(self) -> ast.Wait:
        line = self.expect("keyword", "wait").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        stmt = self.parse_statement_or_null()
        return ast.Wait(cond=cond, stmt=stmt, line=line)

    def _parse_disable(self) -> ast.Disable:
        line = self.expect("keyword", "disable").line
        name = self.expect("id").value
        self.expect("op", ";")
        return ast.Disable(name=name, line=line)

    def _parse_system_task_statement(self) -> ast.TaskCall:
        token = self.expect("sysid")
        args: List[ast.Expr] = []
        if self.accept("op", "("):
            if not self.at("op", ")"):
                args.append(self.parse_expression())
                while self.accept("op", ","):
                    args.append(self.parse_expression())
            self.expect("op", ")")
        self.expect("op", ";")
        return ast.TaskCall(name=token.value, args=args, is_system=True,
                            line=token.line)

    def _parse_assignment_or_task(self) -> ast.Stmt:
        start = self.pos
        ident = self._parse_hier_identifier()
        token = self.peek()
        if token.kind == "op" and token.value in ("(", ";"):
            # task enable: name(args); or name;
            args: List[ast.Expr] = []
            if self.accept("op", "("):
                if not self.at("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
            self.expect("op", ";")
            return ast.TaskCall(name=ident.name, args=args, is_system=False,
                                line=token.line)
        # otherwise rewind and parse as an assignment with a full lvalue
        self.pos = start
        return self._parse_assignment_statement()

    def _parse_assignment_statement(self) -> ast.Stmt:
        lhs = self._parse_lvalue()
        token = self.peek()
        if self.accept("op", "="):
            intra = None
            intra_event = None
            if self.accept("op", "#"):
                intra = self._parse_delay_value()
            elif self.accept("op", "@"):
                intra_event = self._parse_event_control()
            rhs = self.parse_expression()
            self.expect("op", ";")
            return ast.BlockingAssign(lhs=lhs, rhs=rhs, intra_delay=intra,
                                      intra_event=intra_event,
                                      line=token.line)
        if self.accept("op", "<="):
            intra = None
            if self.accept("op", "#"):
                intra = self._parse_delay_value()
            rhs = self.parse_expression()
            self.expect("op", ";")
            return ast.NonBlockingAssign(lhs=lhs, rhs=rhs, intra_delay=intra,
                                         line=token.line)
        raise self.error("expected '=' or '<=' in assignment")

    def _parse_event_control(self) -> List[ast.EventItem]:
        if self.accept("op", "*"):
            return []
        if self.at("id"):
            # ``@name`` — a named event or plain signal without parens.
            return [ast.EventItem(edge=None, expr=self._parse_hier_identifier())]
        self.expect("op", "(")
        if self.accept("op", "*"):
            self.expect("op", ")")
            return []
        items = [self._parse_event_item()]
        while True:
            if self.accept("keyword", "or") or self.accept("op", ","):
                items.append(self._parse_event_item())
            else:
                break
        self.expect("op", ")")
        return items

    def _parse_event_item(self) -> ast.EventItem:
        edge = None
        if self.accept("keyword", "posedge"):
            edge = "posedge"
        elif self.accept("keyword", "negedge"):
            edge = "negedge"
        expr = self.parse_expression()
        return ast.EventItem(edge=edge, expr=expr)

    def _parse_delay_value(self) -> ast.Expr:
        if self.accept("op", "("):
            value = self.parse_expression()
            # min:typ:max — keep the typical value
            if self.accept("op", ":"):
                value = self.parse_expression()
                if self.accept("op", ":"):
                    self.parse_expression()
            self.expect("op", ")")
            return value
        token = self.peek()
        if token.kind == "number":
            self.next()
            return self._make_number(token)
        if token.kind == "real":
            self.next()
            return ast.RealNumber(value=float(token.value), line=token.line)
        if token.kind == "id":
            return self._parse_hier_identifier()
        raise self.error("expected delay value")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.accept("op", "?"):
            then_value = self.parse_expression()
            self.expect("op", ":")
            else_value = self.parse_expression()
            return ast.Ternary(cond=cond, then_value=then_value,
                               else_value=else_value, line=cond.line)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op":
                return left
            prec = _BINARY_PRECEDENCE.get(token.value)
            if prec is None or prec < min_prec:
                return left
            self.next()
            # ** is right-associative; everything else left-associative.
            next_min = prec if token.value == "**" else prec + 1
            right = self._parse_binary(next_min)
            left = ast.Binary(op=token.value, left=left, right=right,
                              line=token.line)

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.value in _UNARY_OPS:
            self.next()
            operand = self._parse_unary()
            return ast.Unary(op=token.value, operand=operand, line=token.line)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "number":
            self.next()
            return self._make_number(token)
        if token.kind == "real":
            self.next()
            return ast.RealNumber(value=float(token.value), line=token.line)
        if token.kind == "string":
            self.next()
            return ast.StringLiteral(value=token.value, line=token.line)
        if token.kind == "sysid":
            self.next()
            args: List[ast.Expr] = []
            if self.accept("op", "("):
                if not self.at("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
            return ast.SystemCall(name=token.value, args=args, line=token.line)
        if token.kind == "op" and token.value == "(":
            self.next()
            expr = self.parse_expression()
            self.expect("op", ")")
            return self._parse_selects(expr)
        if token.kind == "op" and token.value == "{":
            return self._parse_concat()
        if token.kind == "id":
            if self.peek(1).kind == "op" and self.peek(1).value == "(" and "." not in token.value:
                name = self.next().value
                self.expect("op", "(")
                args = []
                if not self.at("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
                return ast.FunctionCall(name=name, args=args, line=token.line)
            ident = self._parse_hier_identifier()
            return self._parse_selects(ident)
        raise self.error(f"unexpected token {token.value!r} in expression")

    def _parse_hier_identifier(self) -> ast.Identifier:
        token = self.expect("id")
        parts = [token.value]
        while self.at("op", ".") and self.peek(1).kind == "id":
            self.next()
            parts.append(self.expect("id").value)
        return ast.Identifier(parts=tuple(parts), line=token.line)

    def _parse_selects(self, base: ast.Expr) -> ast.Expr:
        while self.at("op", "["):
            self.next()
            first = self.parse_expression()
            if self.accept("op", ":"):
                second = self.parse_expression()
                self.expect("op", "]")
                base = ast.PartSelect(base=base, msb=first, lsb=second,
                                      line=first.line)
            elif self.at("op", "+:") or self.at("op", "-:"):
                raise self.error("indexed part selects (+:/-:) are not supported")
            else:
                self.expect("op", "]")
                base = ast.Index(base=base, index=first, line=first.line)
        return base

    def _parse_concat(self) -> ast.Expr:
        line = self.expect("op", "{").line
        first = self.parse_expression()
        if self.at("op", "{"):
            # replication {n{expr}}
            self.next()
            value = self.parse_expression()
            if self.accept("op", ","):
                parts = [value]
                while True:
                    parts.append(self.parse_expression())
                    if not self.accept("op", ","):
                        break
                value = ast.Concat(parts=parts, line=line)
            self.expect("op", "}")
            self.expect("op", "}")
            return ast.Repl(count=first, value=value, line=line)
        parts = [first]
        while self.accept("op", ","):
            parts.append(self.parse_expression())
        self.expect("op", "}")
        return ast.Concat(parts=parts, line=line)

    def _parse_range(self) -> ast.Range:
        self.expect("op", "[")
        msb = self.parse_expression()
        self.expect("op", ":")
        lsb = self.parse_expression()
        self.expect("op", "]")
        return ast.Range(msb=msb, lsb=lsb)

    # ------------------------------------------------------------------
    # literals
    # ------------------------------------------------------------------

    def _make_number(self, token: Token) -> ast.Number:
        text = token.value.replace("_", "").replace(" ", "").replace("\t", "")
        if "'" not in text:
            value = int(text)
            bits = format(value & 0xFFFFFFFF, "032b")
            return ast.Number(bits=bits, width=32, signed=True, sized=False,
                              base="d", line=token.line)
        size_text, rest = text.split("'", 1)
        signed = False
        if rest and rest[0] in "sS":
            signed = True
            rest = rest[1:]
        base = rest[0].lower()
        digits = rest[1:].lower().replace("?", "z")
        if base == "d":
            if digits in ("x", "z"):
                bit_string = digits
            else:
                bit_string = format(int(digits), "b")
        else:
            bits_per = {"b": 1, "o": 3, "h": 4}[base]
            chunks = []
            for digit in digits:
                if digit in "xz":
                    chunks.append(digit * bits_per)
                else:
                    chunks.append(format(int(digit, 16), f"0{bits_per}b"))
            bit_string = "".join(chunks) or "0"
        sized = bool(size_text)
        width = int(size_text) if size_text else max(32, len(bit_string))
        if len(bit_string) < width:
            fill = bit_string[0] if bit_string[0] in "xz" else "0"
            bit_string = fill * (width - len(bit_string)) + bit_string
        elif len(bit_string) > width:
            bit_string = bit_string[-width:]
        return ast.Number(bits=bit_string, width=width, signed=signed,
                          sized=sized, base=base, line=token.line)
