"""AST → Verilog source pretty-printer.

The inverse of the parser: renders any parsed module back to
compilable source text.  Used for debugging elaborated designs, for
emitting reduced test cases, and — most importantly — as the oracle in
the parser round-trip property tests (``parse(print(parse(s)))`` must
equal ``parse(s)`` structurally).
"""

from __future__ import annotations

from typing import List

from repro.errors import ReproError
from repro.frontend import ast_nodes as ast

_INDENT = "  "


def print_modules(modules) -> str:
    """Render a dict or iterable of modules."""
    items = modules.values() if hasattr(modules, "values") else modules
    return "\n\n".join(print_module(m) for m in items)


def print_expr(expr: ast.Expr) -> str:
    """Render one expression (public wrapper used by ``repro.mutate``)."""
    return _expr(expr)


def print_stmt(stmt: ast.Stmt) -> str:
    """Render one statement as a single line (mutation-site labels)."""
    return " ".join(line.strip() for line in _stmt(stmt, 0))


def print_module(module: ast.Module) -> str:
    lines: List[str] = []
    ports = f"({', '.join(module.port_names)})" if module.port_names else ""
    lines.append(f"module {module.name}{ports};")
    for decl in module.decls:
        lines.append(_INDENT + _decl(decl))
    for assign in module.assigns:
        delay = f"#{_expr(assign.delay)} " if assign.delay is not None else ""
        lines.append(
            f"{_INDENT}assign {delay}{_expr(assign.lhs)} = "
            f"{_expr(assign.rhs)};"
        )
    for gate in module.gates:
        delay = f"#{_expr(gate.delay)} " if gate.delay is not None else ""
        terms = ", ".join(_expr(t) for t in gate.terminals)
        name = f" {gate.name}" if gate.name else ""
        lines.append(f"{_INDENT}{gate.gate} {delay}{name}({terms});")
    for inst in module.instances:
        lines.append(_instance(inst))
    for func in module.functions:
        lines.extend(_function(func))
    for task in module.tasks:
        lines.extend(_task(task))
    for process in module.processes:
        lines.append(f"{_INDENT}{process.kind}")
        lines.extend(_stmt(process.body, 2))
    lines.append("endmodule")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# declarations / items
# ----------------------------------------------------------------------


def _range(rng) -> str:
    return f"[{_expr(rng.msb)}:{_expr(rng.lsb)}] " if rng is not None else ""


def _decl(decl: ast.Decl) -> str:
    if decl.kind in ("parameter", "localparam"):
        return f"{decl.kind} {decl.name} = {_expr(decl.init)};"
    signed = "signed " if decl.signed and decl.kind not in ("integer",) else ""
    array = ""
    if decl.array is not None:
        array = f" [{_expr(decl.array.msb)}:{_expr(decl.array.lsb)}]"
    init = f" = {_expr(decl.init)}" if decl.init is not None else ""
    return f"{decl.kind} {signed}{_range(decl.range)}{decl.name}{array}{init};"


def _instance(inst: ast.ModuleInst) -> str:
    params = ""
    if inst.param_overrides:
        params = " #(" + ", ".join(
            _connection(c) for c in inst.param_overrides
        ) + ")"
    conns = ", ".join(_connection(c) for c in inst.connections)
    return f"{_INDENT}{inst.module}{params} {inst.name} ({conns});"


def _connection(conn: ast.PortConnection) -> str:
    expr = _expr(conn.expr) if conn.expr is not None else ""
    if conn.name is not None:
        return f".{conn.name}({expr})"
    return expr


def _function(func: ast.FunctionDecl) -> List[str]:
    signed = "signed " if func.signed else ""
    lines = [f"{_INDENT}function {signed}{_range(func.range)}{func.name};"]
    for port in func.ports:
        lines.append(_INDENT * 2 + _decl(port).replace(";", ";"))
    for decl in func.decls:
        lines.append(_INDENT * 2 + _decl(decl))
    lines.extend(_stmt(func.body, 2))
    lines.append(f"{_INDENT}endfunction")
    return lines


def _task(task: ast.TaskDecl) -> List[str]:
    lines = [f"{_INDENT}task {task.name};"]
    for port in task.ports:
        lines.append(_INDENT * 2 + _decl(port))
    for decl in task.decls:
        lines.append(_INDENT * 2 + _decl(decl))
    lines.extend(_stmt(task.body, 2))
    lines.append(f"{_INDENT}endtask")
    return lines


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------


def _stmt(stmt: ast.Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    if stmt is None or isinstance(stmt, ast.NullStmt):
        return [pad + ";"]
    if isinstance(stmt, ast.Block):
        name = f" : {stmt.name}" if stmt.name else ""
        lines = [f"{pad}begin{name}"]
        for decl in stmt.decls:
            lines.append(_INDENT * (depth + 1) + _decl(decl))
        for sub in stmt.stmts:
            lines.extend(_stmt(sub, depth + 1))
        lines.append(f"{pad}end")
        return lines
    if isinstance(stmt, ast.ForkJoin):
        name = f" : {stmt.name}" if stmt.name else ""
        lines = [f"{pad}fork{name}"]
        for decl in stmt.decls:
            lines.append(_INDENT * (depth + 1) + _decl(decl))
        for branch in stmt.branches:
            lines.extend(_stmt(branch, depth + 1))
        lines.append(f"{pad}join")
        return lines
    if isinstance(stmt, ast.BlockingAssign):
        intra = ""
        if stmt.intra_delay is not None:
            intra = f"#{_expr(stmt.intra_delay)} "
        elif stmt.intra_event is not None:
            intra = f"@({_event_items(stmt.intra_event)}) "
        return [f"{pad}{_expr(stmt.lhs)} = {intra}{_expr(stmt.rhs)};"]
    if isinstance(stmt, ast.NonBlockingAssign):
        intra = f"#{_expr(stmt.intra_delay)} " \
            if stmt.intra_delay is not None else ""
        return [f"{pad}{_expr(stmt.lhs)} <= {intra}{_expr(stmt.rhs)};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({_expr(stmt.cond)})"]
        lines.extend(_stmt(stmt.then_stmt, depth + 1))
        if stmt.else_stmt is not None:
            lines.append(f"{pad}else")
            lines.extend(_stmt(stmt.else_stmt, depth + 1))
        return lines
    if isinstance(stmt, ast.Case):
        lines = [f"{pad}{stmt.kind} ({_expr(stmt.expr)})"]
        for item in stmt.items:
            label = ", ".join(_expr(e) for e in item.exprs) \
                if item.exprs else "default"
            lines.append(f"{pad}{_INDENT}{label}:")
            lines.extend(_stmt(item.stmt, depth + 2))
        lines.append(f"{pad}endcase")
        return lines
    if isinstance(stmt, ast.For):
        init = _plain_assign(stmt.init)
        step = _plain_assign(stmt.step)
        lines = [f"{pad}for ({init}; {_expr(stmt.cond)}; {step})"]
        lines.extend(_stmt(stmt.body, depth + 1))
        return lines
    if isinstance(stmt, ast.While):
        return [f"{pad}while ({_expr(stmt.cond)})"] + \
            _stmt(stmt.body, depth + 1)
    if isinstance(stmt, ast.Repeat):
        return [f"{pad}repeat ({_expr(stmt.count)})"] + \
            _stmt(stmt.body, depth + 1)
    if isinstance(stmt, ast.Forever):
        return [f"{pad}forever"] + _stmt(stmt.body, depth + 1)
    if isinstance(stmt, ast.DelayStmt):
        lines = [f"{pad}#{_expr(stmt.delay)}"]
        lines.extend(_stmt(stmt.stmt, depth + 1))
        return lines
    if isinstance(stmt, ast.EventStmt):
        sens = f"({_event_items(stmt.items)})" if stmt.items else "*"
        lines = [f"{pad}@{sens}"]
        lines.extend(_stmt(stmt.stmt, depth + 1))
        return lines
    if isinstance(stmt, ast.Wait):
        return [f"{pad}wait ({_expr(stmt.cond)})"] + \
            _stmt(stmt.stmt, depth + 1)
    if isinstance(stmt, ast.TaskCall):
        args = f"({', '.join(_expr(a) for a in stmt.args)})" \
            if stmt.args else ""
        return [f"{pad}{stmt.name}{args};"]
    if isinstance(stmt, ast.Disable):
        return [f"{pad}disable {stmt.name};"]
    if isinstance(stmt, ast.EventTrigger):
        return [f"{pad}-> {stmt.name};"]
    raise ReproError(f"cannot print statement {type(stmt).__name__}")


def _plain_assign(stmt: ast.BlockingAssign) -> str:
    return f"{_expr(stmt.lhs)} = {_expr(stmt.rhs)}"


def _event_items(items) -> str:
    parts = []
    for item in items:
        edge = f"{item.edge} " if item.edge else ""
        parts.append(f"{edge}{_expr(item.expr)}")
    return " or ".join(parts)


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


def _expr(expr: ast.Expr) -> str:
    if expr is None:
        return ""
    if isinstance(expr, ast.Number):
        sign = "s" if expr.signed else ""
        if not expr.sized:
            if expr.base == "d" and expr.signed and "x" not in expr.bits \
                    and "z" not in expr.bits and expr.width == 32:
                return str(int(expr.bits, 2))
            return f"'{sign}b{expr.bits}"
        return f"{expr.width}'{sign}b{expr.bits}"
    if isinstance(expr, ast.RealNumber):
        return repr(expr.value)
    if isinstance(expr, ast.StringLiteral):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Index):
        return f"{_expr(expr.base)}[{_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        return f"{_expr(expr.base)}[{_expr(expr.msb)}:{_expr(expr.lsb)}]"
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Repl):
        return "{" + _expr(expr.count) + "{" + _expr(expr.value) + "}}"
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, ast.Ternary):
        return (f"({_expr(expr.cond)} ? {_expr(expr.then_value)} : "
                f"{_expr(expr.else_value)})")
    if isinstance(expr, ast.FunctionCall):
        return f"{expr.name}({', '.join(_expr(a) for a in expr.args)})"
    if isinstance(expr, ast.SystemCall):
        if expr.args:
            return f"{expr.name}({', '.join(_expr(a) for a in expr.args)})"
        return expr.name
    raise ReproError(f"cannot print expression {type(expr).__name__}")
