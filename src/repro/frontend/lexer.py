"""Tokenizer and preprocessor for the Verilog-1995 subset.

The preprocessor handles ``\\`define`` (object-like), ``\\`undef``,
``\\`ifdef``/``\\`ifndef``/``\\`else``/``\\`endif``, ``\\`include`` (via a
caller-supplied resolver) and records/ignores ``\\`timescale``.  Macros
with arguments are rejected with a clear error — none of the paper's
constructs need them.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.errors import VerilogSyntaxError

KEYWORDS = frozenset(
    """
    module endmodule input output inout reg wire tri tri0 tri1 wand wor
    supply0 supply1 integer time real parameter localparam defparam
    initial always begin end if else case casez casex endcase default
    for while repeat forever disable wait assign deassign force release
    posedge negedge or task endtask function endfunction fork join
    signed scalared vectored genvar generate endgenerate not and nand
    nor xor xnor buf bufif0 bufif1 notif0 notif1 event edge small medium
    large specify endspecify
    """.split()
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<<", ">>>", "===", "!==", "**", "==", "!=", "<=", ">=", "<<", ">>",
    "&&", "||", "~&", "~|", "~^", "^~", "+:", "-:", "=>", "->",
    "(", ")", "[", "]", "{", "}", ";", ":", ",", ".", "#", "@", "?",
    "=", "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^", "$",
]

_NUMBER_RE = re.compile(
    r"(?:(\d[\d_]*)?\s*'\s*(s?)([bodhBODH])\s*([0-9a-fA-FxXzZ_\?]+))|(\d[\d_]*\.\d[\d_]*)|(\d[\d_]*)"
)
_IDENT_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_$]*")
_SYSID_RE = re.compile(r"\$[a-zA-Z_][a-zA-Z0-9_$]*")
_ESCAPED_RE = re.compile(r"\\[^\s]+")


class Token(NamedTuple):
    """One lexical token with its source position."""

    kind: str  # 'id', 'sysid', 'number', 'real', 'string', 'op', 'keyword', 'eof'
    value: str
    line: int
    col: int


class Lexer:
    """Convert preprocessed source text into a token list."""

    def __init__(self, text: str, filename: str = "<input>") -> None:
        self.text = text
        self.filename = filename

    def tokenize(self) -> List[Token]:
        """Return all tokens, terminated by a single ``eof`` token."""
        tokens: List[Token] = []
        text = self.text
        pos = 0
        line = 1
        line_start = 0
        length = len(text)
        while pos < length:
            char = text[pos]
            if char == "\n":
                line += 1
                pos += 1
                line_start = pos
                continue
            if char in " \t\r":
                pos += 1
                continue
            col = pos - line_start + 1
            if text.startswith("//", pos):
                end = text.find("\n", pos)
                pos = length if end < 0 else end
                continue
            if text.startswith("/*", pos):
                end = text.find("*/", pos + 2)
                if end < 0:
                    raise VerilogSyntaxError("unterminated block comment", line, col)
                line += text.count("\n", pos, end)
                if "\n" in text[pos:end]:
                    line_start = text.rfind("\n", pos, end) + 1
                pos = end + 2
                continue
            if char == '"':
                end = pos + 1
                chunks: List[str] = []
                while end < length and text[end] != '"':
                    if text[end] == "\\" and end + 1 < length:
                        esc = text[end + 1]
                        chunks.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(esc, esc))
                        end += 2
                    else:
                        chunks.append(text[end])
                        end += 1
                if end >= length:
                    raise VerilogSyntaxError("unterminated string", line, col)
                tokens.append(Token("string", "".join(chunks), line, col))
                pos = end + 1
                continue
            match = _NUMBER_RE.match(text, pos)
            if match and (char.isdigit() or char == "'"):
                if match.group(5) is not None:
                    tokens.append(Token("real", match.group(5), line, col))
                else:
                    tokens.append(Token("number", match.group(0), line, col))
                pos = match.end()
                # A based literal may follow an unsized decimal (e.g.
                # ``8 'hff`` with space) — the regex already consumed it.
                continue
            if char == "'":
                # based literal without preceding size, e.g. 'bx
                match = _NUMBER_RE.match(text, pos)
                if match:
                    tokens.append(Token("number", match.group(0), line, col))
                    pos = match.end()
                    continue
                raise VerilogSyntaxError(f"bad numeric literal at {char!r}", line, col)
            if char == "\\":
                match = _ESCAPED_RE.match(text, pos)
                if match:
                    tokens.append(Token("id", match.group(0)[1:], line, col))
                    pos = match.end()
                    continue
            if char == "$":
                match = _SYSID_RE.match(text, pos)
                if match:
                    tokens.append(Token("sysid", match.group(0), line, col))
                    pos = match.end()
                    continue
            match = _IDENT_RE.match(text, pos)
            if match:
                word = match.group(0)
                kind = "keyword" if word in KEYWORDS else "id"
                tokens.append(Token(kind, word, line, col))
                pos = match.end()
                continue
            if char == "`":
                raise VerilogSyntaxError(
                    "compiler directive reached the lexer — run preprocess() first",
                    line,
                    col,
                )
            for op in _OPERATORS:
                if text.startswith(op, pos):
                    tokens.append(Token("op", op, line, col))
                    pos += len(op)
                    break
            else:
                raise VerilogSyntaxError(f"unexpected character {char!r}", line, col)
        tokens.append(Token("eof", "", line, 0))
        return tokens


_DIRECTIVE_RE = re.compile(r"`([a-zA-Z_][a-zA-Z0-9_]*)")


def preprocess(
    text: str,
    defines: Optional[Dict[str, str]] = None,
    include_resolver: Optional[Callable[[str], str]] = None,
) -> str:
    """Expand compiler directives, returning plain Verilog text.

    ``defines`` seeds the macro table (like ``+define+`` on a simulator
    command line).  ``include_resolver`` maps an include filename to its
    text; when absent, ``\\`include`` raises.
    """
    macros: Dict[str, str] = dict(defines or {})
    out: List[str] = []
    # Condition stack: each entry is True when the current branch is live.
    live_stack: List[bool] = []
    lines = text.split("\n")
    i = 0
    in_block_comment = False
    while i < len(lines):
        line = lines[i]
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                out.append(line)
                i += 1
                continue
            in_block_comment = False
        stripped = line.lstrip()
        if not in_block_comment and stripped.startswith("`"):
            match = _DIRECTIVE_RE.match(stripped)
            name = match.group(1) if match else ""
            rest = stripped[match.end():].strip() if match else ""
            live = all(live_stack)
            if name == "define":
                if live:
                    parts = rest.split(None, 1)
                    if not parts:
                        raise VerilogSyntaxError("`define without a name", i + 1, 1)
                    if "(" in parts[0]:
                        raise VerilogSyntaxError(
                            "function-like `define macros are not supported", i + 1, 1
                        )
                    body = parts[1] if len(parts) > 1 else ""
                    while body.endswith("\\"):
                        i += 1
                        body = body[:-1] + "\n" + lines[i]
                    macros[parts[0]] = body
                out.append("")
            elif name == "undef":
                if live:
                    macros.pop(rest.strip(), None)
                out.append("")
            elif name == "ifdef":
                live_stack.append(rest.split()[0] in macros if rest.split() else False)
                out.append("")
            elif name == "ifndef":
                live_stack.append(rest.split()[0] not in macros if rest.split() else True)
                out.append("")
            elif name == "else":
                if not live_stack:
                    raise VerilogSyntaxError("`else without `ifdef", i + 1, 1)
                live_stack[-1] = not live_stack[-1]
                out.append("")
            elif name == "endif":
                if not live_stack:
                    raise VerilogSyntaxError("`endif without `ifdef", i + 1, 1)
                live_stack.pop()
                out.append("")
            elif name == "include":
                if live:
                    filename = rest.strip().strip('"')
                    if include_resolver is None:
                        raise VerilogSyntaxError(
                            f"`include {filename!r}: no include resolver configured",
                            i + 1,
                            1,
                        )
                    included = preprocess(
                        include_resolver(filename), macros, include_resolver
                    )
                    out.append(included)
                else:
                    out.append("")
            elif name in ("timescale", "celldefine", "endcelldefine", "resetall",
                          "default_nettype"):
                out.append("")
            else:
                raise VerilogSyntaxError(f"unknown directive `{name}", i + 1, 1)
            i += 1
            continue
        if all(live_stack):
            expanded, in_block_comment = _expand_macros(
                line, macros, i + 1, in_block_comment
            )
            out.append(expanded)
        else:
            out.append("")
        i += 1
    if live_stack:
        raise VerilogSyntaxError("unterminated `ifdef", len(lines), 1)
    return "\n".join(out)


def _expand_macros(
    line: str, macros: Dict[str, str], lineno: int, in_block_comment: bool
) -> "Tuple[str, bool]":
    """Expand macros in the code portions of ``line``.

    Text inside ``//`` and ``/* */`` comments and string literals is
    left untouched; returns the new line and the block-comment state at
    the line's end.
    """
    out: List[str] = []
    pos = 0
    guard = 0
    while pos < len(line):
        if in_block_comment:
            end = line.find("*/", pos)
            if end < 0:
                out.append(line[pos:])
                pos = len(line)
            else:
                out.append(line[pos:end + 2])
                pos = end + 2
                in_block_comment = False
            continue
        char = line[pos]
        if line.startswith("//", pos):
            out.append(line[pos:])
            break
        if line.startswith("/*", pos):
            out.append("/*")
            pos += 2
            in_block_comment = True
            continue
        if char == '"':
            end = pos + 1
            while end < len(line) and line[end] != '"':
                end += 2 if line[end] == "\\" else 1
            out.append(line[pos:min(end + 1, len(line))])
            pos = min(end + 1, len(line))
            continue
        if char == "`":
            match = _DIRECTIVE_RE.match(line, pos)
            if not match:
                raise VerilogSyntaxError("stray ` character", lineno, 1)
            name = match.group(1)
            if name not in macros:
                raise VerilogSyntaxError(f"undefined macro `{name}", lineno, 1)
            guard += 1
            if guard > 100:
                raise VerilogSyntaxError("recursive macro expansion", lineno, 1)
            # splice the body back into the scan stream so nested
            # macros expand too
            line = line[:pos] + macros[name] + line[match.end():]
            continue
        out.append(char)
        pos += 1
    return "".join(out), in_block_comment
