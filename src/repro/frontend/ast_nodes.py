"""AST node classes for the Verilog frontend.

Plain dataclasses, one per construct.  Expression nodes carry no type
information — widths and signedness are computed by the expression
compiler (``repro.compile.expr``) using 1364's self-determined /
context-determined sizing rules at compile time, when declarations are
known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    line: int = field(default=0, compare=False)


@dataclass
class Number(Expr):
    """A numeric literal.

    ``bits`` is the canonical MSB-first 0/1/x/z string at width
    ``width``; ``sized`` records whether the literal had an explicit
    size (affects context sizing of x/z fill).
    """

    bits: str = "0"
    width: int = 32
    signed: bool = False
    sized: bool = False
    base: str = "d"


@dataclass
class RealNumber(Expr):
    """A real literal — only meaningful in delay contexts."""

    value: float = 0.0


@dataclass
class StringLiteral(Expr):
    """A string literal (vector of 8-bit ASCII codes, or a format)."""

    value: str = ""


@dataclass
class Identifier(Expr):
    """A simple or hierarchical identifier (``a`` or ``top.u1.a``)."""

    parts: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return ".".join(self.parts)


@dataclass
class Index(Expr):
    """Bit select or memory-word select ``base[index]``."""

    base: Expr = None
    index: Expr = None


@dataclass
class PartSelect(Expr):
    """Constant part select ``base[msb:lsb]``."""

    base: Expr = None
    msb: Expr = None
    lsb: Expr = None


@dataclass
class Concat(Expr):
    """Concatenation ``{a, b, c}``."""

    parts: List[Expr] = field(default_factory=list)


@dataclass
class Repl(Expr):
    """Replication ``{n{expr}}``."""

    count: Expr = None
    value: Expr = None


@dataclass
class Unary(Expr):
    """Unary operator application."""

    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    """Binary operator application."""

    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Ternary(Expr):
    """Conditional operator ``cond ? a : b``."""

    cond: Expr = None
    then_value: Expr = None
    else_value: Expr = None


@dataclass
class FunctionCall(Expr):
    """User-defined function call."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class SystemCall(Expr):
    """System function/task reference in expression position.

    e.g. ``$random``, ``$time``, ``$signed(x)``.
    """

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""

    line: int = field(default=0, compare=False)


@dataclass
class NullStmt(Stmt):
    """The empty statement ``;``."""


@dataclass
class Block(Stmt):
    """``begin [: name] ... end`` — sequential block with local decls."""

    name: Optional[str] = None
    decls: List["Decl"] = field(default_factory=list)
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class ForkJoin(Stmt):
    """``fork [: name] ... join`` — parallel branches with a barrier."""

    name: Optional[str] = None
    decls: List["Decl"] = field(default_factory=list)
    branches: List[Stmt] = field(default_factory=list)


@dataclass
class BlockingAssign(Stmt):
    """``lhs = [#d | @(...)] rhs``."""

    lhs: Expr = None
    rhs: Expr = None
    intra_delay: Optional[Expr] = None
    intra_event: Optional[List["EventItem"]] = None


@dataclass
class NonBlockingAssign(Stmt):
    """``lhs <= [#d] rhs``."""

    lhs: Expr = None
    rhs: Expr = None
    intra_delay: Optional[Expr] = None


@dataclass
class If(Stmt):
    """``if (cond) then_stmt [else else_stmt]``."""

    cond: Expr = None
    then_stmt: Stmt = None
    else_stmt: Optional[Stmt] = None


@dataclass
class CaseItem:
    """One arm of a case statement (``exprs`` empty for ``default``)."""

    exprs: List[Expr] = field(default_factory=list)
    stmt: Stmt = None


@dataclass
class Case(Stmt):
    """``case``/``casez``/``casex`` statement."""

    kind: str = "case"
    expr: Expr = None
    items: List[CaseItem] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``for (init; cond; step) body``."""

    init: Stmt = None
    cond: Expr = None
    step: Stmt = None
    body: Stmt = None


@dataclass
class While(Stmt):
    """``while (cond) body``."""

    cond: Expr = None
    body: Stmt = None


@dataclass
class Repeat(Stmt):
    """``repeat (count) body``."""

    count: Expr = None
    body: Stmt = None


@dataclass
class Forever(Stmt):
    """``forever body``."""

    body: Stmt = None


@dataclass
class DelayStmt(Stmt):
    """``#delay stmt`` (stmt may be null)."""

    delay: Expr = None
    stmt: Stmt = None


@dataclass
class EventItem:
    """One sensitivity term: optional edge + expression."""

    edge: Optional[str]  # None | 'posedge' | 'negedge'
    expr: Expr


@dataclass
class EventStmt(Stmt):
    """``@(items) stmt`` — ``items`` empty means ``@*``."""

    items: List[EventItem] = field(default_factory=list)
    stmt: Stmt = None


@dataclass
class Wait(Stmt):
    """``wait (cond) stmt``."""

    cond: Expr = None
    stmt: Stmt = None


@dataclass
class TaskCall(Stmt):
    """User task enable or system task enable as a statement."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)
    is_system: bool = False


@dataclass
class Disable(Stmt):
    """``disable block_name``."""

    name: str = ""


@dataclass
class EventTrigger(Stmt):
    """``-> event_name``."""

    name: str = ""


# ----------------------------------------------------------------------
# module items
# ----------------------------------------------------------------------


@dataclass
class Range:
    """A ``[msb:lsb]`` range with unevaluated bound expressions."""

    msb: Expr
    lsb: Expr


@dataclass
class Decl:
    """A data declaration.

    ``kind`` is one of reg/wire/tri/tri0/tri1/wand/wor/integer/time/
    event/parameter/localparam/input/output/inout/genvar.
    """

    kind: str = ""
    name: str = ""
    range: Optional[Range] = None
    array: Optional[Range] = None
    signed: bool = False
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class ContAssign:
    """``assign [#d] lhs = rhs``."""

    lhs: Expr
    rhs: Expr
    delay: Optional[Expr] = None
    line: int = 0


@dataclass
class Process:
    """``initial``/``always`` construct."""

    kind: str  # 'initial' | 'always'
    body: Stmt = None
    line: int = 0


@dataclass
class GateInst:
    """Primitive gate instance (``and g1 (o, a, b);``)."""

    gate: str = ""
    name: str = ""
    delay: Optional[Expr] = None
    terminals: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class PortConnection:
    """One port hookup; ``name`` is None for ordered connection."""

    name: Optional[str]
    expr: Optional[Expr]


@dataclass
class ModuleInst:
    """Module instantiation with parameter overrides."""

    module: str = ""
    name: str = ""
    param_overrides: List[PortConnection] = field(default_factory=list)
    connections: List[PortConnection] = field(default_factory=list)
    line: int = 0


@dataclass
class TaskDecl:
    """``task ... endtask`` — ports become local variables when inlined."""

    name: str = ""
    ports: List[Decl] = field(default_factory=list)
    decls: List[Decl] = field(default_factory=list)
    body: Stmt = None
    line: int = 0


@dataclass
class FunctionDecl:
    """``function [range] name; ... endfunction``."""

    name: str = ""
    range: Optional[Range] = None
    signed: bool = False
    ports: List[Decl] = field(default_factory=list)
    decls: List[Decl] = field(default_factory=list)
    body: Stmt = None
    line: int = 0


@dataclass
class Module:
    """One parsed module."""

    name: str = ""
    port_names: List[str] = field(default_factory=list)
    decls: List[Decl] = field(default_factory=list)
    assigns: List[ContAssign] = field(default_factory=list)
    processes: List[Process] = field(default_factory=list)
    instances: List[ModuleInst] = field(default_factory=list)
    gates: List[GateInst] = field(default_factory=list)
    tasks: List[TaskDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
    line: int = 0
