"""Hierarchy elaboration: modules → a flat :class:`Design`.

Elaboration instantiates the module tree, resolves parameters to
constants, assigns every declared object a full hierarchical name
(``tb.dut.cpu.acc``), converts port connections and gate primitives to
continuous assigns, and collects every ``initial``/``always`` process
together with the :class:`Scope` needed to resolve its identifiers.

No behavioral compilation happens here — statements stay as ASTs; the
compiler (``repro.compile``) turns them into micro-instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ElaborationError
from repro.frontend import ast_nodes as ast

_NET_KINDS = frozenset(["wire", "tri", "tri0", "tri1", "wand", "wor",
                        "supply0", "supply1"])
_VAR_KINDS = frozenset(["reg", "integer", "time", "event"])


@dataclass
class NetInfo:
    """Elaborated storage object (variable or net)."""

    full_name: str
    kind: str
    msb: int = 0
    lsb: int = 0
    signed: bool = False
    array: Optional[Tuple[int, int]] = None  # (low, high) word indices
    line: int = 0

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1

    @property
    def is_net(self) -> bool:
        return self.kind in _NET_KINDS

    def bit_offset(self, index: int) -> int:
        """Map a declared bit index to a 0-based LSB offset."""
        if self.msb >= self.lsb:
            return index - self.lsb
        return self.lsb - index


@dataclass
class Scope:
    """Symbol table for one module instance (or generated sub-scope)."""

    path: str  # '' for top
    module: ast.Module
    design: "Design"
    params: Dict[str, int] = field(default_factory=dict)
    locals: Dict[str, str] = field(default_factory=dict)  # local → full name

    def full_name(self, local: str) -> str:
        return f"{self.path}.{local}" if self.path else local

    def lookup(self, parts: Tuple[str, ...]) -> Optional[str]:
        """Resolve a (possibly hierarchical) identifier to a net name.

        Simple names use the local table; dotted names are resolved
        relative to this instance first, then from the design root —
        this is what lets non-synthesizable checkers peek into the DUT.
        """
        if len(parts) == 1:
            return self.locals.get(parts[0])
        dotted = ".".join(parts)
        relative = f"{self.path}.{dotted}" if self.path else dotted
        if relative in self.design.nets:
            return relative
        if dotted in self.design.nets:
            return dotted
        return None

    def find_function(self, name: str) -> Optional[ast.FunctionDecl]:
        for func in self.module.functions:
            if func.name == name:
                return func
        return None

    def find_task(self, name: str) -> Optional[ast.TaskDecl]:
        for task in self.module.tasks:
            if task.name == name:
                return task
        return None


@dataclass
class ScopedProcess:
    """One initial/always process with its resolution scope."""

    kind: str
    body: ast.Stmt
    scope: Scope
    name: str = ""
    line: int = 0


@dataclass
class ScopedAssign:
    """One continuous assign (or port/gate hookup) with scopes.

    ``lhs_scope``/``rhs_scope`` differ for port connections, where the
    two sides live in different module instances.
    """

    lhs: ast.Expr
    rhs: ast.Expr
    lhs_scope: Scope
    rhs_scope: Scope
    delay: Optional[int] = None
    line: int = 0


class Design:
    """The flat, elaborated design: nets + processes + assigns."""

    def __init__(self, top: str) -> None:
        self.top = top
        self.nets: Dict[str, NetInfo] = {}
        self.processes: List[ScopedProcess] = []
        self.assigns: List[ScopedAssign] = []
        self.scopes: Dict[str, Scope] = {}

    def add_net(self, info: NetInfo) -> None:
        if info.full_name in self.nets:
            raise ElaborationError(f"duplicate object {info.full_name!r}")
        self.nets[info.full_name] = info

    def net(self, full_name: str) -> NetInfo:
        try:
            return self.nets[full_name]
        except KeyError:
            raise ElaborationError(f"unknown object {full_name!r}") from None


def elaborate(
    modules: Dict[str, ast.Module], top: Optional[str] = None
) -> Design:
    """Build the flat design, starting from ``top``.

    When ``top`` is omitted, the unique module that is never
    instantiated is used (the usual testbench detection rule).
    """
    if not modules:
        raise ElaborationError("no modules to elaborate")
    if top is None:
        instantiated = {
            inst.module for module in modules.values() for inst in module.instances
        }
        candidates = [name for name in modules if name not in instantiated]
        if len(candidates) != 1:
            raise ElaborationError(
                f"cannot infer top module (candidates: {sorted(candidates)}); "
                "pass top= explicitly"
            )
        top = candidates[0]
    if top not in modules:
        raise ElaborationError(f"top module {top!r} not found")
    design = Design(top)
    _instantiate(design, modules, modules[top], path="", params={},
                 ancestry=(top,))
    return design


def _instantiate(
    design: Design,
    modules: Dict[str, ast.Module],
    module: ast.Module,
    path: str,
    params: Dict[str, int],
    ancestry: Tuple[str, ...],
) -> Scope:
    scope = Scope(path=path, module=module, design=design)
    design.scopes[path] = scope

    # 1. parameters (body order; overrides win)
    for decl in module.decls:
        if decl.kind in ("parameter", "localparam"):
            if decl.kind == "parameter" and decl.name in params:
                scope.params[decl.name] = params[decl.name]
            else:
                scope.params[decl.name] = const_eval(decl.init, scope)
    unknown = set(params) - set(scope.params)
    if unknown:
        raise ElaborationError(
            f"{module.name}: parameter override for unknown {sorted(unknown)}"
        )

    # 2. data declarations — merge direction decls with reg decls
    merged: Dict[str, ast.Decl] = {}
    directions: Dict[str, str] = {}
    for decl in module.decls:
        if decl.kind in ("parameter", "localparam", "genvar"):
            continue
        if decl.kind in ("input", "output", "inout"):
            directions[decl.name] = decl.kind
            if decl.name not in merged:
                merged[decl.name] = ast.Decl(
                    kind="wire", name=decl.name, range=decl.range,
                    signed=decl.signed, line=decl.line
                )
            continue
        if decl.name in merged and merged[decl.name].kind == "wire" and \
                decl.kind in _VAR_KINDS:
            # 'output foo; reg foo;' — the reg declaration wins.
            merged[decl.name] = ast.Decl(
                kind=decl.kind, name=decl.name,
                range=decl.range or merged[decl.name].range,
                array=decl.array,
                signed=decl.signed or merged[decl.name].signed,
                init=decl.init, line=decl.line
            )
        elif decl.name in merged:
            raise ElaborationError(
                f"{module.name}: duplicate declaration of {decl.name!r}"
            )
        else:
            merged[decl.name] = decl

    init_assigns: List[Tuple[str, ast.Expr]] = []
    for name, decl in merged.items():
        info = _decl_to_net(design, scope, decl)
        scope.locals[name] = info.full_name
        design.add_net(info)
        if decl.init is not None:
            init_assigns.append((name, decl.init))

    # Declaration initializers behave like an initial block.
    for name, init in init_assigns:
        body = ast.BlockingAssign(
            lhs=ast.Identifier(parts=(name,)), rhs=init
        )
        design.processes.append(
            ScopedProcess(kind="initial", body=body, scope=scope,
                          name=f"{path or design.top}.init.{name}")
        )

    # 3. continuous assigns
    for assign in module.assigns:
        delay = None
        if assign.delay is not None:
            delay = const_eval(assign.delay, scope)
        design.assigns.append(
            ScopedAssign(lhs=assign.lhs, rhs=assign.rhs, lhs_scope=scope,
                         rhs_scope=scope, delay=delay, line=assign.line)
        )

    # 4. gate primitives → continuous assigns
    for gate in module.gates:
        _elaborate_gate(design, scope, gate)

    # 5. behavioral processes
    for index, process in enumerate(module.processes):
        design.processes.append(
            ScopedProcess(kind=process.kind, body=process.body, scope=scope,
                          name=f"{path or design.top}.{process.kind}{index}",
                          line=process.line)
        )

    # 6. child instances
    for inst in module.instances:
        if inst.module not in modules:
            raise ElaborationError(
                f"{module.name}: unknown module {inst.module!r} "
                f"(instance {inst.name!r})"
            )
        if inst.module in ancestry:
            raise ElaborationError(
                f"recursive instantiation of {inst.module!r}"
            )
        child_module = modules[inst.module]
        child_params = _resolve_param_overrides(scope, child_module, inst)
        child_path = f"{path}.{inst.name}" if path else inst.name
        child_scope = _instantiate(
            design, modules, child_module, child_path, child_params,
            ancestry + (inst.module,)
        )
        _connect_ports(design, scope, child_scope, child_module, inst)
    return scope


def _decl_to_net(design: Design, scope: Scope, decl: ast.Decl) -> NetInfo:
    msb = lsb = 0
    if decl.kind == "integer":
        msb = 31
    elif decl.kind == "time":
        msb = 63
    elif decl.range is not None:
        msb = const_eval(decl.range.msb, scope)
        lsb = const_eval(decl.range.lsb, scope)
    array = None
    if decl.array is not None:
        first = const_eval(decl.array.msb, scope)
        second = const_eval(decl.array.lsb, scope)
        array = (min(first, second), max(first, second))
    return NetInfo(
        full_name=scope.full_name(decl.name), kind=decl.kind, msb=msb,
        lsb=lsb, signed=decl.signed, array=array, line=decl.line
    )


def _resolve_param_overrides(
    scope: Scope, child: ast.Module, inst: ast.ModuleInst
) -> Dict[str, int]:
    overrides: Dict[str, int] = {}
    if not inst.param_overrides:
        return overrides
    param_names = [d.name for d in child.decls if d.kind == "parameter"]
    positional = 0
    for conn in inst.param_overrides:
        if conn.expr is None:
            continue
        value = const_eval(conn.expr, scope)
        if conn.name is not None:
            overrides[conn.name] = value
        else:
            if positional >= len(param_names):
                raise ElaborationError(
                    f"{inst.name}: too many positional parameter overrides"
                )
            overrides[param_names[positional]] = value
            positional += 1
    return overrides


def _connect_ports(
    design: Design,
    parent: Scope,
    child: Scope,
    child_module: ast.Module,
    inst: ast.ModuleInst,
) -> None:
    directions = {
        d.name: d.kind
        for d in child_module.decls
        if d.kind in ("input", "output", "inout")
    }
    # Build port→expression map
    port_map: Dict[str, Optional[ast.Expr]] = {}
    if inst.connections and inst.connections[0].name is not None:
        for conn in inst.connections:
            if conn.name in port_map:
                raise ElaborationError(
                    f"{inst.name}: duplicate connection for port {conn.name!r}"
                )
            if conn.name not in child_module.port_names:
                raise ElaborationError(
                    f"{inst.name}: module {child_module.name!r} has no port "
                    f"{conn.name!r}"
                )
            port_map[conn.name] = conn.expr
    else:
        if len(inst.connections) > len(child_module.port_names):
            raise ElaborationError(
                f"{inst.name}: too many port connections for "
                f"{child_module.name!r}"
            )
        for port_name, conn in zip(child_module.port_names, inst.connections):
            port_map[port_name] = conn.expr

    for port_name in child_module.port_names:
        expr = port_map.get(port_name)
        direction = directions.get(port_name)
        if direction is None:
            raise ElaborationError(
                f"{child_module.name}: port {port_name!r} has no direction"
            )
        port_ident = ast.Identifier(parts=(port_name,))
        if expr is None:
            continue  # unconnected port: child side floats (X/Z defaults)
        if direction == "input":
            design.assigns.append(
                ScopedAssign(lhs=port_ident, rhs=expr, lhs_scope=child,
                             rhs_scope=parent, line=inst.line)
            )
        elif direction == "output":
            design.assigns.append(
                ScopedAssign(lhs=expr, rhs=port_ident, lhs_scope=parent,
                             rhs_scope=child, line=inst.line)
            )
        else:  # inout — alias the child port to the parent net
            if not isinstance(expr, ast.Identifier):
                raise ElaborationError(
                    f"{inst.name}: inout port {port_name!r} must connect to a "
                    "simple identifier"
                )
            parent_name = parent.lookup(expr.parts)
            if parent_name is None:
                raise ElaborationError(
                    f"{inst.name}: unknown net {expr.name!r} on inout port"
                )
            child_name = child.locals[port_name]
            del design.nets[child_name]
            child.locals[port_name] = parent_name


_GATE_FUNCS = {
    "and": ("&", False), "nand": ("&", True),
    "or": ("|", False), "nor": ("|", True),
    "xor": ("^", False), "xnor": ("^", True),
}


def _elaborate_gate(design: Design, scope: Scope, gate: ast.GateInst) -> None:
    delay = const_eval(gate.delay, scope) if gate.delay is not None else None
    terminals = gate.terminals
    if gate.gate in _GATE_FUNCS:
        if len(terminals) < 3:
            raise ElaborationError(f"gate {gate.gate} needs >= 3 terminals")
        op, invert = _GATE_FUNCS[gate.gate]
        rhs: ast.Expr = terminals[1]
        for term in terminals[2:]:
            rhs = ast.Binary(op=op, left=rhs, right=term)
        if invert:
            rhs = ast.Unary(op="~", operand=rhs)
    elif gate.gate in ("not", "buf"):
        if len(terminals) != 2:
            raise ElaborationError(f"gate {gate.gate} needs 2 terminals")
        rhs = terminals[1]
        if gate.gate == "not":
            rhs = ast.Unary(op="~", operand=rhs)
    elif gate.gate in ("bufif0", "bufif1", "notif0", "notif1"):
        if len(terminals) != 3:
            raise ElaborationError(f"gate {gate.gate} needs 3 terminals")
        data: ast.Expr = terminals[1]
        if gate.gate.startswith("notif"):
            data = ast.Unary(op="~", operand=data)
        enable = terminals[2]
        if gate.gate.endswith("0"):
            enable = ast.Unary(op="!", operand=enable)
        rhs = ast.Ternary(
            cond=enable, then_value=data,
            else_value=ast.Number(bits="z", width=1, sized=True, base="b"),
        )
    else:
        raise ElaborationError(f"unsupported gate type {gate.gate!r}")
    design.assigns.append(
        ScopedAssign(lhs=terminals[0], rhs=rhs, lhs_scope=scope,
                     rhs_scope=scope, delay=delay, line=gate.line)
    )


# ----------------------------------------------------------------------
# constant expression evaluation (parameters, ranges, delays)
# ----------------------------------------------------------------------


def const_eval(expr: ast.Expr, scope: Scope) -> int:
    """Evaluate an elaboration-time constant expression to an int."""
    if expr is None:
        raise ElaborationError("missing constant expression")
    if isinstance(expr, ast.Number):
        if any(c in "xz" for c in expr.bits):
            raise ElaborationError("x/z digits in constant expression")
        value = int(expr.bits, 2)
        if expr.signed and expr.bits[0] == "1" and expr.sized:
            value -= 1 << expr.width
        return value
    if isinstance(expr, ast.RealNumber):
        return int(round(expr.value))
    if isinstance(expr, ast.Identifier):
        if len(expr.parts) == 1 and expr.parts[0] in scope.params:
            return scope.params[expr.parts[0]]
        raise ElaborationError(
            f"identifier {expr.name!r} is not a parameter (constant context)"
        )
    if isinstance(expr, ast.Unary):
        value = const_eval(expr.operand, scope)
        return {
            "+": lambda v: v,
            "-": lambda v: -v,
            "!": lambda v: int(v == 0),
            "~": lambda v: ~v,
        }.get(expr.op, _bad_const_op(expr.op))(value)
    if isinstance(expr, ast.Binary):
        left = const_eval(expr.left, scope)
        right = const_eval(expr.right, scope)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if b else _raise_div(),
            "%": lambda a, b: a % b if b else _raise_div(),
            "**": lambda a, b: a ** b,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
            ">>>": lambda a, b: a >> b,
            "<": lambda a, b: int(a < b),
            "<=": lambda a, b: int(a <= b),
            ">": lambda a, b: int(a > b),
            ">=": lambda a, b: int(a >= b),
            "==": lambda a, b: int(a == b),
            "!=": lambda a, b: int(a != b),
            "&": lambda a, b: a & b,
            "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
            "&&": lambda a, b: int(bool(a) and bool(b)),
            "||": lambda a, b: int(bool(a) or bool(b)),
        }
        if expr.op not in ops:
            raise ElaborationError(f"operator {expr.op!r} in constant expression")
        return ops[expr.op](left, right)
    if isinstance(expr, ast.Ternary):
        return (
            const_eval(expr.then_value, scope)
            if const_eval(expr.cond, scope)
            else const_eval(expr.else_value, scope)
        )
    raise ElaborationError(
        f"unsupported constant expression {type(expr).__name__}"
    )


def _bad_const_op(op: str):
    def fail(_value: int) -> int:
        raise ElaborationError(f"operator {op!r} in constant expression")

    return fail


def _raise_div() -> int:
    raise ElaborationError("division by zero in constant expression")
