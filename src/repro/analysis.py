"""Post-simulation analysis helpers.

Symbolic simulation leaves every net holding a *function* of the
injected variables — far more information than a scalar waveform.
These helpers turn that into answers a verification engineer asks for:

* which values can this net reach, over all simulated stimuli?
* under what condition (BDD) does it take a particular value?
* how many of the ``2^n`` covered stimuli drive it to each value?

All functions accept either a :class:`~repro.SymbolicSimulator` or a
:class:`~repro.sim.kernel.Kernel`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.bdd import FALSE, TRUE
from repro.fourval import FourVec, ops


def _kernel(sim_or_kernel):
    return getattr(sim_or_kernel, "kernel", sim_or_kernel)


def value_condition(sim_or_kernel, net: str, value: Union[int, str]) -> int:
    """BDD condition under which ``net`` equals ``value``.

    ``value`` may be an int (compared 0/1-exactly) or an MSB-first
    0/1/x/z string (compared ``===``-style, so X/Z patterns can be
    asked about too).
    """
    kern = _kernel(sim_or_kernel)
    current = kern.state.value(net)
    if isinstance(value, int):
        target = FourVec.from_int(kern.mgr, value, current.width)
    else:
        target = FourVec.from_verilog_bits(kern.mgr, value).resize(
            current.width
        )
    return ops.case_equal(current, target).truthy()


def reachable_values(
    sim_or_kernel, net: str, limit: Optional[int] = None
) -> List[str]:
    """All values ``net`` can take, as MSB-first bit strings.

    Enumerates by recursive case-splitting on the net's rails, so the
    cost is proportional to the number of *distinct* values (plus BDD
    ops), not ``2^width``.  ``limit`` caps the enumeration.
    """
    kern = _kernel(sim_or_kernel)
    value = kern.state.value(net)
    mgr = kern.mgr
    results: List[str] = []

    def walk(index: int, prefix: List[str], condition: int) -> bool:
        # returns False when the limit has been hit
        if limit is not None and len(results) >= limit:
            return False
        if index < 0:
            results.append("".join(prefix))
            return True
        a, b = value.bits[index]
        for char, bit_cond in (
            ("0", mgr.nor(a, b)),
            ("1", mgr.and_(a, mgr.not_(b))),
            ("z", mgr.and_(mgr.not_(a), b)),
            ("x", mgr.and_(a, b)),
        ):
            sub = mgr.and_(condition, bit_cond)
            if sub == FALSE:
                continue
            prefix.append(char)
            alive = walk(index - 1, prefix, sub)
            prefix.pop()
            if not alive:
                return False
        return True

    walk(value.width - 1, [], TRUE)
    return results


def value_histogram(
    sim_or_kernel, net: str, nvars: Optional[int] = None
) -> Dict[str, int]:
    """Map each reachable value of ``net`` to its stimulus count.

    The counts partition the ``2^nvars`` covered assignments (``nvars``
    defaults to all injected variables), i.e. they sum to ``2^nvars``.
    """
    kern = _kernel(sim_or_kernel)
    mgr = kern.mgr
    histogram: Dict[str, int] = {}
    for bits in reachable_values(sim_or_kernel, net):
        condition = value_condition(sim_or_kernel, net, bits)
        histogram[bits] = mgr.sat_count(condition, nvars=nvars)
    return histogram


def can_reach(sim_or_kernel, net: str, value: Union[int, str]) -> bool:
    """True when some covered stimulus drives ``net`` to ``value``."""
    return value_condition(sim_or_kernel, net, value) != FALSE


def witness_for(
    sim_or_kernel, net: str, value: Union[int, str]
) -> Optional[Dict[int, bool]]:
    """A variable assignment driving ``net`` to ``value`` (or None)."""
    kern = _kernel(sim_or_kernel)
    condition = value_condition(sim_or_kernel, net, value)
    return kern.mgr.sat_one(condition)
