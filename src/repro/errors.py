"""Exception hierarchy for the symbolic RTL simulator.

Every error raised by the package derives from :class:`ReproError`, so a
caller can catch one type for anything that goes wrong inside the
simulator while still being able to distinguish frontend problems
(:class:`VerilogSyntaxError`, :class:`ElaborationError`) from runtime
problems (:class:`SimulationError` and friends).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class BddError(ReproError):
    """Misuse of the BDD manager (foreign nodes, unknown variables...)."""


class FourValueError(ReproError):
    """Invalid four-valued vector operation (width mismatch, bad digit)."""


class VerilogSyntaxError(ReproError):
    """Lexical or syntactic error in Verilog source.

    Carries the source coordinates so tools can point at the offending
    text.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class ElaborationError(ReproError):
    """Semantic error while building the design hierarchy.

    Examples: unknown module, port width mismatch, undeclared identifier,
    recursive instantiation.
    """


class CompileError(ReproError):
    """The behavioral compiler met a construct it cannot translate."""


class SimulationError(ReproError):
    """Generic runtime error inside the simulation kernel."""


class SymbolicDelayError(SimulationError):
    """A delay expression evaluated to a symbolic (non-constant) value.

    The paper's simulator, like this one, requires concrete delays; the
    usual fix is to make the delay operand concrete in the testbench.
    """


class SimulationHang(SimulationError):
    """A zero-delay loop iterated more than the configured watchdog limit.

    Carries hang diagnostics: the simulation time the step was stuck
    at, the hottest event sites sampled after the watchdog tripped
    (``(label, count)`` pairs), and the largest path-control support
    seen among those events — everything needed to find the loop
    without re-running under a profiler.
    """

    def __init__(self, message: str, sim_time: int = 0,
                 top_sites=(), control_support: int = 0) -> None:
        super().__init__(message)
        self.sim_time = sim_time
        self.top_sites = list(top_sites)
        self.control_support = control_support


class SimulationAborted(SimulationError):
    """The resource guard gave up after exhausting its mitigation ladder.

    Raised *instead of* MemoryError or an open-ended hang when a
    :class:`repro.guard.ResourceBudgets` limit stays breached after
    every mitigation (GC, reordering, concretization) has fired.
    Carries the partial :class:`~repro.sim.kernel.SimResult` at the
    abort safe point and a :class:`repro.guard.BudgetReport`
    describing what was breached, what was tried, and where the
    rescue checkpoint (if any) was written.
    """

    def __init__(self, message: str, partial_result=None,
                 budget_report=None) -> None:
        super().__init__(message)
        self.partial_result = partial_result
        self.budget_report = budget_report


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or trusted.

    Covers I/O failures, truncated or corrupt snapshot files (payload
    checksum mismatch), version/format mismatches, and resuming
    against a different design than the one checkpointed.
    """


class AssertionViolation(SimulationError):
    """Raised (optionally) when ``$assert``/``$error`` fires.

    The attached :attr:`trace` is an
    :class:`repro.sim.trace.ErrorTrace` suitable for resimulation.
    """

    def __init__(self, message: str, trace=None) -> None:
        super().__init__(message)
        self.trace = trace


class ResimulationError(SimulationError):
    """Concrete resimulation diverged from the recorded error trace."""


class RequestError(ReproError):
    """A run request did not parse against ``repro.serve.request/1``.

    Raised by the :mod:`repro.api` schema functions — the one
    option/budget/retry parsing implementation behind CLI flags, batch
    manifests, mutation manifests and HTTP submissions.  The manifest
    loaders re-raise it as :class:`BatchError` / :class:`MutationError`
    so their callers keep one exception type per entry point; the HTTP
    front door maps it to a 400 with a single-line error body.
    """


class BatchError(ReproError):
    """The batch engine rejected a request or manifest.

    Covers malformed job manifests, duplicate run names, requests that
    carry per-process objects (an ``obs`` bundle) across the worker
    boundary, and batches whose worker pool could not be started.
    Failures of *individual runs* are never exceptions — they come back
    as :class:`repro.batch.RunOutcome` entries with a non-``OK`` status
    so one bad run cannot kill the batch.
    """


class QuarantinedRunError(BatchError):
    """A batch run exhausted its retry budget and was quarantined.

    Raised by :meth:`repro.batch.BatchResult.check_quarantine` (and by
    callers that prefer exceptions over scanning outcome rows) — never
    by the engine itself, which reports quarantine as a terminal
    :class:`repro.batch.RunOutcome` with ``quarantined=True``.  Carries
    the run ``name``, the ``attempts`` consumed, and the per-attempt
    ``failure_history`` (``{"attempt", "kind", "error", "worker_pid"}``
    records).
    """

    def __init__(self, message: str, name: str = "", attempts: int = 0,
                 failure_history=()) -> None:
        super().__init__(message)
        self.name = name
        self.attempts = attempts
        self.failure_history = list(failure_history)


class MutationError(ReproError):
    """The mutation engine rejected a plan, manifest or campaign.

    Covers malformed campaign manifests, unknown operators or target
    modules, out-of-range mutation sites, and campaigns whose baseline
    run is not clean (a mutation score is meaningless when the
    unmutated design already fails its checker).  Individual mutants
    that fail to compile or abort under a guard budget are *not*
    exceptions — they are classified ``invalid`` / ``aborted`` in the
    :class:`repro.mutate.CampaignReport` so one bad mutant cannot kill
    the campaign.
    """
