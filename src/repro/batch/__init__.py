"""``repro.batch`` — parallel batch simulation over a process pool.

One vocabulary for "run many simulations": describe each run as a
frozen :class:`RunRequest`, hand the list to :func:`run_batch`, get a
:class:`BatchResult` of per-run :class:`RunOutcome` rows back.  The
engine compiles every unique design exactly once, ships pickled
programs (not source) to the workers, survives individual run
failures, streams completions to a callback, and merges per-worker
trace shards into one Chrome trace.  See docs/BATCH.md.

Execution is *durable*: every run is dispatched under a lease, worker
deaths and lease timeouts requeue exactly the runs they held (capped
exponential backoff with deterministic jitter, governed by a
:class:`RetryPolicy`), runs that keep failing are quarantined with
their attempt history, and an append-only ``BATCHJRNL/1`` journal
under ``out_dir`` makes interrupted batches resumable with
``run_batch(..., resume=True)`` / ``symsim batch --resume``.

Quick start::

    from repro.batch import RunRequest, run_batch

    runs = [RunRequest(name=f"seed{s}", source=SRC,
                       options=repro.SimOptions(concrete_random=s))
            for s in range(32)]
    batch = run_batch(runs, workers=4,
                      on_result=lambda o: print(o.name, o.status.value))
    assert batch.ok
"""

from repro.batch.engine import (
    BATCH_SCHEMA, BatchResult, RunOutcome, run_batch,
)
from repro.batch.journal import (
    JOURNAL_NAME, JOURNAL_SCHEMA, BatchJournal, JournalState, catalog_sha,
    read_journal, request_fingerprint,
)
from repro.batch.manifest import load_manifest, load_policy
from repro.batch.queue import JobQueue, Lease, RetryPolicy
from repro.batch.request import RunRequest

__all__ = [
    "RunRequest", "RunOutcome", "BatchResult", "run_batch",
    "load_manifest", "BATCH_SCHEMA",
    # durability: leases, retries, quarantine (docs/BATCH.md)
    "RetryPolicy", "JobQueue", "Lease", "load_policy",
    # the BATCHJRNL/1 resumable journal (docs/ROBUSTNESS.md)
    "BatchJournal", "JournalState", "read_journal", "request_fingerprint",
    "catalog_sha", "JOURNAL_NAME", "JOURNAL_SCHEMA",
]
