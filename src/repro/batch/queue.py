"""Controller-side job queue: leases, retries, backoff, quarantine.

The durable half of the batch engine's brain.  Every run lives in
exactly one place at any moment:

``ready``
    queued, eligible to be handed to the next idle worker;
``delayed``
    queued but serving a retry backoff — becomes ready when its
    ``not_before`` deadline passes;
``leased``
    held by one worker under a :class:`Lease` (attempt number, worker
    pid, start times) — the unit of blast radius: when that worker
    dies, *this run and only this run* is affected;
``terminal``
    finished with a :class:`~repro.batch.engine.RunOutcome` — success,
    a run-level failure the policy does not retry, or quarantine.

Failures route through :meth:`JobQueue.fail`, which consults the
:class:`RetryPolicy`: retryable failures requeue with **capped
exponential backoff and deterministic seeded jitter** until
``max_attempts`` is exhausted, after which the run is **quarantined**
— terminal, with the full per-attempt failure history attached, so a
poison run (one that kills every worker that touches it) costs the
batch ``max_attempts`` workers, not the world.

Nothing in this module touches processes, files or clocks beyond the
monotonic timestamps handed in by the engine — it is a pure scheduling
data structure, unit-testable without a pool.
"""

from __future__ import annotations

import hashlib
import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BatchError

#: Failure kinds recorded in attempt histories.
FAILURE_KINDS = ("worker-lost", "stall-kill", "status")


@dataclass(frozen=True)
class RetryPolicy:
    """When and how failed runs are retried.

    Infrastructure failures — a worker process dying under a run
    (``worker-lost``) or a lease-timeout kill (``stall-kill``) — are
    always retryable: the run itself returned no verdict.  Run-level
    *statuses* (``aborted``, ``hang``) are deterministic verdicts and
    are retried only when listed in ``retry_statuses`` (opt-in: useful
    when aborts are environmental — memory pressure, injected chaos —
    rather than intrinsic).  ``ok`` and ``assert_failed`` are results,
    never failures, and are never retried.
    """

    #: Total attempts a run may consume (first try included).  1 means
    #: never retry; infrastructure failures then go straight to
    #: quarantine.
    max_attempts: int = 3
    #: Backoff before attempt ``n+1`` is ``backoff_base * 2**(n-1)``
    #: seconds, capped at ``backoff_cap``, jittered by ``jitter_frac``.
    backoff_base: float = 0.25
    backoff_cap: float = 30.0
    #: Deterministic jitter amplitude: the delay is scaled by a factor
    #: in ``[1 - jitter_frac, 1 + jitter_frac]`` derived from
    #: ``sha256(seed, run name, attempt)`` — stable across reruns,
    #: decorrelated across runs.
    jitter_frac: float = 0.25
    #: Jitter seed (vary to decorrelate two batches of the same runs).
    seed: int = 0
    #: Run-level terminal statuses that count as retryable failures.
    retry_statuses: frozenset = frozenset()
    #: Kill a leased run's worker and requeue the run when the run has
    #: been held longer than this many seconds without evidence of
    #: progress (a ``running`` heartbeat younger than this, or — with
    #: heartbeats disabled — any lease younger than this).  None
    #: disables the escalation; the flag-only ``stall_after`` watcher
    #: is independent.
    lease_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise BatchError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise BatchError("backoff must be non-negative")
        if not 0 <= self.jitter_frac <= 1:
            raise BatchError(
                f"jitter_frac must be in [0, 1], got {self.jitter_frac}")
        if self.lease_timeout is not None and self.lease_timeout <= 0:
            raise BatchError("lease_timeout must be positive")
        bad = set(self.retry_statuses) & {"ok", "assert_failed"}
        if bad:
            raise BatchError(
                f"cannot retry result statuses {sorted(bad)} — ok and "
                "assert_failed are verdicts, not failures")
        # normalize a caller-supplied iterable into a real frozenset
        object.__setattr__(self, "retry_statuses",
                           frozenset(self.retry_statuses))

    def backoff_delay(self, name: str, attempt: int) -> float:
        """Seconds to hold ``name`` back before attempt ``attempt``.

        Deterministic: capped exponential in the attempt number with
        seeded jitter keyed by ``(seed, name, attempt)``, so two
        controllers replaying the same failures schedule identically.
        """
        if attempt <= 1 or self.backoff_base == 0:
            return 0.0
        delay = min(self.backoff_base * (2.0 ** (attempt - 2)),
                    self.backoff_cap)
        if self.jitter_frac:
            digest = hashlib.sha256(
                f"{self.seed}:{name}:{attempt}".encode("utf-8")).digest()
            unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 + self.jitter_frac * (2.0 * unit - 1.0)
        return delay


@dataclass
class Lease:
    """One worker's claim on one run attempt."""

    name: str
    attempt: int
    worker_id: int
    worker_pid: int
    #: Wall-clock lease grant time (feeds heartbeat-age comparison).
    started_unix: float = field(default_factory=time.time)
    #: Monotonic grant time (feeds lease-timeout math).
    started_mono: float = field(default_factory=time.perf_counter)

    def age(self, now_mono: Optional[float] = None) -> float:
        if now_mono is None:
            now_mono = time.perf_counter()
        return max(now_mono - self.started_mono, 0.0)


@dataclass
class _Job:
    """Internal per-run scheduling state."""

    request: object
    fingerprint: str
    #: Attempt number the *next* dispatch will carry (1-based).
    attempt: int = 1
    history: List[dict] = field(default_factory=list)


class JobQueue:
    """The engine's run scheduler.  See the module docstring."""

    def __init__(self, jobs: Sequence[Tuple[object, str]],
                 policy: Optional[RetryPolicy] = None) -> None:
        self.policy = policy or RetryPolicy()
        self._jobs: Dict[str, _Job] = {}
        self._ready: deque = deque()
        self._delayed: List[Tuple[float, str]] = []  # (ready_mono, name)
        self.leases: Dict[str, Lease] = {}
        #: Terminal name -> RunOutcome, set by complete()/quarantine.
        self.outcomes: Dict[str, object] = {}
        #: Attempts beyond the first that were actually dispatched.
        self.retries = 0
        #: Requeue events (retry requeues + stall-kill requeues).
        self.requeued = 0
        #: Names quarantined after exhausting max_attempts.
        self.quarantined: List[str] = []
        for request, fingerprint in jobs:
            name = request.name
            self._jobs[name] = _Job(request=request, fingerprint=fingerprint)
            self._ready.append(name)

    # ------------------------------------------------------------------
    # state inspection

    def finished(self) -> bool:
        """True when every run holds a terminal outcome."""
        return len(self.outcomes) == len(self._jobs)

    def has_ready(self, now_mono: Optional[float] = None) -> bool:
        self._promote(now_mono)
        return bool(self._ready)

    def pending_names(self) -> List[str]:
        """Every non-terminal run (ready, delayed, or leased)."""
        return [name for name in self._jobs if name not in self.outcomes]

    def next_delay(self, now_mono: Optional[float] = None
                   ) -> Optional[float]:
        """Seconds until the earliest delayed run becomes ready."""
        self._promote(now_mono)
        if not self._delayed:
            return None
        if now_mono is None:
            now_mono = time.perf_counter()
        return max(self._delayed[0][0] - now_mono, 0.0)

    def _promote(self, now_mono: Optional[float] = None) -> None:
        if not self._delayed:
            return
        if now_mono is None:
            now_mono = time.perf_counter()
        while self._delayed and self._delayed[0][0] <= now_mono:
            _, name = heapq.heappop(self._delayed)
            self._ready.append(name)

    # ------------------------------------------------------------------
    # dispatch / completion

    def lease(self, worker_id: int, worker_pid: int,
              now_mono: Optional[float] = None) -> Optional[Lease]:
        """Hand the next ready run to a worker; None when none is due."""
        self._promote(now_mono)
        if not self._ready:
            return None
        name = self._ready.popleft()
        job = self._jobs[name]
        lease = Lease(name=name, attempt=job.attempt,
                      worker_id=worker_id, worker_pid=worker_pid)
        self.leases[name] = lease
        if job.attempt > 1:
            self.retries += 1
        return lease

    def job(self, name: str) -> _Job:
        return self._jobs[name]

    def release(self, name: str) -> None:
        """Return a leased run to the front of the ready queue unblamed.

        Used when a dispatch fails before the worker ever saw the job
        (its pipe was already closed) — the attempt did not happen, so
        no history is recorded and the attempt counter stays put.
        """
        self.leases.pop(name, None)
        self._ready.appendleft(name)

    def complete(self, name: str, outcome) -> None:
        """Record a terminal outcome (success or unretried failure)."""
        self.leases.pop(name, None)
        job = self._jobs[name]
        outcome.attempts = job.attempt
        outcome.failure_history = list(job.history)
        self.outcomes[name] = outcome

    def fail(self, name: str, kind: str, error: str,
             worker_pid: Optional[int] = None) -> dict:
        """Route one attempt's failure: requeue with backoff or
        quarantine.

        Returns a disposition record ``{"action": "requeue"|
        "quarantine", "attempt", "delay", ...}`` the engine journals.
        ``kind`` is one of :data:`FAILURE_KINDS`; infrastructure kinds
        are always retryable, ``status`` kinds only when the policy
        lists the status in ``retry_statuses`` (the engine checks that
        before calling — by the time a failure lands here it *is*
        retryable or terminal-by-exhaustion).
        """
        self.leases.pop(name, None)
        job = self._jobs[name]
        failed_attempt = job.attempt
        job.history.append({
            "attempt": failed_attempt, "kind": kind, "error": error,
            "worker_pid": worker_pid,
        })
        if failed_attempt >= self.policy.max_attempts:
            self.quarantined.append(name)
            return {"action": "quarantine", "attempt": failed_attempt,
                    "history": list(job.history)}
        job.attempt = failed_attempt + 1
        delay = self.policy.backoff_delay(name, job.attempt)
        self.requeued += 1
        if delay > 0:
            heapq.heappush(self._delayed,
                           (time.perf_counter() + delay, name))
        else:
            self._ready.append(name)
        return {"action": "requeue", "attempt": job.attempt,
                "delay": round(delay, 6)}
