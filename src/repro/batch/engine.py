"""The batch engine — fan :class:`RunRequest`\\ s across a worker pool.

Controller-side flow:

1. **Compile once.**  Every unique ``(source, top, defines)`` among the
   requests is parsed/elaborated/compiled exactly once, in the
   controller.  Workers receive the *pickled program* (a pre-compile
   design image that recompiles deterministically on unpickle — see
   ``Program.__reduce__``), never source text, so the front end runs
   once per design regardless of pool width or run count.
2. **Fan out.**  A ``ProcessPoolExecutor`` runs each request in a
   worker; workers hold a per-process program cache, their own trace
   shard, per-run checkpoint directories and the request's guard
   budgets.  One run aborting, hanging or crashing never kills the
   batch — failures come back as :class:`RunOutcome` rows.
3. **Stream + aggregate.**  Outcomes stream to an ``on_result``
   callback as they complete; after the pool drains, worker trace
   shards merge into one Chrome trace with a lane per worker, and an
   aggregated :class:`~repro.obs.MetricsRegistry` summarises the batch
   (``batch.*`` families, per-run labeled children).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.batch.request import RunRequest
from repro.batch.worker import _run_job, _worker_init
from repro.errors import BatchError
from repro.obs import MetricsRegistry, merge_shards
from repro.obs.live import DEFAULT_EVERY, RunHealth, assess_health, scan_status
from repro.sim.kernel import SimStatus

#: Schema tag of :meth:`BatchResult.to_dict` payloads.
BATCH_SCHEMA = "repro.batch.result/1"


@dataclass
class RunOutcome:
    """What happened to one request — success or any flavour of failure."""

    name: str
    status: SimStatus
    #: ``SimResult.to_dict()`` payload (present for OK / ASSERT_FAILED
    #: runs and for aborts that salvaged a partial result).
    result: Optional[dict] = None
    #: Human-readable failure description for non-OK statuses.
    error: Optional[str] = None
    wall_seconds: float = 0.0
    worker_pid: Optional[int] = None
    #: Path of the per-run VCD when the request asked for one.
    vcd_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is SimStatus.OK

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status.value,
            "ok": self.ok,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "worker_pid": self.worker_pid,
            "vcd_path": self.vcd_path,
            "result": self.result,
        }


@dataclass
class BatchResult:
    """Everything a drained batch produced, in request order."""

    outcomes: List[RunOutcome]
    out_dir: str
    workers: int
    wall_seconds: float
    designs_compiled: int
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Directory of per-run heartbeat status files (``symsim top`` tails
    #: it); None when heartbeats were disabled.
    status_dir: Optional[str] = None
    #: Run names the stall watcher flagged mid-batch (a stalled run may
    #: still finish — this records the observation, not a verdict).
    stalled_runs: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every run finished with :attr:`SimStatus.OK`."""
        return all(outcome.ok for outcome in self.outcomes)

    def counts(self) -> Dict[str, int]:
        """Run count per status value (only statuses that occurred)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status.value] = \
                counts.get(outcome.status.value, 0) + 1
        return counts

    def __getitem__(self, name: str) -> RunOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def summary(self) -> str:
        """One-paragraph human summary (the CLI's closing lines)."""
        counts = ", ".join(f"{status}={count}"
                           for status, count in sorted(self.counts().items()))
        lines = [
            f"batch: {len(self.outcomes)} runs on {self.workers} workers "
            f"in {self.wall_seconds:.2f}s ({counts}; "
            f"{self.designs_compiled} designs compiled once)"
        ]
        for outcome in self.outcomes:
            mark = "ok " if outcome.ok else outcome.status.value
            line = (f"  [{mark:>13}] {outcome.name} "
                    f"({outcome.wall_seconds:.2f}s)")
            if outcome.error:
                line += f" — {outcome.error}"
            lines.append(line)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": BATCH_SCHEMA,
            "ok": self.ok,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "designs_compiled": self.designs_compiled,
            "counts": self.counts(),
            "out_dir": self.out_dir,
            "trace_path": self.trace_path,
            "metrics_path": self.metrics_path,
            "status_dir": self.status_dir,
            "stalled_runs": list(self.stalled_runs),
            "runs": [outcome.to_dict() for outcome in self.outcomes],
        }


def _validate(requests: Sequence[RunRequest]) -> None:
    if not requests:
        raise BatchError("batch needs at least one RunRequest")
    seen = set()
    for request in requests:
        if not isinstance(request, RunRequest):
            raise BatchError(
                f"expected a RunRequest, got {type(request).__name__}")
        if request.name in seen:
            raise BatchError(f"duplicate run name {request.name!r} — run "
                             "names key batch artifacts and must be unique")
        seen.add(request.name)
        if request.options.obs is not None:
            raise BatchError(
                f"run {request.name!r} carries an obs bundle; observability "
                "instruments hold open files and cannot cross process "
                "boundaries — use run_batch(trace=...) instead")
        if request.options.heartbeat_callback is not None:
            raise BatchError(
                f"run {request.name!r} sets heartbeat_callback; callables "
                "cannot cross process boundaries — batch runs heartbeat to "
                "per-run status files under <out_dir>/status/ instead")


def _compile_catalog(
    requests: Sequence[RunRequest],
) -> Tuple[Dict[str, bytes], Dict[str, str]]:
    """Compile each unique design once.

    Returns ``(catalog, by_run)``: the fingerprint-keyed pickled
    programs shipped to workers, and each run name's fingerprint.
    """
    import hashlib

    from repro.compile import compile_design
    from repro.frontend import elaborate, parse_source

    catalog: Dict[str, bytes] = {}
    by_key: Dict[tuple, str] = {}
    by_run: Dict[str, str] = {}
    for request in requests:
        key = request.design_key()
        fingerprint = by_key.get(key)
        if fingerprint is None:
            source, top, defines = key
            # Content-address the catalog by the full design key, NOT
            # by the structural design_fingerprint(): structure (net
            # table + instruction counts) cannot tell apart designs
            # that differ only in an operator or a constant — exactly
            # the shape of a mutation campaign's mutants — and a
            # collision here would silently run one design in place of
            # another.
            fingerprint = hashlib.sha256(
                repr((source, top, defines)).encode("utf-8")).hexdigest()
            modules = parse_source(source, defines=dict(defines) or None)
            program = compile_design(elaborate(modules, top=top))
            by_key[key] = fingerprint
            catalog[fingerprint] = pickle.dumps(program)
        by_run[request.name] = fingerprint
    return catalog, by_run


def _aggregate_metrics(result: BatchResult) -> MetricsRegistry:
    """Fold per-run payloads into the batch's ``batch.*`` families."""
    registry = result.metrics
    registry.gauge("batch.workers", "pool width").set(result.workers)
    registry.gauge("batch.wall_seconds",
                   "controller wall time for the whole batch") \
        .set(result.wall_seconds)
    registry.counter("batch.designs_compiled",
                     "unique designs compiled (each exactly once)") \
        .inc(result.designs_compiled)
    registry.counter("batch.stalled_runs",
                     "runs flagged by the stall watcher mid-batch") \
        .inc(len(result.stalled_runs))
    runs = registry.counter("batch.runs", "runs by outcome",
                            labels=("status",))
    wall = registry.gauge("batch.run_wall_seconds",
                          "per-run wall time in its worker",
                          labels=("run",))
    events = registry.counter("batch.run_events_processed",
                              "kernel events processed per run",
                              labels=("run",))
    nodes = registry.gauge("batch.run_bdd_nodes",
                           "final BDD arena size per run", labels=("run",))
    sim_time = registry.gauge("batch.run_sim_time",
                              "final simulation time per run",
                              labels=("run",))
    for outcome in result.outcomes:
        runs.labels(status=outcome.status.value).inc()
        wall.labels(run=outcome.name).set(outcome.wall_seconds)
        if outcome.result is not None:
            metrics = outcome.result.get("metrics", {})
            events.labels(run=outcome.name).inc(
                metrics.get("events_processed", 0))
            nodes.labels(run=outcome.name).set(
                metrics.get("bdd", {}).get("nodes", 0))
            sim_time.labels(run=outcome.name).set(
                outcome.result.get("time", 0))
    return registry


def _watch_stalls(
    status_dir: str,
    in_flight: Sequence[str],
    stalled_seen: set,
    stall_after: float,
    on_stall: Optional[Callable[[RunHealth], None]],
) -> None:
    """One poll of the status directory; fires ``on_stall`` once per run.

    A run is stalled when its latest heartbeat still says ``running``
    but is older than ``stall_after`` seconds — the worker is wedged in
    one giant step, thrashing in the BDD, or dead without a terminal
    record.  This is the observability half of hang isolation: the
    in-kernel guard (``ResourceBudgets.hang_*``) kills a wedged run
    from the inside; the watcher spots it from the outside and tells
    the controller *which* run to blame before the pool drains.
    """
    pending_names = set(in_flight)
    for health in assess_health(scan_status([status_dir]),
                                stall_after=stall_after):
        if not health.stalled or health.name in stalled_seen:
            continue
        if health.name not in pending_names:
            continue  # already reaped; terminal record just lagged
        stalled_seen.add(health.name)
        if on_stall is not None:
            on_stall(health)


def run_batch(
    requests: Sequence[RunRequest],
    workers: int = 1,
    out_dir: Optional[str] = None,
    on_result: Optional[Callable[[RunOutcome], None]] = None,
    trace: bool = True,
    write_metrics: bool = True,
    heartbeat_every: Optional[int] = DEFAULT_EVERY,
    stall_after: Optional[float] = None,
    on_stall: Optional[Callable[[RunHealth], None]] = None,
) -> BatchResult:
    """Run every request on a pool of ``workers`` processes.

    ``on_result`` (if given) is called in the controller with each
    :class:`RunOutcome` as it completes — completion order, not request
    order; the returned :class:`BatchResult` restores request order.
    ``trace=True`` gives each worker a JSONL shard and merges them into
    ``<out_dir>/trace.json`` with one Chrome lane per worker.
    ``heartbeat_every`` makes each run emit a live status file to
    ``<out_dir>/status/<name>.json`` every N safe points (``symsim
    top`` tails these; pass ``None``/0 to disable).  ``stall_after``
    (seconds) turns on the stall watcher: while the pool drains, runs
    whose heartbeat goes quiet are reported once each through
    ``on_stall`` and in :attr:`BatchResult.stalled_runs`.
    Individual run failures never raise; :class:`BatchError` covers
    controller-side problems only (bad requests, pool startup).
    """
    _validate(requests)
    if workers < 1:
        raise BatchError(f"workers must be >= 1, got {workers}")
    if stall_after is not None and not heartbeat_every:
        raise BatchError("stall_after needs heartbeats — "
                         "set heartbeat_every")
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="repro-batch-")
    else:
        os.makedirs(out_dir, exist_ok=True)
    status_dir = os.path.join(out_dir, "status") if heartbeat_every else None

    wall_start = time.perf_counter()
    catalog, by_run = _compile_catalog(requests)

    outcomes: Dict[str, RunOutcome] = {}
    shards: Dict[int, Tuple[str, float]] = {}
    stalled_seen: set = set()
    try:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(catalog, out_dir, trace, heartbeat_every or None),
        )
    except Exception as exc:  # pool start is a controller-side failure
        raise BatchError(f"could not start worker pool: {exc}") from exc
    # Polling only happens when someone is watching for stalls; the
    # no-watcher path keeps the original block-until-done wait.
    poll = min(stall_after / 2.0, 2.0) if stall_after is not None else None
    with executor:
        pending = {
            executor.submit(_run_job, request, by_run[request.name]): request
            for request in requests
        }
        while pending:
            done, _ = wait(pending, timeout=poll,
                           return_when=FIRST_COMPLETED)
            if not done and status_dir is not None \
                    and stall_after is not None:
                _watch_stalls(
                    status_dir,
                    [request.name for request in pending.values()],
                    stalled_seen, stall_after, on_stall)
                continue
            for future in done:
                request = pending.pop(future)
                try:
                    raw = future.result()
                    outcome = RunOutcome(
                        name=raw["name"],
                        status=SimStatus(raw["status"]),
                        result=raw["result"],
                        error=raw["error"],
                        wall_seconds=raw["wall_seconds"],
                        worker_pid=raw["worker_pid"],
                        vcd_path=raw["vcd_path"],
                    )
                    if raw["shard_path"] is not None:
                        shards[raw["worker_pid"]] = (
                            raw["shard_path"], raw["t0_unix_us"])
                except Exception as exc:  # worker died (OOM kill, ...)
                    outcome = RunOutcome(
                        name=request.name, status=SimStatus.ABORTED,
                        error=f"worker lost: {exc}")
                outcomes[outcome.name] = outcome
                if on_result is not None:
                    on_result(outcome)

    result = BatchResult(
        outcomes=[outcomes[request.name] for request in requests],
        out_dir=out_dir,
        workers=workers,
        wall_seconds=time.perf_counter() - wall_start,
        designs_compiled=len(catalog),
        status_dir=status_dir,
        stalled_runs=sorted(stalled_seen),
    )
    if shards:
        result.trace_path = os.path.join(out_dir, "trace.json")
        merge_shards(shards, result.trace_path)
    _aggregate_metrics(result)
    if write_metrics:
        result.metrics_path = os.path.join(out_dir, "metrics.json")
        result.metrics.write_json(result.metrics_path)
    return result
