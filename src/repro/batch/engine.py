"""The batch engine — fan :class:`RunRequest`\\ s across a worker pool.

Controller-side flow:

1. **Compile once.**  Every unique ``(source, top, defines)`` among the
   requests is parsed/elaborated/compiled exactly once, in the
   controller.  Workers receive the *pickled program* (a pre-compile
   design image that recompiles deterministically on unpickle — see
   ``Program.__reduce__``), never source text, so the front end runs
   once per design regardless of pool width or run count.
2. **Fan out, durably.**  The controller owns a
   :class:`~repro.batch.queue.JobQueue` and a pool of long-lived
   worker processes, one in-flight run per worker under a
   :class:`~repro.batch.queue.Lease`.  A worker death (OOM kill,
   segfault, ``kill -9``) costs exactly the one leased run — it is
   requeued with capped, seeded-jitter exponential backoff while a
   replacement worker spawns; the rest of the batch never notices.  A
   run whose heartbeat goes silent past the policy's ``lease_timeout``
   is escalated stall → kill → requeue.  A run that keeps failing is
   **quarantined** after ``max_attempts`` with its full per-attempt
   failure history attached, so one poison run cannot starve the pool.
3. **Journal.**  Scheduling events and terminal outcomes append to
   ``<out_dir>/journal.jsonl`` (``BATCHJRNL/1``, see
   :mod:`repro.batch.journal`); ``run_batch(..., resume=True)``
   restores journaled terminal runs — after re-verifying request
   fingerprints and the design-catalog hash — and re-executes only the
   rest.
4. **Stream + aggregate.**  Terminal outcomes stream to an
   ``on_result`` callback as they land; after the queue drains, worker
   trace shards merge into one Chrome trace with a lane per worker,
   and an aggregated :class:`~repro.obs.MetricsRegistry` summarises
   the batch (``batch.*`` families, per-run labeled children).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from multiprocessing import connection as _mpconn
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.batch.journal import (
    JOURNAL_NAME, BatchJournal, catalog_sha, read_journal,
    request_fingerprint,
)
from repro.batch.queue import JobQueue, Lease, RetryPolicy
from repro.batch.request import RunRequest
from repro.batch.worker import _worker_main
from repro.errors import BatchError, QuarantinedRunError
from repro.obs import MetricsRegistry, merge_shards
from repro.obs.live import (
    DEFAULT_EVERY, RunHealth, assess_health, assess_lease, read_status,
    scan_status,
)
from repro.sim.kernel import SimStatus

#: Schema tag of :meth:`BatchResult.to_dict` payloads.
BATCH_SCHEMA = "repro.batch.result/1"


@dataclass
class RunOutcome:
    """What happened to one request — success or any flavour of failure."""

    name: str
    status: SimStatus
    #: ``SimResult.to_dict()`` payload (present for OK / ASSERT_FAILED
    #: runs and for aborts that salvaged a partial result).
    result: Optional[dict] = None
    #: Human-readable failure description for non-OK statuses.
    error: Optional[str] = None
    wall_seconds: float = 0.0
    worker_pid: Optional[int] = None
    #: Path of the per-run VCD when the request asked for one.
    vcd_path: Optional[str] = None
    #: Attempts this run consumed (1 = first try succeeded or was
    #: terminal; >1 = the durable queue retried it).
    attempts: int = 1
    #: True when the run exhausted its retry budget — ``status`` then
    #: reflects the *last* attempt and :attr:`failure_history` records
    #: every failed one.
    quarantined: bool = False
    #: Per-attempt failure records ``{"attempt", "kind", "error",
    #: "worker_pid"}`` for every attempt that did not finish cleanly.
    failure_history: List[dict] = field(default_factory=list)
    #: True when this outcome was restored from a batch journal by
    #: ``run_batch(..., resume=True)`` instead of executing now.
    resumed: bool = False
    #: True when the terminal attempt resumed mid-simulation from the
    #: run's rolling REPROCKPT checkpoint instead of restarting at 0.
    resumed_from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return self.status is SimStatus.OK

    def quarantine_error(self) -> Optional[QuarantinedRunError]:
        """The structured error for a quarantined run (else None)."""
        if not self.quarantined:
            return None
        return QuarantinedRunError(
            f"run {self.name!r} {self.error}",
            name=self.name, attempts=self.attempts,
            failure_history=list(self.failure_history))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status.value,
            "ok": self.ok,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "worker_pid": self.worker_pid,
            "vcd_path": self.vcd_path,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "failure_history": list(self.failure_history),
            "resumed": self.resumed,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunOutcome":
        """Rebuild an outcome from a journaled ``to_dict`` payload."""
        try:
            return cls(
                name=payload["name"],
                status=SimStatus(payload["status"]),
                result=payload.get("result"),
                error=payload.get("error"),
                wall_seconds=payload.get("wall_seconds", 0.0),
                worker_pid=payload.get("worker_pid"),
                vcd_path=payload.get("vcd_path"),
                attempts=payload.get("attempts", 1),
                quarantined=payload.get("quarantined", False),
                failure_history=list(payload.get("failure_history", [])),
                resumed_from_checkpoint=payload.get(
                    "resumed_from_checkpoint", False),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BatchError(
                f"malformed journaled outcome: {exc!r}") from exc


@dataclass
class BatchResult:
    """Everything a drained batch produced, in request order."""

    outcomes: List[RunOutcome]
    out_dir: str
    workers: int
    wall_seconds: float
    designs_compiled: int
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Directory of per-run heartbeat status files (``symsim top`` tails
    #: it); None when heartbeats were disabled.
    status_dir: Optional[str] = None
    #: Run names the stall watcher flagged mid-batch (a stalled run may
    #: still finish — this records the observation, not a verdict).
    stalled_runs: List[str] = field(default_factory=list)
    #: Path of the ``BATCHJRNL/1`` journal (None with ``journal=False``).
    journal_path: Optional[str] = None
    #: Attempts beyond each run's first that were actually dispatched.
    retries: int = 0
    #: Times any run went back to the queue (retry + stall-kill).
    requeued: int = 0
    #: Runs that exhausted ``max_attempts`` (sorted).
    quarantined_runs: List[str] = field(default_factory=list)
    #: Runs restored from the journal by ``resume=True`` (sorted).
    resumed_runs: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every run finished with :attr:`SimStatus.OK`."""
        return all(outcome.ok for outcome in self.outcomes)

    def counts(self) -> Dict[str, int]:
        """Run count per status value (only statuses that occurred)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status.value] = \
                counts.get(outcome.status.value, 0) + 1
        return counts

    def check_quarantine(self) -> None:
        """Raise :class:`~repro.errors.QuarantinedRunError` for the
        first quarantined run, if any (callers that prefer exceptions
        over scanning outcome rows)."""
        for outcome in self.outcomes:
            if outcome.quarantined:
                raise outcome.quarantine_error()

    def __getitem__(self, name: str) -> RunOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def summary(self) -> str:
        """One-paragraph human summary (the CLI's closing lines)."""
        counts = ", ".join(f"{status}={count}"
                           for status, count in sorted(self.counts().items()))
        lines = [
            f"batch: {len(self.outcomes)} runs on {self.workers} workers "
            f"in {self.wall_seconds:.2f}s ({counts}; "
            f"{self.designs_compiled} designs compiled once)"
        ]
        if self.resumed_runs:
            lines[0] += (f" — resumed: {len(self.resumed_runs)} run(s) "
                         "restored from the journal")
        for outcome in self.outcomes:
            mark = "ok " if outcome.ok else outcome.status.value
            line = (f"  [{mark:>13}] {outcome.name} "
                    f"({outcome.wall_seconds:.2f}s)")
            if outcome.resumed:
                line += " [resumed]"
            if outcome.attempts > 1:
                line += f" [attempts={outcome.attempts}]"
            if outcome.quarantined:
                line += " [quarantined]"
            if outcome.error:
                line += f" — {outcome.error}"
            lines.append(line)
        if self.retries or self.quarantined_runs:
            lines.append(
                f"  durability: {self.retries} retr"
                f"{'y' if self.retries == 1 else 'ies'}, "
                f"{self.requeued} requeue(s), "
                f"{len(self.quarantined_runs)} quarantined")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": BATCH_SCHEMA,
            "ok": self.ok,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "designs_compiled": self.designs_compiled,
            "counts": self.counts(),
            "out_dir": self.out_dir,
            "trace_path": self.trace_path,
            "metrics_path": self.metrics_path,
            "status_dir": self.status_dir,
            "stalled_runs": list(self.stalled_runs),
            "journal_path": self.journal_path,
            "retries": self.retries,
            "requeued": self.requeued,
            "quarantined_runs": list(self.quarantined_runs),
            "resumed_runs": list(self.resumed_runs),
            "runs": [outcome.to_dict() for outcome in self.outcomes],
        }


def _validate(requests: Sequence[RunRequest]) -> None:
    if not requests:
        raise BatchError("batch needs at least one RunRequest")
    seen = set()
    for request in requests:
        if not isinstance(request, RunRequest):
            raise BatchError(
                f"expected a RunRequest, got {type(request).__name__}")
        if request.name in seen:
            raise BatchError(f"duplicate run name {request.name!r} — run "
                             "names key batch artifacts and must be unique")
        seen.add(request.name)
        if request.options.obs is not None:
            raise BatchError(
                f"run {request.name!r} carries an obs bundle; observability "
                "instruments hold open files and cannot cross process "
                "boundaries — use run_batch(trace=...) instead")
        if request.options.heartbeat_callback is not None:
            raise BatchError(
                f"run {request.name!r} sets heartbeat_callback; callables "
                "cannot cross process boundaries — batch runs heartbeat to "
                "per-run status files under <out_dir>/status/ instead")


def _compile_catalog(
    requests: Sequence[RunRequest],
) -> Tuple[Dict[str, bytes], Dict[str, str]]:
    """Compile each unique design once.

    Returns ``(catalog, by_run)``: the fingerprint-keyed pickled
    programs shipped to workers, and each run name's fingerprint.
    """
    import hashlib

    from repro.compile import compile_design
    from repro.frontend import elaborate, parse_source

    catalog: Dict[str, bytes] = {}
    by_key: Dict[tuple, str] = {}
    by_run: Dict[str, str] = {}
    for request in requests:
        key = request.design_key()
        fingerprint = by_key.get(key)
        if fingerprint is None:
            source, top, defines = key
            # Content-address the catalog by the full design key, NOT
            # by the structural design_fingerprint(): structure (net
            # table + instruction counts) cannot tell apart designs
            # that differ only in an operator or a constant — exactly
            # the shape of a mutation campaign's mutants — and a
            # collision here would silently run one design in place of
            # another.
            fingerprint = hashlib.sha256(
                repr((source, top, defines)).encode("utf-8")).hexdigest()
            modules = parse_source(source, defines=dict(defines) or None)
            program = compile_design(elaborate(modules, top=top))
            by_key[key] = fingerprint
            catalog[fingerprint] = pickle.dumps(program)
        by_run[request.name] = fingerprint
    return catalog, by_run


def _aggregate_metrics(result: BatchResult) -> MetricsRegistry:
    """Fold per-run payloads into the batch's ``batch.*`` families."""
    registry = result.metrics
    registry.gauge("batch.workers", "pool width").set(result.workers)
    registry.gauge("batch.wall_seconds",
                   "controller wall time for the whole batch") \
        .set(result.wall_seconds)
    registry.counter("batch.designs_compiled",
                     "unique designs compiled (each exactly once)") \
        .inc(result.designs_compiled)
    registry.counter("batch.stalled_runs",
                     "runs flagged by the stall watcher mid-batch") \
        .inc(len(result.stalled_runs))
    registry.counter("batch.retries",
                     "retry attempts dispatched beyond each run's first") \
        .inc(result.retries)
    registry.counter("batch.requeued",
                     "requeue events (failure retries + stall kills)") \
        .inc(result.requeued)
    registry.counter("batch.quarantined",
                     "runs quarantined after exhausting max_attempts") \
        .inc(len(result.quarantined_runs))
    registry.counter("batch.resumed_runs",
                     "runs restored from the batch journal") \
        .inc(len(result.resumed_runs))
    runs = registry.counter("batch.runs", "runs by outcome",
                            labels=("status",))
    attempts = registry.counter("batch.attempts",
                                "attempts consumed per run",
                                labels=("run",))
    wall = registry.gauge("batch.run_wall_seconds",
                          "per-run wall time in its worker",
                          labels=("run",))
    events = registry.counter("batch.run_events_processed",
                              "kernel events processed per run",
                              labels=("run",))
    nodes = registry.gauge("batch.run_bdd_nodes",
                           "final BDD arena size per run", labels=("run",))
    sim_time = registry.gauge("batch.run_sim_time",
                              "final simulation time per run",
                              labels=("run",))
    for outcome in result.outcomes:
        runs.labels(status=outcome.status.value).inc()
        attempts.labels(run=outcome.name).inc(outcome.attempts)
        wall.labels(run=outcome.name).set(outcome.wall_seconds)
        if outcome.result is not None:
            metrics = outcome.result.get("metrics", {})
            events.labels(run=outcome.name).inc(
                metrics.get("events_processed", 0))
            nodes.labels(run=outcome.name).set(
                metrics.get("bdd", {}).get("nodes", 0))
            sim_time.labels(run=outcome.name).set(
                outcome.result.get("time", 0))
    return registry


def _watch_stalls(
    status_dir: str,
    in_flight: Sequence[str],
    stalled_seen: set,
    stall_after: float,
    on_stall: Optional[Callable[[RunHealth], None]],
) -> None:
    """One poll of the status directory; fires ``on_stall`` once per run.

    A run is stalled when its latest heartbeat still says ``running``
    but is older than ``stall_after`` seconds — the worker is wedged in
    one giant step, thrashing in the BDD, or dead without a terminal
    record.  This is the observability half of hang isolation: the
    in-kernel guard (``ResourceBudgets.hang_*``) kills a wedged run
    from the inside; the watcher spots it from the outside and tells
    the controller *which* run to blame before the pool drains.  The
    engine calls this on **every** scheduling iteration — gating it on
    quiet poll windows would let a steady trickle of completions starve
    stall detection forever.
    """
    pending_names = set(in_flight)
    for health in assess_health(scan_status([status_dir]),
                                stall_after=stall_after):
        if not health.stalled or health.name in stalled_seen:
            continue
        if health.name not in pending_names:
            continue  # already reaped; terminal record just lagged
        stalled_seen.add(health.name)
        if on_stall is not None:
            on_stall(health)


# ---------------------------------------------------------------------
# the worker pool: one process per slot, one leased run per process
# ---------------------------------------------------------------------


class _Worker:
    """One pool slot: a process, its pipes, and its current lease."""

    __slots__ = ("id", "process", "task_send", "result_recv", "lease",
                 "controller_killed")

    def __init__(self, worker_id: int, ctx, init_args: tuple) -> None:
        self.id = worker_id
        task_recv, self.task_send = ctx.Pipe(duplex=False)
        self.result_recv, result_send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(task_recv, result_send) + init_args,
            daemon=True, name=f"repro-batch-w{worker_id}")
        self.process.start()
        # the controller holds only its own pipe ends
        task_recv.close()
        result_send.close()
        self.lease: Optional[Lease] = None
        self.controller_killed = False

    def alive(self) -> bool:
        return self.process.is_alive()

    def close(self) -> None:
        for conn in (self.task_send, self.result_recv):
            try:
                conn.close()
            except OSError:
                pass


class _WorkerPool:
    """Fixed-width pool of :class:`_Worker` slots with respawn."""

    def __init__(self, width: int, init_args: tuple) -> None:
        self._ctx = multiprocessing.get_context()
        self._init_args = init_args
        self._next_id = 0
        self.width = width
        self.workers: List[_Worker] = []

    def spawn(self, count: int) -> None:
        for _ in range(count):
            if len(self.workers) >= self.width:
                return
            worker = _Worker(self._next_id, self._ctx, self._init_args)
            self._next_id += 1
            self.workers.append(worker)

    def idle(self) -> List[_Worker]:
        return [worker for worker in self.workers
                if worker.lease is None and worker.alive()]

    def wait(self, timeout: Optional[float]) -> List[_Worker]:
        """Block until a worker has a result or died; returns workers
        whose result pipe is readable (deaths are discovered by the
        caller scanning :meth:`dead`)."""
        objects = []
        by_object = {}
        for worker in self.workers:
            objects.append(worker.result_recv)
            by_object[worker.result_recv] = worker
            objects.append(worker.process.sentinel)
            by_object[worker.process.sentinel] = worker
        if not objects:
            if timeout:
                time.sleep(min(timeout, 0.05))
            return []
        ready = _mpconn.wait(objects, timeout)
        seen = []
        for obj in ready:
            worker = by_object[obj]
            if obj is worker.result_recv and worker not in seen:
                seen.append(worker)
        return seen

    def dead(self) -> List[_Worker]:
        return [worker for worker in self.workers if not worker.alive()]

    def reap(self, worker: _Worker) -> None:
        """Forget a dead worker (close pipes, join the corpse)."""
        worker.close()
        worker.process.join(timeout=1.0)
        self.workers.remove(worker)

    def kill(self, worker: _Worker) -> None:
        """SIGKILL a worker (lease-timeout escalation)."""
        worker.controller_killed = True
        try:
            worker.process.kill()
        except (OSError, ValueError):
            pass

    def shutdown(self) -> None:
        for worker in self.workers:
            if worker.alive() and worker.lease is None:
                try:
                    worker.task_send.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.perf_counter() + 5.0
        for worker in self.workers:
            worker.process.join(
                timeout=max(deadline - time.perf_counter(), 0.1))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            worker.close()
        self.workers.clear()


# ---------------------------------------------------------------------
# the controller
# ---------------------------------------------------------------------


def run_batch(
    requests: Sequence[RunRequest],
    workers: int = 1,
    out_dir: Optional[str] = None,
    on_result: Optional[Callable[[RunOutcome], None]] = None,
    trace: bool = True,
    write_metrics: bool = True,
    heartbeat_every: Optional[int] = DEFAULT_EVERY,
    stall_after: Optional[float] = None,
    on_stall: Optional[Callable[[RunHealth], None]] = None,
    retry: Optional[RetryPolicy] = None,
    journal: bool = True,
    resume: bool = False,
) -> BatchResult:
    """Run every request on a durable pool of ``workers`` processes.

    ``on_result`` (if given) is called in the controller with each
    *terminal* :class:`RunOutcome` as it lands — completion order, not
    request order; the returned :class:`BatchResult` restores request
    order.  ``trace=True`` gives each worker a JSONL shard and merges
    them into ``<out_dir>/trace.json`` with one Chrome lane per worker.
    ``heartbeat_every`` makes each run emit a live status file to
    ``<out_dir>/status/<name>.json`` every N safe points (``symsim
    top`` tails these; pass ``None``/0 to disable).  ``stall_after``
    (seconds) turns on the flag-only stall watcher: runs whose
    heartbeat goes quiet are reported once each through ``on_stall``
    and in :attr:`BatchResult.stalled_runs`.

    ``retry`` is the :class:`~repro.batch.queue.RetryPolicy` governing
    leases, retries, backoff, quarantine and the (optional)
    lease-timeout kill escalation; the default policy retries
    infrastructure failures (worker death, stall kills) up to 3
    attempts and treats run-level statuses as terminal.  ``journal``
    appends scheduling events and terminal outcomes to
    ``<out_dir>/journal.jsonl`` (``BATCHJRNL/1``); ``resume=True``
    reads that journal, re-verifies request fingerprints and the
    design-catalog hash, restores journaled terminal runs, and
    executes only the rest.

    Individual run failures never raise; :class:`BatchError` covers
    controller-side problems only (bad requests, pool startup, a
    journal that does not match the manifest).
    """
    _validate(requests)
    if workers < 1:
        raise BatchError(f"workers must be >= 1, got {workers}")
    if stall_after is not None and not heartbeat_every:
        raise BatchError("stall_after needs heartbeats — "
                         "set heartbeat_every")
    if resume and not journal:
        raise BatchError("resume=True needs the journal — "
                         "drop journal=False")
    if resume and out_dir is None:
        raise BatchError("resume=True needs the out_dir of the "
                         "journaled batch")
    policy = retry if retry is not None else RetryPolicy()
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="repro-batch-")
    else:
        os.makedirs(out_dir, exist_ok=True)
    status_dir = os.path.join(out_dir, "status") if heartbeat_every else None

    wall_start = time.perf_counter()
    catalog, by_run = _compile_catalog(requests)
    fingerprints = {request.name: request_fingerprint(request,
                                                      by_run[request.name])
                    for request in requests}
    cat_sha = catalog_sha(catalog)

    journal_path = os.path.join(out_dir, JOURNAL_NAME) if journal else None
    restored: Dict[str, RunOutcome] = {}
    jrnl: Optional[BatchJournal] = None
    if resume:
        state = read_journal(journal_path)
        state.verify(fingerprints, cat_sha)
        for name, payload in state.terminal.items():
            outcome = RunOutcome.from_dict(payload)
            outcome.resumed = True
            restored[name] = outcome
        jrnl = BatchJournal.reopen(journal_path, len(restored))
    elif journal:
        jrnl = BatchJournal.create(journal_path, fingerprints, cat_sha)

    queue = JobQueue(
        [(request, by_run[request.name]) for request in requests
         if request.name not in restored],
        policy)
    shards: Dict[int, Tuple[str, float]] = {}
    stalled_seen: set = set()

    pool = _WorkerPool(
        workers, (catalog, out_dir, trace, heartbeat_every or None))
    try:
        if not queue.finished():
            try:
                pool.spawn(min(workers, len(queue.pending_names())))
            except Exception as exc:  # pool start is controller-side
                raise BatchError(
                    f"could not start worker pool: {exc}") from exc
        _drain(pool, queue, policy, jrnl, shards, status_dir,
               stall_after, on_stall, stalled_seen, on_result)
    finally:
        pool.shutdown()
        if jrnl is not None:
            jrnl.close()

    outcomes = dict(restored)
    outcomes.update(queue.outcomes)
    result = BatchResult(
        outcomes=[outcomes[request.name] for request in requests],
        out_dir=out_dir,
        workers=workers,
        wall_seconds=time.perf_counter() - wall_start,
        designs_compiled=len(catalog),
        status_dir=status_dir,
        stalled_runs=sorted(stalled_seen),
        journal_path=journal_path,
        retries=queue.retries,
        requeued=queue.requeued,
        quarantined_runs=sorted(queue.quarantined),
        resumed_runs=sorted(restored),
    )
    if shards:
        result.trace_path = os.path.join(out_dir, "trace.json")
        merge_shards(shards, result.trace_path)
    _aggregate_metrics(result)
    if write_metrics:
        result.metrics_path = os.path.join(out_dir, "metrics.json")
        result.metrics.write_json(result.metrics_path)
    return result


def _drain(pool: _WorkerPool, queue: JobQueue, policy: RetryPolicy,
           jrnl: Optional[BatchJournal],
           shards: Dict[int, Tuple[str, float]],
           status_dir: Optional[str],
           stall_after: Optional[float],
           on_stall: Optional[Callable[[RunHealth], None]],
           stalled_seen: set,
           on_result: Optional[Callable[[RunOutcome], None]]) -> None:
    """The scheduling loop: dispatch, wait, reap, retry, escalate."""

    def finalize(outcome: RunOutcome) -> None:
        queue.complete(outcome.name, outcome)
        if jrnl is not None:
            jrnl.terminal(outcome.name, outcome.to_dict())
        if on_result is not None:
            on_result(outcome)

    def fail(name: str, kind: str, error: str,
             worker_pid: Optional[int],
             last: Optional[RunOutcome]) -> None:
        """Route a retryable failure; quarantine on exhaustion."""
        disposition = queue.fail(name, kind, error, worker_pid)
        if disposition["action"] == "requeue":
            if jrnl is not None:
                jrnl.attempt(name, disposition["attempt"], "requeue",
                             failure_kind=kind, error=error,
                             worker_pid=worker_pid,
                             delay=disposition["delay"])
            return
        outcome = last if last is not None else RunOutcome(
            name=name, status=SimStatus.ABORTED, error=error,
            worker_pid=worker_pid)
        outcome.quarantined = True
        outcome.error = (f"quarantined after "
                         f"{disposition['attempt']} attempt(s): {error}")
        if jrnl is not None:
            jrnl.attempt(name, disposition["attempt"], "quarantine",
                         failure_kind=kind, error=error,
                         worker_pid=worker_pid)
        finalize(outcome)

    while not queue.finished():
        # 1. dispatch ready runs to idle workers
        for worker in pool.idle():
            if not queue.has_ready():
                break
            lease = queue.lease(worker.id, worker.process.pid or -1)
            job = queue.job(lease.name)
            try:
                worker.task_send.send(
                    (job.request, job.fingerprint, lease.attempt))
            except (BrokenPipeError, OSError):
                # the worker died between polls; put the run back
                # unblamed — the death itself is handled below
                queue.release(lease.name)
                continue
            worker.lease = lease
            if jrnl is not None:
                jrnl.attempt(lease.name, lease.attempt, "start",
                             worker_pid=lease.worker_pid)

        # 2. wait for results / deaths / timers
        timeouts = []
        if stall_after is not None:
            timeouts.append(min(stall_after / 2.0, 2.0))
        if policy.lease_timeout is not None:
            timeouts.append(min(policy.lease_timeout / 2.0, 2.0))
        delay = queue.next_delay()
        if delay is not None:
            timeouts.append(max(delay, 0.01))
        timeout = min(timeouts) if timeouts else None
        for worker in pool.wait(timeout):
            try:
                raw = worker.result_recv.recv()
            except (EOFError, OSError):
                continue  # died after readiness; reaped below
            lease, worker.lease = worker.lease, None
            if lease is None:
                continue  # stray late result from an escalated lease
            if raw.get("shard_path") is not None:
                shards[raw["worker_pid"]] = (
                    raw["shard_path"], raw["t0_unix_us"])
            outcome = RunOutcome(
                name=raw["name"],
                status=SimStatus(raw["status"]),
                result=raw["result"],
                error=raw["error"],
                wall_seconds=raw["wall_seconds"],
                worker_pid=raw["worker_pid"],
                vcd_path=raw["vcd_path"],
                attempts=lease.attempt,
                resumed_from_checkpoint=raw.get(
                    "resumed_from_checkpoint", False),
            )
            if outcome.status.value in policy.retry_statuses:
                fail(outcome.name, "status",
                     raw["error"] or outcome.status.value,
                     raw["worker_pid"], outcome)
            else:
                finalize(outcome)

        # 3. reap dead workers: requeue exactly the runs they held
        for worker in pool.dead():
            lease, worker.lease = worker.lease, None
            if lease is not None and not worker.controller_killed:
                exitcode = worker.process.exitcode
                fail(lease.name, "worker-lost",
                     f"worker lost: pid {lease.worker_pid} died "
                     f"(exit {exitcode}) holding attempt {lease.attempt}",
                     lease.worker_pid, None)
            pool.reap(worker)
        if not queue.finished():
            pending = len(queue.pending_names())
            if len(pool.workers) < min(pool.width, pending):
                pool.spawn(min(pool.width, pending) - len(pool.workers))

        # 4. flag-only stall watch — every iteration, never starved by
        # a steady trickle of completions (see _watch_stalls)
        if status_dir is not None and stall_after is not None:
            _watch_stalls(status_dir, queue.pending_names(),
                          stalled_seen, stall_after, on_stall)

        # 5. lease-timeout escalation: stall -> kill -> requeue
        if policy.lease_timeout is not None:
            now_unix = time.time()
            now_mono = time.perf_counter()
            for worker in list(pool.workers):
                lease = worker.lease
                if lease is None or not worker.alive():
                    continue
                record = read_status(os.path.join(
                    status_dir, f"{lease.name}.json")) \
                    if status_dir is not None else None
                health = assess_lease(
                    lease.name, lease.worker_pid,
                    lease.age(now_mono), record,
                    kill_after=policy.lease_timeout,
                    now_unix=now_unix,
                    started_unix=lease.started_unix)
                if not health.expired:
                    continue
                worker.lease = None
                pool.kill(worker)
                stalled_seen.add(lease.name)
                fail(lease.name, "stall-kill",
                     f"lease expired after {health.lease_age:.1f}s "
                     f"(heartbeat age "
                     f"{'n/a' if health.heartbeat_age is None else f'{health.heartbeat_age:.1f}s'}); "
                     f"worker pid {lease.worker_pid} killed",
                     lease.worker_pid, None)
