"""The :class:`RunRequest` — one simulation, described as pure data.

A request is everything needed to run one symbolic simulation: the
design (source text or a file path), the top module, preprocessor
defines, a :class:`~repro.sim.kernel.SimOptions`, and an optional time
bound.  It is deliberately *frozen* and picklable: the same object is
the unit of work of the batch engine (shipped to worker processes) and
the argument of the single-process :func:`repro.open_sim` factory, so
"run this once here" and "run ten thousand of these on a pool" share
one vocabulary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Optional

from repro.errors import BatchError
from repro.sim import SimOptions


@dataclass(frozen=True)
class RunRequest:
    """One simulation to run, as data.

    Exactly one of ``source`` (Verilog text) or ``path`` (a ``.v`` file
    read lazily, in the controller) must be given.  ``options.obs``
    must be ``None`` for batch use — observability instruments hold
    open files and belong to one process; the engine equips each worker
    with its own (see docs/BATCH.md).
    """

    #: Unique name of the run — names batch artifacts (VCD, checkpoint
    #: dir, report rows) and must not repeat within one batch.
    name: str
    source: Optional[str] = None
    path: Optional[str] = None
    top: Optional[str] = None
    defines: Optional[Mapping[str, str]] = None
    options: SimOptions = field(default_factory=SimOptions)
    #: Simulation time bound (``kernel.run(until=...)``); None runs to
    #: quiescence / ``$finish``.
    until: Optional[int] = None
    #: Write a per-run VCD under the batch output directory
    #: (``runs/<name>/wave.vcd``).  For single-process use prefer
    #: ``options.vcd_path``.
    vcd: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise BatchError("RunRequest needs a non-empty name")
        if (self.source is None) == (self.path is None):
            raise BatchError(
                f"run {self.name!r}: exactly one of source= or path= "
                "must be given"
            )
        if self.defines is not None:
            # freeze the mapping so a frozen request is deeply read-only
            object.__setattr__(
                self, "defines", MappingProxyType(dict(self.defines))
            )

    # ------------------------------------------------------------------

    def read_source(self) -> str:
        """The Verilog text (reads ``path`` when the request carries one)."""
        if self.source is not None:
            return self.source
        with open(self.path, "r", encoding="utf-8") as handle:
            return handle.read()

    def design_key(self) -> tuple:
        """Hashable identity of the *compiled design* this run needs.

        Requests with equal keys share one compilation in a batch
        (the compile-once cache).
        """
        defines = tuple(sorted((self.defines or {}).items()))
        return (self.read_source(), self.top, defines)

    def with_options(self, **changes) -> "RunRequest":
        """Copy of this request with ``options`` fields replaced."""
        return dataclasses.replace(
            self, options=dataclasses.replace(self.options, **changes)
        )

    def fingerprint(self, design_fingerprint: str) -> str:
        """Content hash of this request's semantic identity.

        ``design_fingerprint`` is the batch catalog's hash of
        :meth:`design_key` (the engine computes it during compile-once
        deduplication).  The result keys the ``BATCHJRNL/1`` journal:
        a resume refuses to reuse a journaled outcome unless the
        fingerprints still match.  Operational knobs (paths, heartbeat
        cadence) are excluded — see
        :func:`repro.batch.journal.request_fingerprint`.
        """
        from repro.batch.journal import request_fingerprint

        return request_fingerprint(self, design_fingerprint)

    def open(self):
        """Build a :class:`repro.SymbolicSimulator` for this request
        in the current process (the non-batch path)."""
        import repro

        return repro.open_sim(source=self.source, path=self.path,
                              top=self.top, options=self.options,
                              defines=dict(self.defines)
                              if self.defines else None)

    def __getstate__(self):
        # MappingProxyType does not pickle; ship a plain dict and let
        # __setstate__ re-freeze on the other side.
        state = {f.name: getattr(self, f.name)
                 for f in dataclasses.fields(self)}
        if state["defines"] is not None:
            state["defines"] = dict(state["defines"])
        return state

    def __setstate__(self, state):
        defines = state.pop("defines")
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(
            self, "defines",
            MappingProxyType(defines) if defines is not None else None,
        )
