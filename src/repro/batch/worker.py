"""Worker-process side of the batch engine.

Each pool worker is initialised once with the batch's *program
catalog* — ``{design fingerprint: pickled Program}`` — and an output
directory.  Programs are unpickled lazily, at most once per worker per
design (unpickling recompiles the design; see
:meth:`repro.compile.compiler.Program.__reduce__`), so a batch of a
thousand runs over three designs costs each worker at most three
compilations.

Per-process state lives in the module-level ``_STATE`` dict, set by
the pool initializer.  This is the one sanctioned module-global in the
package: it is *per-process* by construction (each worker is its own
process), written exactly once before any job runs, and is the
standard ``multiprocessing`` idiom for shipping large read-only state
past the per-task pickling cost.

Every worker writes its own JSONL trace shard
(``workers/w<pid>.jsonl``) with a ``run:<name>`` span bracketing each
simulation; the controller merges the shards into one Chrome trace
with per-worker lanes (:mod:`repro.obs.merge`).  Job results travel
back as plain dicts — a :class:`~repro.sim.kernel.SimResult` holds the
kernel and cannot cross a process boundary.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
import traceback
from typing import Dict, Optional

from repro.obs import Observability, Tracer
from repro.obs import live as _live
from repro.sim.kernel import SimStatus

#: Per-process worker state, set once by :func:`_worker_init`.
_STATE: Dict[str, object] = {}


def _worker_init(catalog: Dict[str, bytes], out_dir: str,
                 trace: bool, heartbeat_every: Optional[int] = None) -> None:
    """Pool initializer — runs once in each worker process."""
    _STATE.clear()
    _STATE["catalog"] = catalog
    _STATE["programs"] = {}
    _STATE["out_dir"] = out_dir
    _STATE["tracer"] = None
    _STATE["shard_path"] = None
    _STATE["t0_unix_us"] = None
    _STATE["heartbeat_every"] = heartbeat_every
    if trace:
        shard_dir = os.path.join(out_dir, "workers")
        os.makedirs(shard_dir, exist_ok=True)
        shard_path = os.path.join(shard_dir, f"w{os.getpid()}.jsonl")
        _STATE["t0_unix_us"] = time.time() * 1e6
        _STATE["tracer"] = Tracer(jsonl_path=shard_path)
        _STATE["shard_path"] = shard_path


def _program(fingerprint: str):
    """The worker's compiled program for ``fingerprint`` (lazy, cached)."""
    programs: Dict[str, object] = _STATE["programs"]  # type: ignore[assignment]
    program = programs.get(fingerprint)
    if program is None:
        image = _STATE["catalog"][fingerprint]  # type: ignore[index]
        tracer = _STATE["tracer"]
        if tracer is not None:
            start = tracer.now_us()
            program = pickle.loads(image)
            tracer.complete(f"compile:{fingerprint[:12]}", "batch",
                            start, tracer.now_us() - start)
        else:
            program = pickle.loads(image)
        programs[fingerprint] = program
    return program


def _run_job(request, fingerprint: str) -> dict:
    """Execute one :class:`~repro.batch.request.RunRequest`.

    Never raises: every outcome — including a crashed simulation — is
    folded into the returned dict so one failing run cannot take down
    the batch (the pool would otherwise tear the worker down and
    poison in-flight siblings).
    """
    from repro.errors import SimulationAborted, SimulationHang
    from repro.sim.kernel import Kernel

    tracer: Optional[Tracer] = _STATE["tracer"]  # type: ignore[assignment]
    run_dir = os.path.join(str(_STATE["out_dir"]), "runs", request.name)
    os.makedirs(run_dir, exist_ok=True)

    # Per-run heartbeat status file: the controller's stall watcher and
    # `symsim top` both poll <out_dir>/status/<name>.json.
    heartbeat_every = _STATE.get("heartbeat_every")
    status_path = request.options.heartbeat_path
    if heartbeat_every and status_path is None:
        status_dir = os.path.join(str(_STATE["out_dir"]), "status")
        os.makedirs(status_dir, exist_ok=True)
        status_path = os.path.join(status_dir, f"{request.name}.json")

    vcd_path = os.path.join(run_dir, "wave.vcd") if request.vcd \
        else request.options.vcd_path
    options = dataclasses.replace(
        request.options,
        obs=Observability(tracer=tracer) if tracer is not None else None,
        vcd_path=vcd_path,
        checkpoint_dir=request.options.checkpoint_dir
        or os.path.join(run_dir, "ckpt"),
        heartbeat_path=status_path if heartbeat_every else
        request.options.heartbeat_path,
        heartbeat_every=request.options.heartbeat_every or heartbeat_every,
        heartbeat_name=request.options.heartbeat_name or request.name,
        # SIGINT belongs to the controller; a worker must die promptly
        # so the pool can unwind.
        defer_interrupt=False,
    )

    if tracer is not None:
        tracer.begin(f"run:{request.name}", "batch", lane=0)
    wall_start = time.perf_counter()
    outcome = {
        "name": request.name,
        "worker_pid": os.getpid(),
        "shard_path": _STATE["shard_path"],
        "t0_unix_us": _STATE["t0_unix_us"],
        "vcd_path": vcd_path if request.vcd else None,
        "status_path": status_path,
        "error": None,
        "result": None,
    }
    result = None
    try:
        kern = Kernel(_program(fingerprint), options=options)
        result = kern.run(until=request.until)
        outcome["status"] = result.status.value
    except SimulationHang as exc:
        outcome["status"] = SimStatus.HANG.value
        outcome["error"] = str(exc)
    except SimulationAborted as exc:
        outcome["status"] = SimStatus.ABORTED.value
        outcome["error"] = str(exc)
        result = exc.partial_result
    except Exception as exc:  # noqa: BLE001 — fold, never poison the pool
        outcome["status"] = SimStatus.ABORTED.value
        outcome["error"] = "".join(
            traceback.format_exception_only(type(exc), exc)).strip()
    finally:
        outcome["wall_seconds"] = time.perf_counter() - wall_start
        if status_path is not None:
            # Stamp the terminal status even when the kernel never
            # reached its own final heartbeat (hang, crash) so the
            # controller's stall watcher and `symsim top` see the run
            # finish rather than flat-line.
            _live.finalize_status(
                status_path, options.heartbeat_name or request.name,
                outcome["status"], error=outcome["error"])
        if result is not None:
            result.kernel._close_vcd()
            outcome["result"] = result.to_dict()
        if tracer is not None:
            tracer.end(f"run:{request.name}", "batch", lane=0,
                       status=outcome["status"])
            # crash hygiene: a later hard-killed worker still leaves a
            # readable shard for every completed run
            tracer.flush()
    return outcome
