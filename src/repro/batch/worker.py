"""Worker-process side of the batch engine.

Each pool worker is a long-lived ``multiprocessing.Process`` running
:func:`_worker_main`: initialise once with the batch's *program
catalog* — ``{design fingerprint: pickled Program}`` — then loop
receiving ``(request, fingerprint, attempt)`` jobs over a pipe and
sending outcome dicts back.  Programs are unpickled lazily, at most
once per worker per design (unpickling recompiles the design; see
:meth:`repro.compile.compiler.Program.__reduce__`), so a batch of a
thousand runs over three designs costs each worker at most three
compilations.

Per-process state lives in the module-level ``_STATE`` dict, set by
the initializer.  This is the one sanctioned module-global in the
package: it is *per-process* by construction (each worker is its own
process), written exactly once before any job runs, and is the
standard ``multiprocessing`` idiom for shipping large read-only state
past the per-task pickling cost.

Every worker writes its own JSONL trace shard
(``workers/w<pid>.jsonl``) with a ``run:<name>`` span bracketing each
simulation; the controller merges the shards into one Chrome trace
with per-worker lanes (:mod:`repro.obs.merge`).  Job results travel
back as plain dicts — a :class:`~repro.sim.kernel.SimResult` holds the
kernel and cannot cross a process boundary.

**Retry attempts** arrive with their attempt number: a retried run
whose request configured rolling checkpoints (``checkpoint_every``)
resumes from the newest trustworthy REPROCKPT under its per-run
checkpoint directory instead of restarting at time 0 — checkpoint
resume is bit-identical (docs/ROBUSTNESS.md), so a retry that resumes
produces the same result a fresh run would, minus the re-simulation.

**Chaos hook**: setting ``REPRO_BATCH_CHAOS_KILL=<run name>:<attempt>``
in the controller's environment makes the worker that picks up that
attempt SIGKILL itself *before* simulating — the deterministic
stand-in for an OOM kill used by the chaos suite and the ``batch-chaos``
CI lane (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import signal
import time
import traceback
from typing import Dict, Optional

from repro.obs import Observability, Tracer
from repro.obs import live as _live
from repro.sim.kernel import SimStatus

#: Environment variable driving the deterministic worker-kill chaos
#: hook (format ``<run name>`` or ``<run name>:<attempt>``).
CHAOS_KILL_ENV = "REPRO_BATCH_CHAOS_KILL"

#: Per-process worker state, set once by :func:`_worker_init`.
_STATE: Dict[str, object] = {}


def _worker_init(catalog: Dict[str, bytes], out_dir: str,
                 trace: bool, heartbeat_every: Optional[int] = None) -> None:
    """Pool initializer — runs once in each worker process."""
    _STATE.clear()
    _STATE["catalog"] = catalog
    _STATE["programs"] = {}
    _STATE["out_dir"] = out_dir
    _STATE["tracer"] = None
    _STATE["shard_path"] = None
    _STATE["t0_unix_us"] = None
    _STATE["heartbeat_every"] = heartbeat_every
    if trace:
        shard_dir = os.path.join(out_dir, "workers")
        os.makedirs(shard_dir, exist_ok=True)
        shard_path = os.path.join(shard_dir, f"w{os.getpid()}.jsonl")
        _STATE["t0_unix_us"] = time.time() * 1e6
        _STATE["tracer"] = Tracer(jsonl_path=shard_path)
        _STATE["shard_path"] = shard_path


def _maybe_chaos_kill(name: str, attempt: int) -> None:
    """SIGKILL this worker if the chaos hook targets this attempt."""
    target = os.environ.get(CHAOS_KILL_ENV)
    if not target:
        return
    run, _, when = target.partition(":")
    if run != name:
        return
    if when and int(when) != attempt:
        return
    os.kill(os.getpid(), signal.SIGKILL)


def _worker_main(task_conn, result_conn, catalog: Dict[str, bytes],
                 out_dir: str, trace: bool,
                 heartbeat_every: Optional[int]) -> None:
    """Entry point of one pool worker process.

    Receives ``(request, fingerprint, attempt)`` tuples until the
    controller sends ``None`` (or closes the pipe).  :func:`_run_job`
    never raises, so the loop only exits on shutdown — or dies abruptly
    (OOM kill, segfault, chaos), which the controller observes through
    the process sentinel and converts into a lease requeue.

    A 4-tuple ``(request, fingerprint, attempt, image)`` extends a job
    with a pickled program image for a design this worker has never
    seen — the :mod:`repro.serve` front door compiles designs as they
    arrive over HTTP, long after the pool (and its init-time catalog)
    started.  The image lands in the worker's catalog exactly as an
    init-time entry would; the controller tracks which workers hold
    which fingerprints so each image ships at most once per worker.
    """
    try:
        _worker_init(catalog, out_dir, trace, heartbeat_every)
        while True:
            try:
                job = task_conn.recv()
            except (EOFError, OSError):
                break
            if job is None:
                break
            if len(job) == 4:
                request, fingerprint, attempt, image = job
                if image is not None:
                    _STATE["catalog"][fingerprint] = image  # type: ignore[index]
            else:
                request, fingerprint, attempt = job
            _maybe_chaos_kill(request.name, attempt)
            outcome = _run_job(request, fingerprint, attempt=attempt)
            try:
                result_conn.send(outcome)
            except (BrokenPipeError, OSError):
                break  # controller went away; nothing left to report to
    except KeyboardInterrupt:
        pass  # SIGINT belongs to the controller; die quietly
    finally:
        tracer = _STATE.get("tracer")
        if tracer is not None:
            tracer.flush()


def _program(fingerprint: str):
    """The worker's compiled program for ``fingerprint`` (lazy, cached)."""
    programs: Dict[str, object] = _STATE["programs"]  # type: ignore[assignment]
    program = programs.get(fingerprint)
    if program is None:
        image = _STATE["catalog"][fingerprint]  # type: ignore[index]
        tracer = _STATE["tracer"]
        if tracer is not None:
            start = tracer.now_us()
            program = pickle.loads(image)
            tracer.complete(f"compile:{fingerprint[:12]}", "batch",
                            start, tracer.now_us() - start)
        else:
            program = pickle.loads(image)
        programs[fingerprint] = program
    return program


def _resume_kernel(program, options, ckpt_dir: str):
    """A kernel resumed from the newest trustworthy rolling checkpoint,
    or ``None`` when there is nothing usable (then start fresh).

    A worker killed mid-write can leave a truncated/corrupt
    ``latest.ckpt``; the REPROCKPT loader's checksums catch that and
    the retry simply restarts from time 0.
    """
    from repro.errors import CheckpointError
    from repro.guard.checkpoint import load_checkpoint

    path = os.path.join(ckpt_dir, "latest.ckpt")
    if not os.path.exists(path):
        return None
    try:
        return load_checkpoint(program, path, options=options)
    except CheckpointError:
        return None


def _run_job(request, fingerprint: str, attempt: int = 1) -> dict:
    """Execute one :class:`~repro.batch.request.RunRequest` attempt.

    Never raises: every outcome — including a crashed simulation — is
    folded into the returned dict so one failing run cannot take down
    its worker (an abrupt worker death is the *controller's* signal
    that infrastructure, not the run, failed).
    """
    from repro.errors import SimulationAborted, SimulationHang
    from repro.sim.kernel import Kernel

    tracer: Optional[Tracer] = _STATE["tracer"]  # type: ignore[assignment]
    run_dir = os.path.join(str(_STATE["out_dir"]), "runs", request.name)
    os.makedirs(run_dir, exist_ok=True)

    # Per-run heartbeat status file: the controller's stall watcher and
    # `symsim top` both poll <out_dir>/status/<name>.json.
    heartbeat_every = _STATE.get("heartbeat_every")
    status_path = request.options.heartbeat_path
    if heartbeat_every and status_path is None:
        status_dir = os.path.join(str(_STATE["out_dir"]), "status")
        os.makedirs(status_dir, exist_ok=True)
        status_path = os.path.join(status_dir, f"{request.name}.json")

    vcd_path = os.path.join(run_dir, "wave.vcd") if request.vcd \
        else request.options.vcd_path
    ckpt_dir = request.options.checkpoint_dir \
        or os.path.join(run_dir, "ckpt")
    options = dataclasses.replace(
        request.options,
        obs=Observability(tracer=tracer) if tracer is not None else None,
        vcd_path=vcd_path,
        checkpoint_dir=ckpt_dir,
        heartbeat_path=status_path if heartbeat_every else
        request.options.heartbeat_path,
        heartbeat_every=request.options.heartbeat_every or heartbeat_every,
        heartbeat_name=request.options.heartbeat_name or request.name,
        # SIGINT belongs to the controller; a worker must die promptly
        # so the pool can unwind.
        defer_interrupt=False,
    )
    # Attempt-scoped chaos: faults with `on_attempt` fire only on the
    # matching batch attempt (transient-failure modelling).
    if options.faults is not None and hasattr(options.faults, "attempt"):
        options.faults.attempt = attempt

    if tracer is not None:
        tracer.begin(f"run:{request.name}", "batch", lane=0)
    wall_start = time.perf_counter()
    outcome = {
        "name": request.name,
        "attempt": attempt,
        "worker_pid": os.getpid(),
        "shard_path": _STATE["shard_path"],
        "t0_unix_us": _STATE["t0_unix_us"],
        "vcd_path": vcd_path if request.vcd else None,
        "status_path": status_path,
        "resumed_from_checkpoint": False,
        "error": None,
        "result": None,
    }
    result = None
    try:
        kern = None
        if attempt > 1 and request.options.checkpoint_every:
            kern = _resume_kernel(_program(fingerprint), options, ckpt_dir)
            outcome["resumed_from_checkpoint"] = kern is not None
        if kern is None:
            kern = Kernel(_program(fingerprint), options=options)
        result = kern.run(until=request.until)
        outcome["status"] = result.status.value
    except SimulationHang as exc:
        outcome["status"] = SimStatus.HANG.value
        outcome["error"] = str(exc)
    except SimulationAborted as exc:
        outcome["status"] = SimStatus.ABORTED.value
        outcome["error"] = str(exc)
        result = exc.partial_result
    except Exception as exc:  # noqa: BLE001 — fold, never kill the worker
        outcome["status"] = SimStatus.ABORTED.value
        outcome["error"] = "".join(
            traceback.format_exception_only(type(exc), exc)).strip()
    finally:
        outcome["wall_seconds"] = time.perf_counter() - wall_start
        if status_path is not None:
            # Stamp the terminal status even when the kernel never
            # reached its own final heartbeat (hang, crash) so the
            # controller's stall watcher and `symsim top` see the run
            # finish rather than flat-line.
            _live.finalize_status(
                status_path, options.heartbeat_name or request.name,
                outcome["status"], error=outcome["error"])
        if result is not None:
            result.kernel._close_vcd()
            outcome["result"] = result.to_dict()
        if tracer is not None:
            tracer.end(f"run:{request.name}", "batch", lane=0,
                       status=outcome["status"])
            # crash hygiene: a later hard-killed worker still leaves a
            # readable shard for every completed run
            tracer.flush()
    return outcome
