"""Jobs-manifest loading for ``symsim batch``.

A manifest is one JSON document describing a set of runs::

    {
      "defaults": {"until": 5000, "vcd": true,
                   "options": {"accumulation": "full"}},
      "runs": [
        {"name": "gcd-w5", "design": "gcd",
         "params": {"rounds": 1, "width": 5}},
        {"name": "dram-seeded", "design": "dram", "until": 3000,
         "options": {"seed": 7}},
        {"name": "custom", "path": "rtl/top.v", "top": "tb",
         "options": {"budget": {"max_live_nodes": 200000}}}
      ]
    }

Each run names its design one of three ways: ``design`` (+ optional
``params``) loads a built-in benchmark from :mod:`repro.designs`;
``path`` points at a Verilog file, resolved relative to the manifest;
``source`` carries inline Verilog text.  ``defaults`` supplies any
per-run field not set on the run itself (``options`` dictionaries are
merged key-wise, the run's entries winning).

The ``options`` mapping covers the :class:`~repro.sim.SimOptions`
fields a batch can meaningfully set, plus two conveniences: ``seed``
is ``concrete_random`` and ``budget`` builds a
:class:`~repro.guard.ResourceBudgets`.  Anything malformed raises
:class:`~repro.errors.BatchError` with the run name in the message.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional

from repro.batch.request import RunRequest
from repro.errors import BatchError
from repro.sim import SimOptions

#: SimOptions fields settable from a manifest, manifest key -> field.
_OPTION_KEYS = {
    "accumulation": "accumulation",
    "seed": "concrete_random",
    "concrete_random": "concrete_random",
    "max_step_activity": "max_step_activity",
    "stop_on_violation": "stop_on_violation",
    "check_unknown_assert": "check_unknown_assert",
    "depth_first_priorities": "depth_first_priorities",
    "gc_threshold": "gc_threshold",
    "dyn_reorder": "dyn_reorder",
    "no_fastpath": "no_fastpath",
    "compile_tier": "compile_tier",
    "checkpoint_every": "checkpoint_every",
    "heartbeat_every": "heartbeat_every",
    "budget": "budgets",
}


def _build_options(spec: Dict, run_name: str) -> SimOptions:
    from repro.compile.instructions import AccumulationMode
    from repro.guard import ResourceBudgets

    fields = {}
    for key, value in spec.items():
        if key not in _OPTION_KEYS:
            raise BatchError(
                f"run {run_name!r}: unknown option {key!r} "
                f"(known: {sorted(_OPTION_KEYS)})")
        if key == "accumulation":
            try:
                value = AccumulationMode[str(value).upper()]
            except KeyError:
                raise BatchError(
                    f"run {run_name!r}: unknown accumulation mode "
                    f"{value!r}") from None
        elif key == "budget":
            if not isinstance(value, dict):
                raise BatchError(
                    f"run {run_name!r}: budget must be an object")
            known = {f.name for f in dataclasses.fields(ResourceBudgets)}
            bad = set(value) - known
            if bad:
                raise BatchError(
                    f"run {run_name!r}: unknown budget keys {sorted(bad)}")
            value = ResourceBudgets(**value)
        fields[_OPTION_KEYS[key]] = value
    return SimOptions(**fields)


def _merged(run: Dict, defaults: Dict, key: str, fallback=None):
    return run.get(key, defaults.get(key, fallback))


def load_manifest(path: str) -> List[RunRequest]:
    """Parse a jobs manifest into the requests ``run_batch`` consumes."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise BatchError(f"cannot read manifest {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BatchError(f"manifest {path!r} is not valid JSON: {exc}") \
            from exc
    if not isinstance(document, dict) or "runs" not in document:
        raise BatchError(
            f"manifest {path!r} must be an object with a \"runs\" array")
    runs = document["runs"]
    defaults = document.get("defaults", {})
    if not isinstance(runs, list) or not runs:
        raise BatchError(f"manifest {path!r}: \"runs\" must be a non-empty "
                         "array")
    if not isinstance(defaults, dict):
        raise BatchError(f"manifest {path!r}: \"defaults\" must be an object")

    base_dir = os.path.dirname(os.path.abspath(path))
    requests = []
    for index, run in enumerate(runs):
        if not isinstance(run, dict):
            raise BatchError(f"manifest run #{index} is not an object")
        name = run.get("name")
        if not name or not isinstance(name, str):
            raise BatchError(f"manifest run #{index} needs a \"name\"")

        ways = [key for key in ("design", "path", "source") if key in run]
        if len(ways) != 1:
            raise BatchError(
                f"run {name!r}: give exactly one of \"design\", \"path\" "
                f"or \"source\" (got {ways or 'none'})")

        source: Optional[str] = None
        file_path: Optional[str] = None
        top = _merged(run, defaults, "top")
        defines = dict(_merged(run, defaults, "defines", {}) or {})
        if "design" in run:
            from repro import designs

            params = run.get("params", {})
            if not isinstance(params, dict):
                raise BatchError(f"run {name!r}: \"params\" must be an "
                                 "object")
            try:
                source, top, builtin_defines = designs.load(
                    run["design"], **params)
            except (KeyError, TypeError) as exc:
                raise BatchError(f"run {name!r}: {exc}") from exc
            # built-in workload macros first; explicit defines override
            defines = {**builtin_defines, **defines}
        elif "path" in run:
            file_path = run["path"]
            if not os.path.isabs(file_path):
                file_path = os.path.join(base_dir, file_path)
            if not os.path.exists(file_path):
                raise BatchError(
                    f"run {name!r}: source file {file_path!r} not found")
        else:
            source = run["source"]

        option_spec = {**defaults.get("options", {}),
                       **run.get("options", {})}
        try:
            requests.append(RunRequest(
                name=name,
                source=source,
                path=file_path,
                top=top,
                defines=defines or None,
                options=_build_options(option_spec, name),
                until=_merged(run, defaults, "until"),
                vcd=bool(_merged(run, defaults, "vcd", False)),
            ))
        except TypeError as exc:
            raise BatchError(f"run {name!r}: {exc}") from exc
    return requests


def load_policy(path: str):
    """Parse the manifest's optional top-level ``"retry"`` object into a
    :class:`~repro.batch.queue.RetryPolicy` (None when absent).

    Keys mirror the policy fields::

        {"retry": {"max_attempts": 4, "backoff_base": 0.5,
                   "backoff_cap": 10, "jitter_frac": 0.25, "seed": 7,
                   "retry_statuses": ["aborted"], "lease_timeout": 120}}

    CLI flags (``--max-attempts`` and friends) override manifest
    values; the CLI applies them on top of what this returns.
    """
    from repro.batch.queue import RetryPolicy

    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise BatchError(f"cannot read manifest {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BatchError(f"manifest {path!r} is not valid JSON: {exc}") \
            from exc
    if not isinstance(document, dict) or "retry" not in document:
        return None
    spec = document["retry"]
    if not isinstance(spec, dict):
        raise BatchError(f"manifest {path!r}: \"retry\" must be an object")
    known = {f.name for f in dataclasses.fields(RetryPolicy)}
    bad = set(spec) - known
    if bad:
        raise BatchError(
            f"manifest {path!r}: unknown retry keys {sorted(bad)} "
            f"(known: {sorted(known)})")
    fields = dict(spec)
    if "retry_statuses" in fields:
        statuses = fields["retry_statuses"]
        if not isinstance(statuses, list):
            raise BatchError(
                f"manifest {path!r}: retry_statuses must be an array")
        fields["retry_statuses"] = frozenset(str(s) for s in statuses)
    try:
        return RetryPolicy(**fields)
    except TypeError as exc:
        raise BatchError(f"manifest {path!r}: bad retry object: {exc}") \
            from exc
