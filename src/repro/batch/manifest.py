"""Jobs-manifest loading for ``symsim batch``.

A manifest is one JSON document describing a set of runs::

    {
      "defaults": {"until": 5000, "vcd": true,
                   "options": {"accumulation": "full"}},
      "runs": [
        {"name": "gcd-w5", "design": "gcd",
         "params": {"rounds": 1, "width": 5}},
        {"name": "dram-seeded", "design": "dram", "until": 3000,
         "options": {"seed": 7}},
        {"name": "custom", "path": "rtl/top.v", "top": "tb",
         "options": {"budget": {"max_live_nodes": 200000}}}
      ]
    }

Each run names its design one of three ways: ``design`` (+ optional
``params``) loads a built-in benchmark from :mod:`repro.designs`;
``path`` points at a Verilog file, resolved relative to the manifest;
``source`` carries inline Verilog text.  ``defaults`` supplies any
per-run field not set on the run itself (``options`` dictionaries are
merged key-wise, the run's entries winning).

The run shape *is* the ``repro.serve.request/1`` schema — this module
is a thin adapter over :mod:`repro.api` (:func:`repro.api.parse_run`,
:func:`repro.api.parse_retry`), re-raising its
:class:`~repro.errors.RequestError` as
:class:`~repro.errors.BatchError` with the run name in the message so
batch callers keep one exception type.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro import api
from repro.batch.request import RunRequest
from repro.errors import BatchError, RequestError


def _load_document(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        raise BatchError(f"cannot read manifest {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BatchError(f"manifest {path!r} is not valid JSON: {exc}") \
            from exc


def load_manifest(path: str) -> List[RunRequest]:
    """Parse a jobs manifest into the requests ``run_batch`` consumes."""
    document = _load_document(path)
    if not isinstance(document, dict) or "runs" not in document:
        raise BatchError(
            f"manifest {path!r} must be an object with a \"runs\" array")
    runs = document["runs"]
    defaults = document.get("defaults", {})
    if not isinstance(runs, list) or not runs:
        raise BatchError(f"manifest {path!r}: \"runs\" must be a non-empty "
                         "array")
    if not isinstance(defaults, dict):
        raise BatchError(f"manifest {path!r}: \"defaults\" must be an object")

    base_dir = os.path.dirname(os.path.abspath(path))
    requests = []
    for index, run in enumerate(runs):
        try:
            requests.append(api.parse_run(
                run, defaults=defaults, base_dir=base_dir,
                where=f"manifest run #{index}" if not (
                    isinstance(run, dict) and run.get("name")) else None))
        except RequestError as exc:
            raise BatchError(str(exc)) from exc
    return requests


def load_policy(path: str):
    """Parse the manifest's optional top-level ``"retry"`` object into a
    :class:`~repro.batch.queue.RetryPolicy` (None when absent).

    Keys mirror the policy fields::

        {"retry": {"max_attempts": 4, "backoff_base": 0.5,
                   "backoff_cap": 10, "jitter_frac": 0.25, "seed": 7,
                   "retry_statuses": ["aborted"], "lease_timeout": 120}}

    CLI flags (``--max-attempts`` and friends) override manifest
    values; the CLI applies them on top of what this returns.
    """
    document = _load_document(path)
    if not isinstance(document, dict) or "retry" not in document:
        return None
    try:
        return api.parse_retry(document["retry"], f"manifest {path!r}")
    except RequestError as exc:
        raise BatchError(str(exc)) from exc
