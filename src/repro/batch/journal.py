"""The batch journal — ``BATCHJRNL/1``, an append-only JSONL log that
makes batches resumable.

Every durable batch writes ``<out_dir>/journal.jsonl``.  Line one is a
header; every later line records one scheduling event.  A controller
crash (or Ctrl-C) leaves a valid prefix — JSONL appends are atomic
enough that the reader only ever has to discard a torn final line —
and ``run_batch(..., resume=True)`` / ``symsim batch --resume OUT_DIR``
replays that prefix: runs with a ``terminal`` record are restored from
their journaled outcome payload and skipped; everything else runs
again.

Record kinds (all objects carry ``"kind"``):

``header``
    ``schema`` (``BATCHJRNL/1``), ``catalog_sha`` (content hash of the
    compiled design catalog), and ``runs`` — run name → **request
    fingerprint**.  The fingerprint hashes the design identity plus
    every semantic option, so resuming against an edited manifest is
    refused instead of silently mixing results from two different
    request sets.
``attempt``
    one scheduling event for one run: ``run``, ``attempt``, ``event``
    (``start`` / ``requeue`` / ``quarantine``), and, for failures,
    ``failure_kind`` / ``error`` / ``worker_pid``.
``terminal``
    the run's final :class:`~repro.batch.engine.RunOutcome` payload
    (``outcome`` = ``RunOutcome.to_dict()``).  Presence of this record
    is what "already done" means to a resume.
``resume``
    stamped each time a controller re-opens the journal, with the
    number of terminal records it restored — the audit trail of an
    interrupted campaign.

The format is specified in docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional

from repro.api import OPERATIONAL_OPTIONS, semantic_options
from repro.errors import BatchError

#: Journal format tag (header ``schema`` field).
JOURNAL_SCHEMA = "BATCHJRNL/1"

#: File name under the batch ``out_dir``.
JOURNAL_NAME = "journal.jsonl"

#: Compatibility alias — the semantic/operational option split now
#: lives in :mod:`repro.api` (:data:`repro.api.OPERATIONAL_OPTIONS`),
#: shared with the serve result cache.
_OPERATIONAL_OPTIONS = OPERATIONAL_OPTIONS


def request_fingerprint(request, design_fingerprint: str) -> str:
    """Content hash of one request's *semantic* identity.

    Covers the compiled design (via the catalog fingerprint, which
    already hashes source/top/defines), the time bound, the VCD flag,
    and every semantic :class:`~repro.sim.kernel.SimOptions` field
    (the :mod:`repro.api` split).  Two requests with equal
    fingerprints produce byte-identical results, so a journaled
    terminal outcome may stand in for a rerun — and a served result
    may be deduplicated from cache.
    """
    payload = {
        "design": design_fingerprint,
        "until": request.until,
        "vcd": bool(request.vcd),
        "options": semantic_options(request.options),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True,
                   separators=(",", ":")).encode("utf-8")).hexdigest()


def catalog_sha(catalog: Dict[str, bytes]) -> str:
    """Content hash of the compiled design catalog (fingerprints only —
    the fingerprints already content-address the designs)."""
    return hashlib.sha256(
        "\n".join(sorted(catalog)).encode("utf-8")).hexdigest()


@dataclass
class JournalState:
    """Everything a resume needs, parsed from an existing journal."""

    path: str
    catalog_sha: str
    #: run name -> request fingerprint, from the header.
    runs: Dict[str, str]
    #: run name -> journaled ``RunOutcome.to_dict()`` payload.
    terminal: Dict[str, dict] = field(default_factory=dict)
    #: run name -> attempt event records, in append order.
    attempts: Dict[str, List[dict]] = field(default_factory=dict)

    def verify(self, fingerprints: Dict[str, str],
               catalog: str) -> None:
        """Refuse to resume against a different request set.

        Raises :class:`~repro.errors.BatchError` with a single-line
        message on any divergence — run set, per-run fingerprint, or
        design catalog.
        """
        if set(fingerprints) != set(self.runs):
            missing = sorted(set(self.runs) - set(fingerprints))[:3]
            extra = sorted(set(fingerprints) - set(self.runs))[:3]
            raise BatchError(
                f"journal {self.path} does not match this manifest: "
                f"run set differs (journal-only: {missing or 'none'}, "
                f"manifest-only: {extra or 'none'})")
        for name, fingerprint in sorted(fingerprints.items()):
            if self.runs[name] != fingerprint:
                raise BatchError(
                    f"journal {self.path} does not match this manifest: "
                    f"run {name!r} fingerprint changed "
                    f"({self.runs[name][:12]}... -> {fingerprint[:12]}...)")
        if self.catalog_sha != catalog:
            raise BatchError(
                f"journal {self.path} does not match this manifest: "
                f"design catalog changed ({self.catalog_sha[:12]}... -> "
                f"{catalog[:12]}...)")


def read_journal(path: str) -> JournalState:
    """Parse a journal for resume.

    Tolerates exactly one torn *final* line (a controller killed
    mid-append); any other malformation raises
    :class:`~repro.errors.BatchError`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise BatchError(f"cannot read batch journal {path}: {exc}") \
            from exc
    if not lines:
        raise BatchError(f"batch journal {path} is empty")
    records: List[dict] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                break  # torn final append from a killed controller
            raise BatchError(
                f"batch journal {path} is corrupt at line "
                f"{index + 1}: {exc}") from exc
        if not isinstance(record, dict) or "kind" not in record:
            raise BatchError(
                f"batch journal {path} line {index + 1} is not a "
                "journal record")
        records.append(record)
    if not records or records[0].get("kind") != "header":
        raise BatchError(
            f"batch journal {path} has no {JOURNAL_SCHEMA} header")
    header = records[0]
    if header.get("schema") != JOURNAL_SCHEMA:
        raise BatchError(
            f"batch journal {path} has unsupported schema "
            f"{header.get('schema')!r} (want {JOURNAL_SCHEMA})")
    state = JournalState(
        path=path,
        catalog_sha=str(header.get("catalog_sha", "")),
        runs=dict(header.get("runs", {})),
    )
    for record in records[1:]:
        kind = record["kind"]
        if kind == "attempt":
            state.attempts.setdefault(record["run"], []).append(record)
        elif kind == "terminal":
            state.terminal[record["run"]] = record["outcome"]
        # "resume" markers and unknown future kinds are audit-only
    return state


class BatchJournal:
    """Append-only writer.  One record per line, flushed per append —
    a killed controller loses at most the line being written."""

    def __init__(self, handle: IO[str], path: str) -> None:
        self._handle = handle
        self.path = path

    @classmethod
    def create(cls, path: str, runs: Dict[str, str],
               catalog: str) -> "BatchJournal":
        """Start a fresh journal (truncates any previous one)."""
        handle = open(path, "w", encoding="utf-8")
        journal = cls(handle, path)
        journal.append({"kind": "header", "schema": JOURNAL_SCHEMA,
                        "catalog_sha": catalog,
                        "runs": {name: runs[name] for name in sorted(runs)}})
        return journal

    @classmethod
    def reopen(cls, path: str, restored: int) -> "BatchJournal":
        """Append to an existing journal (the resume path)."""
        handle = open(path, "a", encoding="utf-8")
        journal = cls(handle, path)
        journal.append({"kind": "resume", "restored": restored})
        return journal

    def append(self, record: dict) -> None:
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()

    def attempt(self, run: str, attempt: int, event: str,
                **extra) -> None:
        record = {"kind": "attempt", "run": run, "attempt": attempt,
                  "event": event}
        record.update({key: value for key, value in extra.items()
                       if value is not None})
        self.append(record)

    def terminal(self, run: str, outcome_payload: dict) -> None:
        self.append({"kind": "terminal", "run": run,
                     "outcome": outcome_payload})

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *_exc) -> Optional[bool]:
        self.close()
        return None
