"""``$display``-family formatting.

Implements the common 1364 format specifiers over four-valued symbolic
vectors.  Constant values render like a conventional simulator
(``%d``/``%b``/``%h``/``%o``/``%c``/``%s``/``%t``); values that are
still symbolic render as ``<sym:N>`` where N is the bit width — the
honest answer during symbolic simulation, and one that disappears in
concrete resimulation.
"""

from __future__ import annotations

import re
from typing import List

from repro.fourval import FourVec

_SPEC_RE = re.compile(r"%(-?\d*)([bBdDhHoOcCsStTmM%])|%0(\d*)([bBdDhHoO])")


def render_value(value: FourVec, spec: str = "d") -> str:
    """Render one vector under a format specifier character."""
    spec = spec.lower()
    if not value.is_constant():
        return f"<sym:{value.width}>"
    bits = value.to_verilog_bits()
    if spec == "b":
        return bits
    has_xz = any(c in "xz" for c in bits)
    if spec in ("h", "o"):
        group = 4 if spec == "h" else 3
        chars = []
        padded = bits.rjust((len(bits) + group - 1) // group * group, "0")
        for i in range(0, len(padded), group):
            chunk = padded[i:i + group]
            if all(c == "x" for c in chunk):
                chars.append("x")
            elif all(c == "z" for c in chunk):
                chars.append("z")
            elif any(c in "xz" for c in chunk):
                chars.append("X")
            else:
                chars.append(format(int(chunk, 2), "x" if spec == "h" else "o"))
        return "".join(chars)
    if spec in ("d", "t"):
        if has_xz:
            return "x" if all(c in "xz" for c in bits) else "X"
        return str(value.to_int())
    if spec == "c":
        if has_xz:
            return "?"
        return chr(value.to_int() & 0xFF)
    if spec == "s":
        if has_xz:
            return "?"
        raw = value.to_int()
        chars = []
        width = (value.width + 7) // 8
        for i in range(width - 1, -1, -1):
            byte = (raw >> (8 * i)) & 0xFF
            if byte:
                chars.append(chr(byte))
        return "".join(chars)
    return bits


def format_display(
    args: List[object],
    evaluate,
    scope_name: str = "",
) -> str:
    """Format a ``$display`` argument list.

    ``args`` mixes plain Python strings (format strings / literals) and
    compiled expressions; ``evaluate(cexpr, width_hint)`` produces the
    :class:`FourVec` for an expression argument.  Mirrors 1364: the
    first string consumes following arguments via its ``%`` specifiers;
    expression arguments outside a format string print as decimal.
    """
    pieces: List[str] = []
    index = 0
    while index < len(args):
        arg = args[index]
        index += 1
        if not isinstance(arg, str):
            pieces.append(render_value(evaluate(arg), "d"))
            continue
        out: List[str] = []
        pos = 0
        text = arg
        while pos < len(text):
            char = text[pos]
            if char != "%":
                out.append(char)
                pos += 1
                continue
            # parse %[-][0][width]spec
            match = re.match(r"%(-?0?\d*)([a-zA-Z%])", text[pos:])
            if not match:
                out.append("%")
                pos += 1
                continue
            flags, spec = match.group(1), match.group(2)
            pos += match.end()
            if spec == "%":
                out.append("%")
                continue
            if spec in ("m", "M"):
                out.append(scope_name)
                continue
            if index >= len(args):
                out.append(f"%{flags}{spec}")
                continue
            value_arg = args[index]
            index += 1
            if isinstance(value_arg, str):
                out.append(value_arg)
                continue
            rendered = render_value(evaluate(value_arg), spec)
            if flags and flags.lstrip("-").lstrip("0").isdigit():
                width = int(flags.lstrip("-").lstrip("0") or 0)
                rendered = (
                    rendered.ljust(width) if flags.startswith("-")
                    else rendered.rjust(width)
                )
            out.append(rendered)
        pieces.append("".join(out))
    return "".join(pieces)
