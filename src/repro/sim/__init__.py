"""The symbolic simulation kernel.

``repro.sim`` hosts the event-driven runtime: the priority scheduler
with event accumulation (paper Section 4, Fig. 8), the symbolic value
store, the kernel that executes compiled processes, error-trace
extraction (Section 5) and concrete resimulation.
"""

from repro.sim.kernel import (
    Kernel, RESULT_SCHEMA, SimOptions, SimResult, SimStatus,
)
from repro.sim.scheduler import Scheduler, Event
from repro.sim.trace import ErrorTrace, Violation
from repro.compile.instructions import AccumulationMode

__all__ = [
    "Kernel", "SimOptions", "SimResult", "SimStatus", "RESULT_SCHEMA",
    "Scheduler", "Event", "ErrorTrace", "Violation", "AccumulationMode",
]
