"""The symbolic value store.

Every elaborated net/variable holds a :class:`FourVec`; memories hold a
lazy word map where unwritten words read as all-X.  Initial values
follow 1364: variables start all-X, nets float at all-Z (until a driver
resolves), named events start at a known 0 so a trigger toggle is a
guaranteed value change.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.bdd import FALSE, BddManager
from repro.errors import SimulationError
from repro.frontend.elaborate import Design, NetInfo
from repro.fourval import FourVec, ops


class SimState:
    """Holds the current symbolic value of every storage object.

    A slot normally holds a :class:`FourVec`; the compiled tier may
    instead park a plain ``int`` — a fully-known word, masked to the
    declared width — via :meth:`store_raw`.  Raw words materialize
    into the exact vector a generic write would have stored the first
    time a consumer needs bits (:meth:`value`), so every reader above
    this class still sees only ``FourVec``.  Concrete vectors hold
    only terminal rails, which is why raw slots are invisible to the
    GC/reorder root walk.
    """

    def __init__(self, mgr: BddManager, design: Design) -> None:
        self.mgr = mgr
        self.design = design
        self._values: Dict[str, FourVec] = {}
        self._arrays: Dict[str, Dict[int, FourVec]] = {}
        for name, info in design.nets.items():
            self.register(info)

    def register(self, info: NetInfo) -> None:
        """(Re)initialize storage for one net (also used for shadows)."""
        if info.array is not None:
            self._arrays[info.full_name] = {}
            return
        if info.kind == "event":
            value = FourVec.from_int(self.mgr, 0, 1)
        elif info.is_net:
            value = FourVec.all_z(self.mgr, info.width)
        else:
            value = FourVec.all_x(self.mgr, info.width)
        signed = info.signed or info.kind in ("integer", "time")
        self._values[info.full_name] = value.as_signed(signed)

    def sync_with_design(self) -> None:
        """Register any nets added to the design after construction
        (shadow registers created during compilation)."""
        for name, info in self.design.nets.items():
            if name not in self._values and name not in self._arrays:
                self.register(info)

    # ------------------------------------------------------------------
    # scalar / vector objects
    # ------------------------------------------------------------------

    def value(self, name: str) -> FourVec:
        try:
            stored = self._values[name]
        except KeyError:
            if name in self._arrays:
                raise SimulationError(
                    f"memory {name!r} read without a word index"
                ) from None
            raise SimulationError(f"unknown object {name!r}") from None
        if type(stored) is int:
            return self._materialize(name, stored)
        return stored

    def _materialize(self, name: str, raw: int) -> FourVec:
        """Expand a raw word into the vector a generic write stores."""
        info = self.design.net(name)
        signed = info.signed or info.kind in ("integer", "time")
        vec = FourVec.from_int(self.mgr, raw, info.width).as_signed(signed)
        self._values[name] = vec
        return vec

    def peek(self, name: str):
        """The slot as stored: an ``int`` raw word or a ``FourVec``."""
        return self._values[name]

    def known_word(self, name: str):
        """Raw unsigned word iff the value is fully known, else None.

        Equivalent to ``value(name).known_int()`` but does not
        materialize raw slots — the compiled tier's word probes stay
        in the integer domain end to end.
        """
        stored = self._values[name]
        if type(stored) is int:
            return stored
        return stored.known_int()

    def store_raw(self, name: str, raw: int) -> None:
        """Park a fully-known word (pre-masked to the declared width)."""
        self._values[name] = raw

    def set_value(self, name: str, value: FourVec) -> None:
        if name not in self._values:
            raise SimulationError(f"unknown object {name!r}")
        self._values[name] = value

    def names(self) -> Iterator[str]:
        return iter(self._values)

    # ------------------------------------------------------------------
    # memories
    # ------------------------------------------------------------------

    def is_array(self, name: str) -> bool:
        return name in self._arrays

    def array_words(self, name: str) -> Dict[int, FourVec]:
        return self._arrays[name]

    def read_array(
        self, name: str, index: FourVec, low: int, high: int
    ) -> FourVec:
        """Read ``name[index]`` — symbolic indices mux over written words.

        Out-of-range and X/Z indices read all-X, as do unwritten words.
        """
        info = self.design.net(name)
        words = self._arrays[name]
        concrete = index.to_int_or_none()
        if concrete is not None and index.is_fully_known():
            if low <= concrete <= high:
                return words.get(concrete, FourVec.all_x(self.mgr, info.width))
            return FourVec.all_x(self.mgr, info.width)
        result = FourVec.all_x(self.mgr, info.width)
        for word_index, word in words.items():
            cond = ops.equal(
                index, FourVec.from_int(self.mgr, word_index, index.width)
            ).truthy()
            if cond == FALSE:
                continue
            result = word.ite(cond, result)
        return result

    def write_array(
        self,
        name: str,
        index: FourVec,
        value: FourVec,
        control: int,
        low: int,
        high: int,
    ) -> int:
        """Guarded write of ``name[index]``; returns the change condition.

        A symbolic index updates every in-range word under the
        appropriate equality condition.  X/Z index bits make the write
        vanish on those paths (1364: writes to invalid addresses are
        lost).
        """
        if control == FALSE:
            return FALSE
        info = self.design.net(name)
        words = self._arrays[name]
        value = value.resize(info.width)
        concrete = index.to_int_or_none()
        change = FALSE
        if concrete is not None and index.is_fully_known():
            if not low <= concrete <= high:
                return FALSE
            old = words.get(concrete, FourVec.all_x(self.mgr, info.width))
            new = value.ite(control, old)
            if new.bits != old.bits:
                change = old.change_condition(new)
                words[concrete] = new
            return change
        known = index.known()
        for word_index in range(low, high + 1):
            cond = ops.equal(
                index, FourVec.from_int(self.mgr, word_index, index.width)
            ).truthy()
            cond = self.mgr.and_(self.mgr.and_(cond, control), known)
            if cond == FALSE:
                continue
            old = words.get(word_index, FourVec.all_x(self.mgr, info.width))
            new = value.ite(cond, old)
            if new.bits != old.bits:
                change = self.mgr.or_(change, old.change_condition(new))
                words[word_index] = new
        return change

    # ------------------------------------------------------------------
    # BDD root-provider protocol (GC / in-place reordering)
    # ------------------------------------------------------------------

    def bdd_roots(self) -> Iterator[int]:
        """Every BDD node id held by a net value or memory word."""
        for vec in self._values.values():
            if type(vec) is int:
                continue  # raw word: terminal rails only, no live nodes
            for a, b in vec.bits:
                yield a
                yield b
        for words in self._arrays.values():
            for vec in words.values():
                for a, b in vec.bits:
                    yield a
                    yield b

    def bdd_remap(self, lookup, level_map) -> None:
        """Rewrite the store after an arena compaction/reorder."""
        values = self._values
        for name, vec in values.items():
            if type(vec) is int:
                continue  # raw word: nothing to remap
            values[name] = vec.remap(lookup)
        for words in self._arrays.values():
            for index, vec in words.items():
                words[index] = vec.remap(lookup)

    # ------------------------------------------------------------------
    # witness substitution (error-trace support)
    # ------------------------------------------------------------------

    def snapshot_names(self) -> Tuple[str, ...]:
        return tuple(self._values)

    # ------------------------------------------------------------------
    # checkpoint support (repro.guard)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Pure-builtin image of the store (node ids + signedness).

        Node ids are only meaningful against the arena image saved in
        the same checkpoint; the pair round-trips exactly.
        """
        return {
            "values": {
                # value() materializes raw words, so a compiled-tier
                # checkpoint is byte-identical to an interpreter one.
                name: (list(vec.bits), vec.signed)
                for name, vec in [(n, self.value(n))
                                  for n in list(self._values)]
            },
            "arrays": {
                name: {
                    index: (list(vec.bits), vec.signed)
                    for index, vec in words.items()
                }
                for name, words in self._arrays.items()
            },
        }

    def restore(self, image: Dict[str, Dict]) -> None:
        """Rebuild the store from a :meth:`snapshot` image."""
        self._values = {
            name: FourVec(self.mgr, [tuple(bit) for bit in bits], signed)
            for name, (bits, signed) in image["values"].items()
        }
        self._arrays = {
            name: {
                index: FourVec(self.mgr, [tuple(bit) for bit in bits], signed)
                for index, (bits, signed) in words.items()
            }
            for name, words in image["arrays"].items()
        }
