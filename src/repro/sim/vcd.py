"""VCD (Value Change Dump) waveform output.

``$dumpfile("x.vcd")`` + ``$dumpvars`` in the testbench — or
``SimOptions(vcd_path=...)`` — produce an IEEE-1364 VCD file viewable
in GTKWave & co.  During *symbolic* simulation a bit that is still
symbolic has no single waveform value; it is emitted as ``x`` (the
honest projection), while concrete resimulations produce exact
waveforms.  Memories and the kernel's internal shadow registers are
not dumped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO

from repro.bdd import TRUE
from repro.fourval import FourVec

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """VCD short identifiers: printable-ASCII base-94 counter."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


def _value_chars(value: FourVec) -> str:
    """MSB-first characters; symbolic bits project to 'x'."""
    chars = []
    for a, b in reversed(value.bits):
        if a > TRUE or b > TRUE:
            chars.append("x")
        elif b == TRUE:
            chars.append("x" if a == TRUE else "z")
        else:
            chars.append("1" if a == TRUE else "0")
    return "".join(chars)


class VcdWriter:
    """Streams value changes for a set of nets to a VCD file."""

    def __init__(self, stream: TextIO, timescale: str = "1ns") -> None:
        self._stream = stream
        self._timescale = timescale
        self._ids: Dict[str, str] = {}
        self._widths: Dict[str, int] = {}
        self._last: Dict[str, str] = {}
        self._header_done = False
        self._current_time: Optional[int] = None

    # ------------------------------------------------------------------

    def declare(self, full_name: str, width: int) -> None:
        """Register one net before the header is written."""
        if self._header_done or full_name in self._ids:
            return
        self._ids[full_name] = _identifier(len(self._ids))
        self._widths[full_name] = width

    def write_header(self, top: str) -> None:
        out = self._stream
        out.write(f"$timescale {self._timescale} $end\n")
        # group variables by hierarchical scope
        scoped: Dict[str, List[str]] = {}
        for name in self._ids:
            scope, _, leaf = name.rpartition(".")
            scoped.setdefault(scope, []).append(name)
        out.write(f"$scope module {top} $end\n")
        for name in scoped.get("", []):
            self._write_var(name, name)
        for scope in sorted(s for s in scoped if s):
            for part in scope.split("."):
                out.write(f"$scope module {part} $end\n")
            for name in scoped[scope]:
                self._write_var(name, name.rpartition(".")[2])
            for _ in scope.split("."):
                out.write("$upscope $end\n")
        out.write("$upscope $end\n")
        out.write("$enddefinitions $end\n")
        self._header_done = True

    def _write_var(self, full_name: str, leaf: str) -> None:
        width = self._widths[full_name]
        ref = leaf if width == 1 else f"{leaf} [{width - 1}:0]"
        self._stream.write(
            f"$var wire {width} {self._ids[full_name]} {ref} $end\n"
        )

    # ------------------------------------------------------------------

    def record(self, sim_time: int, full_name: str, value: FourVec) -> None:
        """Emit a change record (deduplicated against the last value)."""
        ident = self._ids.get(full_name)
        if ident is None:
            return
        chars = _value_chars(value)
        if self._last.get(full_name) == chars:
            return
        self._last[full_name] = chars
        if self._current_time != sim_time:
            self._current_time = sim_time
            self._stream.write(f"#{sim_time}\n")
        if len(chars) == 1:
            self._stream.write(f"{chars}{ident}\n")
        else:
            self._stream.write(f"b{chars} {ident}\n")

    def dump_all(self, sim_time: int, values) -> None:
        """Emit the current value of every declared net (``$dumpvars``)."""
        self._current_time = sim_time
        self._stream.write("$dumpvars\n")
        for name in self._ids:
            value = values(name)
            if value is not None:
                self._last.pop(name, None)
                self.record(sim_time, name, value)
        self._stream.write("$end\n")

    def close(self) -> None:
        self._stream.flush()
