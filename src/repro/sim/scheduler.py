"""The stratified, priority-ordered event queue with accumulation.

The queue implements two orthogonal orderings:

* IEEE-1364 stratification: within one simulation time, ACTIVE events
  run before INACTIVE (``#0``) events, which run before non-blocking
  update events, which run before the MONITOR region (``$monitor``,
  ``$strobe`` and the paper's end-of-step ``$assert`` checks).
* the paper's priority discipline (Section 4c): within the ACTIVE
  region, events carry an integer priority; higher priorities run
  first, so events of nested control statements complete (and merge)
  before events of enclosing statements — depth-first processing.

*Event accumulation* (Fig. 8) is the ``schedule`` fast path: an event
with the same (time, region, priority, process, label) as a pending
event is merged by OR-ing the control expressions instead of being
enqueued.  :class:`repro.sim.kernel.SimOptions.accumulation` selects
the Table-1 levels: ``FULL`` (merge + accumulation events),
``QUEUE_MERGE_ONLY`` (merge, but join instructions fall through) and
``NONE`` (every schedule call enqueues a fresh event).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.compile.instructions import AccumulationMode, CompiledProcess

REGION_ACTIVE = 0
REGION_INACTIVE = 1
REGION_NBA = 2
REGION_MONITOR = 3


@dataclass
class Event:
    """One scheduled event.

    ``kind`` is ``'proc'`` (resume a process frame at label ``pc`` with
    ``control``/``prio``), ``'nba'`` (apply a captured non-blocking
    update), ``'assign'`` (re-evaluate continuous assign ``index``) or
    ``'drive'`` (commit a delayed continuous-assign value).
    """

    time: int
    region: int
    prio: int
    kind: str
    process: Optional[CompiledProcess] = None
    pc: int = 0
    control: int = 0
    apply: Optional[Callable] = None
    index: int = -1
    payload: Any = None


class Scheduler:
    """Heap-backed stratified queue with accumulation merging."""

    def __init__(self, mgr, mode: AccumulationMode,
                 depth_first: bool = True, obs=None) -> None:
        self.mgr = mgr
        self.mode = mode
        #: Optional :class:`repro.obs.Observability` bundle; when set,
        #: every accumulation merge is reported via ``obs.on_merge``
        #: (trace instant + profiler merge attribution + counter).
        self.obs = obs
        #: When False, the paper's priority discipline (Section 4c) is
        #: ablated: ACTIVE events run FIFO regardless of priority, so
        #: inner-statement paths no longer complete (and merge) before
        #: enclosing statements process.  Semantics are unaffected —
        #: only merge opportunity is lost.
        self.depth_first = depth_first
        self._heap: List[Tuple[int, int, int, int, Event]] = []
        self._pending: Dict[tuple, Event] = {}
        self._seq = 0
        self.scheduled = 0
        self.merged = 0

    def __len__(self) -> int:
        return len(self._heap)

    def _key(self, event: Event) -> Optional[tuple]:
        if event.kind == "proc":
            return ("proc", event.time, event.region, event.prio,
                    event.process.index, event.pc)
        if event.kind == "assign":
            return ("assign", event.time, event.index)
        return None  # nba/drive events never merge

    def push(self, event: Event) -> bool:
        """Enqueue ``event``; returns True if it merged into a pending one.

        Merging ORs the ``control`` expressions (Fig. 8); ``assign``
        events are control-free, so merging is pure deduplication.
        """
        if self.mode is not AccumulationMode.NONE:
            key = self._key(event)
            if key is not None:
                existing = self._pending.get(key)
                if existing is not None:
                    if event.kind == "proc":
                        existing.control = self.mgr.or_(
                            existing.control, event.control
                        )
                    self.merged += 1
                    if self.obs is not None:
                        self.obs.on_merge(event)
                    return True
                self._pending[key] = event
        self._seq += 1
        self.scheduled += 1
        rank = -event.prio if self.depth_first else 0
        heapq.heappush(
            self._heap,
            (event.time, event.region, rank, self._seq, event),
        )
        return False

    def pop(self) -> Event:
        """Remove and return the next event in (time, region, -prio) order."""
        _, _, _, _, event = heapq.heappop(self._heap)
        key = self._key(event)
        if key is not None:
            self._pending.pop(key, None)
        return event

    def peek_time(self) -> Optional[int]:
        """Time of the next event, or None when the queue is empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    # ------------------------------------------------------------------
    # BDD root-provider protocol (GC / in-place reordering)
    # ------------------------------------------------------------------

    def bdd_roots(self):
        """Every BDD node id held by a queued event."""
        for _, _, _, _, event in self._heap:
            kind = event.kind
            if kind == "proc":
                yield event.control
            elif kind == "nba":
                yield from event.apply.bdd_roots()
            elif kind == "drive" and event.payload is not None:
                for a, b in event.payload.bits:
                    yield a
                    yield b

    def bdd_remap(self, lookup, level_map) -> None:
        """Rewrite queued events after an arena compaction/reorder.

        ``_pending`` aliases the same :class:`Event` objects as the
        heap, so rewriting the heap entries covers both.
        """
        for _, _, _, _, event in self._heap:
            kind = event.kind
            if kind == "proc":
                event.control = lookup(event.control)
            elif kind == "nba":
                event.apply.bdd_remap(lookup)
            elif kind == "drive" and event.payload is not None:
                event.payload = event.payload.remap(lookup)

    def peek_region(self) -> Optional[int]:
        if not self._heap:
            return None
        return self._heap[0][1]

    # ------------------------------------------------------------------
    # checkpoint support (repro.guard)
    # ------------------------------------------------------------------

    def snapshot_events(self) -> List[Event]:
        """The queued events in exact pop order.

        Heap entries are ``(time, region, rank, seq, event)`` with a
        unique ``seq``, so sorting them *is* the pop order — the
        checkpoint layer serializes events in this order and
        :meth:`restore_events` replays it, giving a resumed run the
        identical event schedule.
        """
        return [entry[4] for entry in sorted(self._heap)]

    def restore_events(self, events: List[Event]) -> None:
        """Rebuild the queue from a :meth:`snapshot_events` list.

        Events are re-sequenced in list order, which preserves the
        original pop order; the merge table is rebuilt so accumulation
        keeps working on the resumed run.
        """
        self._heap.clear()
        self._pending.clear()
        self._seq = 0
        merging = self.mode is not AccumulationMode.NONE
        for event in events:
            self._seq += 1
            rank = -event.prio if self.depth_first else 0
            heapq.heappush(
                self._heap,
                (event.time, event.region, rank, self._seq, event),
            )
            if merging:
                key = self._key(event)
                if key is not None:
                    self._pending[key] = event
