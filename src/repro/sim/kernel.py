"""The symbolic simulation kernel.

Executes a compiled :class:`~repro.compile.compiler.Program` under the
paper's event-driven discipline:

* process frames carry ``(pc, control, prio)`` and run until a
  ``returnToSimulator()`` (Delay / WaitEvent / Join / End);
* the scheduler merges same-label events (event accumulation, Fig. 8);
* assignments are guarded ``ite(control, rhs, old)`` writes that
  produce *symbolic change conditions*, which wake event-control
  waiters under exactly the paths on which a value change occurred;
* ``$random`` injects fresh BDD variables and logs (vector, control)
  invocation records per call site (Section 5);
* ``$error`` suspends and extracts an error trace; ``$assert``
  registers a checker evaluated at the end of every time step.

The same kernel runs *concrete resimulation*: constructed with the
``concrete_values`` of an :class:`~repro.sim.trace.ErrorTrace`, every
``$random`` pops a recorded explicit value instead of creating a
variable, turning the run into a conventional single-trace simulation.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence

from repro.bdd import FALSE, TRUE, BddManager
from repro.compile.compiler import CompiledContAssign, Program, Trigger
from repro.compile.expr import CExpr
from repro.compile.instructions import AccumulationMode, CompiledProcess, Frame
from repro.errors import (
    ResimulationError, SimulationAborted, SimulationError, SimulationHang,
    SymbolicDelayError,
)
from repro.fourval import FourVec, ops
from repro.fourval.vector import BIT_Z
from repro.obs.profiler import event_label
from repro.obs.tracer import LANE_EVENT, LANE_STEP
from repro.sim import systasks
from repro.sim.scheduler import (
    Event, REGION_ACTIVE, REGION_INACTIVE, REGION_MONITOR, REGION_NBA,
    Scheduler,
)
from repro.sim.state import SimState
from repro.sim.stats import SimStats
from repro.sim.trace import (
    RandomInvocation, Violation, build_error_trace,
)


class _FinishSignal(Exception):
    """Internal unwind for ``$finish``/``$stop``/violation stops."""


class _PathFinish(Exception):
    """One execution path hit ``$finish``; others keep running."""


@dataclass
class SimOptions:
    """Kernel configuration.

    ``accumulation`` selects the Table-1 event-accumulation level.
    ``max_step_activity`` is the zero-delay watchdog: the maximum
    number of events + loop iterations within one simulation time
    before :class:`SimulationHang` is raised.
    """

    accumulation: AccumulationMode = AccumulationMode.FULL
    max_step_activity: int = 1_000_000
    trace_stats: bool = False
    stop_on_violation: bool = True
    echo_output: bool = False
    check_unknown_assert: bool = False
    #: When set, ``$random`` returns *concrete* pseudo-random values
    #: seeded here — conventional random simulation with the identical
    #: testbench, the paper's baseline in Section 7.
    concrete_random: Optional[int] = None
    #: Write a VCD waveform here from time 0 (also reachable from the
    #: testbench via ``$dumpfile``/``$dumpvars``).  Symbolic bits dump
    #: as ``x``; concrete resimulations produce exact waveforms.
    vcd_path: Optional[str] = None
    #: Ablation switch for the paper's Section-4c priority discipline:
    #: with False, ACTIVE events run FIFO instead of depth-first, so
    #: nested statements no longer merge before enclosing ones.
    depth_first_priorities: bool = True
    #: Arena growth (in nodes) that triggers mark-and-sweep BDD garbage
    #: collection at the end-of-step safe point; ``None`` keeps the
    #: original append-only arena.
    gc_threshold: Optional[int] = None
    #: Enable dynamic sifting-based variable reordering between time
    #: steps (the paper ran with dynamic reordering disabled; this is
    #: the scaling knob CUDD would have provided).
    dyn_reorder: bool = False
    #: Minimum arena size before a sift is considered.
    reorder_threshold: int = 4096
    #: Re-sift when the live graph grows by this factor since the last
    #: reorder.
    reorder_growth: float = 2.0
    #: Optional :class:`repro.obs.Observability` bundle (tracer /
    #: metrics registry / hot-spot profiler).  With None — the default
    #: — no observability code runs: the kernel leaves its fast-path
    #: methods un-wrapped and every remaining hook is one identity
    #: check.
    obs: Optional[object] = None
    #: Optional :class:`repro.guard.ResourceBudgets` enforced at the
    #: end-of-step safe points.  Breaches drive the mitigation ladder
    #: (GC -> sift reorder -> concretize -> abort with a rescue
    #: checkpoint and a structured SimulationAborted).
    budgets: Optional[object] = None
    #: Write a rolling checkpoint every N end-of-step safe points
    #: (requires ``checkpoint_dir``).
    checkpoint_every: Optional[int] = None
    #: Directory for rolling/rescue/interrupt checkpoints.
    checkpoint_dir: Optional[str] = None
    #: Optional :class:`repro.guard.faults.FaultInjector` — a
    #: deterministic chaos plan whose faults fire at safe points.
    faults: Optional[object] = None
    #: Disable the hybrid concrete/symbolic fast paths: every operator
    #: runs the generic per-bit BDD construction.  Results are
    #: bit-identical either way; the flag exists for differential
    #: testing and for measuring the fast-path speedup (Table 1's
    #: ``FULL`` vs ``FULL/nofp`` cells, ``symsim --no-fastpath``).
    no_fastpath: bool = False
    #: Run processes through the compiled tier
    #: (:mod:`repro.compile.codegen`): instruction streams are fused
    #: into specialized block closures with compile-time-decided word
    #: fast paths.  Results are bit-identical to the interpreter —
    #: which stays available as the differential oracle behind
    #: ``symsim --no-compile`` — and the flag is operational, not
    #: semantic (batch fingerprints and journals ignore it).
    compile_tier: bool = True
    #: Write a live heartbeat status record to this file (atomically
    #: replaced) every ``heartbeat_every`` end-of-step safe points and
    #: once more at run end — the ``repro.obs.heartbeat/1`` records
    #: behind ``symsim top`` / ``symsim serve-metrics``.
    heartbeat_path: Optional[str] = None
    #: End-of-step safe points between heartbeats (default
    #: :data:`repro.obs.live.DEFAULT_EVERY` when a heartbeat sink is
    #: configured; setting only this field enables in-process
    #: heartbeats with no file sink).
    heartbeat_every: Optional[int] = None
    #: In-process heartbeat consumer: called with each status record
    #: dict.  Not picklable — single-process use only (the batch
    #: engine rejects requests carrying one).
    heartbeat_callback: Optional[Callable[[dict], None]] = None
    #: Run name stamped into heartbeat records (defaults to the design
    #: top; the batch engine stamps the request name).
    heartbeat_name: Optional[str] = None
    #: Defer SIGINT to the next safe point: the first Ctrl-C finishes
    #: the current time step, writes a checkpoint when a
    #: ``checkpoint_dir`` is configured, and returns an ``interrupted``
    #: result with all stats/metrics flushed; a second Ctrl-C raises
    #: KeyboardInterrupt immediately (mid-step state is then suspect,
    #: so no checkpoint is written).
    defer_interrupt: bool = True


class SimStatus(str, Enum):
    """Stable outcome classification shared by the CLI, the batch
    engine and any caller that aggregates :class:`SimResult` objects.

    ``HANG`` never appears on a returned :class:`SimResult` — a hang
    raises :class:`~repro.errors.SimulationHang` — but the batch
    engine folds caught hangs into the same enum so one report shape
    covers every run.
    """

    OK = "ok"
    ASSERT_FAILED = "assert_failed"
    ABORTED = "aborted"
    HANG = "hang"


#: Schema tag of :meth:`SimResult.to_dict` payloads.
RESULT_SCHEMA = "repro.sim.result/1"


@dataclass
class SimResult:
    """Outcome of a :meth:`Kernel.run` call."""

    time: int
    violations: List[Violation]
    output: List[str]
    stats: SimStats
    finished: bool
    stopped: bool
    kernel: "Kernel"
    #: True when the run was stopped by a deferred SIGINT at a safe
    #: point instead of running to completion.
    interrupted: bool = False
    #: True when this is the partial result attached to a
    #: :class:`~repro.errors.SimulationAborted` (resource guard abort).
    aborted: bool = False

    def value(self, name: str) -> FourVec:
        """Current value of a net by full hierarchical name."""
        return self.kernel.state.value(name)

    @property
    def status(self) -> SimStatus:
        """The run's :class:`SimStatus` (stable, documented in README)."""
        if self.aborted:
            return SimStatus.ABORTED
        if self.violations:
            return SimStatus.ASSERT_FAILED
        return SimStatus.OK

    def error_trace(self):
        """The first violation's :class:`~repro.sim.trace.ErrorTrace`
        (``None`` for a clean run) — the resimulation input."""
        return self.violations[0].trace if self.violations else None

    def metrics(self) -> dict:
        """Flat, JSON-able counters for this run.

        Every value is deterministic for a deterministic simulation —
        wall-clock quantities (CPU seconds, GC/reorder seconds) are
        deliberately excluded so two runs of the same program compare
        equal byte for byte (the batch determinism guarantee).
        """
        stats = self.stats
        payload = {
            "events_processed": stats.events_processed,
            "events_scheduled": stats.events_scheduled,
            "events_merged": stats.events_merged,
            "process_events": stats.process_events,
            "nba_events": stats.nba_events,
            "assign_events": stats.assign_events,
            "instructions": stats.instructions,
            "symbols_injected": stats.symbols_injected,
        }
        payload["bdd"] = {
            key: value for key, value in sorted(stats.bdd.items())
            if not key.endswith("_seconds")
        }
        return payload

    def to_dict(self) -> dict:
        """Stable JSON-able payload (``repro.sim.result/1``).

        One shape for everything that reports on a run: the CLI, batch
        aggregation, and user scripting.  Deterministic for a
        deterministic simulation (see :meth:`metrics`).
        """
        return {
            "schema": RESULT_SCHEMA,
            "status": self.status.value,
            "time": self.time,
            "finished": self.finished,
            "stopped": self.stopped,
            "interrupted": self.interrupted,
            "aborted": self.aborted,
            "output": list(self.output),
            "violations": [
                {
                    "kind": violation.kind,
                    "where": violation.where,
                    "message": violation.message,
                    "time": violation.time,
                    "trace": [
                        {
                            "callsite_index": entry.callsite_index,
                            "where": entry.where,
                            "seq": entry.seq,
                            "time": entry.time,
                            "executed": entry.executed,
                            "value": entry.value,
                        }
                        for entry in violation.trace.entries
                    ],
                }
                for violation in self.violations
            ],
            "metrics": self.metrics(),
        }


@dataclass
class _Assertion:
    cond: CExpr
    armed: int
    where: str


@dataclass
class _TriggerState:
    trigger: Trigger
    last: FourVec


@dataclass
class _Waiter:
    kind: str  # 'event' | 'level'
    process: CompiledProcess
    pc: int
    control: int
    prio: int
    triggers: List[_TriggerState] = field(default_factory=list)
    cond: Optional[CExpr] = None
    dead: bool = False


class Kernel:
    """Event-driven symbolic simulator for one compiled program."""

    REGION_ACTIVE = REGION_ACTIVE
    REGION_INACTIVE = REGION_INACTIVE
    REGION_NBA = REGION_NBA
    REGION_MONITOR = REGION_MONITOR

    def __init__(
        self,
        program: Program,
        options: Optional[SimOptions] = None,
        mgr: Optional[BddManager] = None,
        concrete_values: Optional[Dict[int, Sequence[str]]] = None,
    ) -> None:
        self.program = program
        self.design = program.design
        self.options = options or SimOptions()
        self.mgr = mgr or BddManager()
        self.mgr.fastpath = not self.options.no_fastpath
        self.mgr.gc_threshold = self.options.gc_threshold
        self.mgr.dyn_reorder = self.options.dyn_reorder
        self.mgr.sift_threshold = self.options.reorder_threshold
        self.mgr.reorder_growth = self.options.reorder_growth
        # The kernel is the manager's root provider: at every GC or
        # reorder it enumerates/rewrites all node ids it holds.
        self.mgr.register_root_provider(self)
        self.state = SimState(self.mgr, self.design)
        self.obs = self.options.obs
        self.sched = Scheduler(self.mgr, self.options.accumulation,
                               depth_first=self.options.depth_first_priorities,
                               obs=self.obs)
        self.stats = SimStats()
        self._tracer = self.obs.tracer if self.obs is not None else None
        self._profiler = self.obs.profiler if self.obs is not None else None
        self._metrics = self.obs.metrics if self.obs is not None else None
        self._step_open = False
        self._last_nba_flush = -1
        self._m_events = self._m_cpu = None
        #: [fast-path hits, generic fallbacks] of the compiled tier —
        #: per kernel, not per Program: differential runs share one
        #: Program between two kernels.
        self._ctier = [0, 0]
        self._ctables = None
        #: True when the compiled tier may take word fast paths in the
        #: kernel's reactive machinery (continuous assigns, assertion
        #: checks) — mirrors the same specialize gate the generated
        #: blocks use, so counters stay bit-identical across tiers.
        self._cspec = False
        self._frame_impl = self._run_frame
        if self.options.compile_tier:
            # The actual codegen is deferred to _startup() so that
            # instrumentation inserted between construction and run()
            # (tests patch instruction streams in place) is compiled
            # in, exactly as the interpreter would observe it.
            self._frame_impl = (
                self._run_frame_profiled if self._profiler is not None
                else self._run_frame_compiled
            )
            self._run_frame = self._frame_impl
        if self.obs is not None:
            # Swap in instrumented entry points via instance attributes
            # so the un-instrumented hot paths stay untouched when off.
            # Metrics-only bundles need no per-event hook at all: series
            # are sampled on time advance and gauges read at the end.
            if self._tracer is not None or self._profiler is not None:
                self._dispatch = self._obs_dispatch
            if self._tracer is not None:
                self._run_frame = self._obs_run_frame
            if self._metrics is not None:
                self._init_metrics()
        self.now = 0
        self.finished = False
        self.stopped = False
        self.violations: List[Violation] = []
        self.output: List[str] = []
        self.random_log: List[RandomInvocation] = []
        self._callsite_seq: Dict[int, int] = {}
        self._assertions: Dict[str, _Assertion] = {}
        self._monitor: Optional[tuple] = None
        self._monitor_last: Optional[str] = None
        self._strobes: List[tuple] = []
        self._waiters: Dict[str, List[_Waiter]] = {}
        self._assign_subs: Dict[str, List[int]] = {}
        self._drivers: Dict[str, Dict[tuple, FourVec]] = {}
        self._step_activity = 0
        self._started = False
        self._busy = False
        self._cpu_accum = 0.0
        self._finish_control = FALSE
        self._line_open = False
        self._vcd = None
        self._vcd_stream = None
        self._vcd_path = self.options.vcd_path
        self._concrete = (
            {k: deque(v) for k, v in concrete_values.items()}
            if concrete_values is not None else None
        )
        self._rng = None
        if self.options.concrete_random is not None:
            import random as _random

            self._rng = _random.Random(self.options.concrete_random)
        self._interrupted = False
        self._sigint_flag = [False]
        self._monitor_key: Optional[str] = None
        self._hang_sites: Optional[Dict[str, int]] = None
        self._hang_support = 0
        self._guard = None
        if (self.options.budgets is not None
                or self.options.checkpoint_every is not None
                or self.options.checkpoint_dir is not None
                or self.options.faults is not None):
            from repro.guard import Guard

            self._guard = Guard(
                budgets=self.options.budgets,
                checkpoint_every=self.options.checkpoint_every,
                checkpoint_dir=self.options.checkpoint_dir,
                faults=self.options.faults,
                obs=self.obs,
            )
        self._heartbeat = None
        if (self.options.heartbeat_path is not None
                or self.options.heartbeat_every is not None
                or self.options.heartbeat_callback is not None):
            from repro.obs.live import DEFAULT_EVERY, Heartbeat

            self._heartbeat = Heartbeat(
                path=self.options.heartbeat_path,
                callback=self.options.heartbeat_callback,
                every=self.options.heartbeat_every or DEFAULT_EVERY,
                name=self.options.heartbeat_name,
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def is_concrete(self) -> bool:
        """True when running as a concrete resimulation or random sim."""
        return self._concrete is not None or self._rng is not None

    def run(self, until: Optional[int] = None) -> SimResult:
        """Run until the queue drains, ``$finish``, a violation (with
        ``stop_on_violation``), or simulation time exceeds ``until``.

        ``run`` may be called repeatedly with increasing ``until`` to
        continue a paused simulation.
        """
        if not self._started:
            self._startup()
        cpu_start = _time.perf_counter()
        self._busy = True
        restore_sigint = self._arm_sigint()
        if self._guard is not None:
            self._guard.on_run_start(self)
        if self._heartbeat is not None:
            self._heartbeat.on_run_start(self, until)
        abort = None
        try:
            self._event_loop(until)
        except _FinishSignal:
            self._end_of_step()
        except SimulationAborted as exc:
            # Re-raised below with the flushed partial result attached.
            abort = exc
        finally:
            if restore_sigint is not None:
                restore_sigint()
            self._busy = False
            self._cpu_accum += _time.perf_counter() - cpu_start
            self.stats.events_scheduled = self.sched.scheduled
            self.stats.events_merged = self.sched.merged
            self.stats.bdd = self.mgr.cache_stats()
            if self.options.trace_stats:
                self.stats.snapshot(self.now, self._cpu_accum)
            if self._metrics is not None:
                self._sample_series()
                self._publish_metrics()
            if self._tracer is not None and self._step_open:
                self._tracer.end("step", "step", lane=LANE_STEP,
                                 sim_time=self.now)
                self._step_open = False
            if self._vcd is not None and self._vcd_stream is not None:
                self._vcd_stream.flush()
        result = SimResult(
            time=self.now, violations=list(self.violations),
            output=list(self.output), stats=self.stats,
            finished=self.finished, stopped=self.stopped, kernel=self,
            interrupted=self._interrupted,
        )
        if abort is not None:
            result.aborted = True
        if self._heartbeat is not None:
            self._heartbeat.on_run_end(self, self._heartbeat_status(result))
        if abort is not None:
            abort.partial_result = result
            raise abort
        return result

    def _heartbeat_status(self, result: SimResult) -> str:
        """The heartbeat status string for a finished ``run()`` call."""
        if result.aborted:
            return SimStatus.ABORTED.value
        if result.interrupted:
            return "interrupted"
        if result.violations:
            return SimStatus.ASSERT_FAILED.value
        if not result.finished and self.sched.peek_time() is not None:
            # paused at an `until` bound with work still queued — the
            # run is expected to continue
            return "running"
        return SimStatus.OK.value

    def _arm_sigint(self) -> Optional[Callable]:
        """Defer Ctrl-C to the next safe point (main thread only).

        The first SIGINT only sets a flag the event loop polls between
        time steps — the manager and value store are never unwound
        mid-operation.  A second SIGINT raises immediately for users
        who really mean it.  Returns a restore callable, or ``None``
        when no handler was installed.
        """
        if not self.options.defer_interrupt:
            return None
        import signal

        flag = self._sigint_flag
        flag[0] = False

        def handler(signum, frame):
            if flag[0]:
                raise KeyboardInterrupt
            flag[0] = True

        try:
            previous = signal.signal(signal.SIGINT, handler)
        except ValueError:  # not the main thread — leave signals alone
            return None
        return lambda: signal.signal(signal.SIGINT, previous)

    @property
    def cpu_seconds(self) -> float:
        return self._cpu_accum

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _ensure_compiled_tier(self) -> None:
        """Build (or fetch the cached) codegen tables on first run.

        Deferred past construction so instruction streams patched
        after ``open_sim`` compile in; also invoked by checkpoint
        restore, which marks the kernel started without ``_startup``.
        """
        if self.options.compile_tier and self._ctables is None:
            from repro.compile.codegen import compiled_tables

            self._ctables = compiled_tables(
                self.program, self.options.accumulation,
                specialize=not self.options.no_fastpath,
            )
            self._cspec = self._ctables.specialize

    def _startup(self) -> None:
        self._started = True
        self._ensure_compiled_tier()
        self.state.sync_with_design()
        for name, info in self.design.nets.items():
            if info.kind in ("supply0", "supply1"):
                value = 0 if info.kind == "supply0" else (1 << info.width) - 1
                self._drivers.setdefault(name, {})[("supply",)] = (
                    FourVec.from_int(self.mgr, value, info.width)
                )
                self._resolve_net(name)
        for assign in self.program.assigns:
            for net in assign.support:
                self._assign_subs.setdefault(net, []).append(assign.index)
            self.schedule_assign(assign.index)
        for proc in self.program.processes:
            self.schedule(proc, 0, 0, TRUE, 0)
        if self._vcd_path is not None:
            self.enable_vcd()

    def _event_loop(self, until: Optional[int]) -> None:
        cpu_mark = _time.perf_counter()
        tracer = self._tracer
        if tracer is not None and not self._step_open:
            tracer.begin("step", "step", lane=LANE_STEP, sim_time=self.now)
            self._step_open = True
        while True:
            next_time = self.sched.peek_time()
            if next_time is None:
                self._end_of_step()
                return
            if next_time > self.now:
                self._end_of_step()
                if self.finished or (
                    self.options.stop_on_violation and self.violations
                ):
                    return
                if until is not None and next_time > until:
                    return
                if self.options.trace_stats:
                    now_cpu = _time.perf_counter()
                    self._cpu_accum += now_cpu - cpu_mark
                    cpu_mark = now_cpu
                    self.stats.snapshot(self.now, self._cpu_accum)
                    if self._m_events is not None:
                        self._sample_series()
                mgr = self.mgr
                if mgr.gc_threshold is not None or mgr.dyn_reorder:
                    # End-of-step is the BDD safe point: no raw node
                    # ids live in Python locals of in-flight operators.
                    self._maintain()
                if self._guard is not None:
                    # Budgets / mitigation ladder / periodic checkpoints
                    # / injected faults all act here, at the safe point.
                    self._guard.on_safe_point(self)
                if self._heartbeat is not None:
                    self._heartbeat.on_safe_point(self)
                if self._sigint_flag[0]:
                    self._sigint_flag[0] = False
                    self._interrupted = True
                    if self._guard is not None:
                        self._guard.on_interrupt(self)
                    return
                if tracer is not None:
                    if self._step_open:
                        tracer.end("step", "step", lane=LANE_STEP,
                                   sim_time=self.now)
                    tracer.begin("step", "step", lane=LANE_STEP,
                                 sim_time=next_time)
                    self._step_open = True
                self.now = next_time
                self._step_activity = 0
                self._hang_sites = None
                self._hang_support = 0
            event = self.sched.pop()
            self._dispatch(event)
            if self.finished:
                return

    def _dispatch(self, event: Event) -> None:
        self.stats.events_processed += 1
        self.note_activity()
        if self._hang_sites is not None:
            self._note_hang_site(event_label(event), event.control)
        if event.kind == "proc":
            self.stats.process_events += 1
            if event.control == FALSE:
                return
            frame = Frame(process=event.process, pc=event.pc,
                          control=event.control, prio=event.prio)
            self._run_frame(frame)
        elif event.kind == "nba":
            self.stats.nba_events += 1
            event.apply(self)
        elif event.kind == "assign":
            self.stats.assign_events += 1
            self._eval_assign(self.program.assigns[event.index])
        elif event.kind == "drive":
            self.stats.assign_events += 1
            self._commit_drive(self.program.assigns[event.index], event.payload)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _run_frame(self, frame: Frame) -> None:
        instructions = frame.process.instructions
        stats = self.stats
        try:
            while True:
                stats.instructions += 1
                next_pc = instructions[frame.pc].execute(self, frame)
                if next_pc is None:
                    return
                frame.pc = next_pc
        except _PathFinish:
            return

    def _run_frame_compiled(self, frame: Frame) -> None:
        """Compiled-tier frame loop: one call per fused block.

        Blocks flush ``stats.instructions`` themselves and return the
        next label exactly like ``Instruction.execute``; labels missing
        from the table (possible only for resume points the static
        entry scan did not predict) build on demand.
        """
        tables = self._ctables
        index = frame.process.index
        blocks = tables.tables[index]
        pc = frame.pc
        block = blocks[pc] or tables.ensure(index, pc)
        try:
            while True:
                pc = block(self, frame)
                if pc is None:
                    return
                frame.pc = pc
                block = blocks[pc] or tables.ensure(index, pc)
        except _PathFinish:
            return

    def _run_frame_profiled(self, frame: Frame) -> None:
        """Compiled-tier loop with per-source-site block attribution.

        Each block carries its constituent ``(site, instructions)``
        pairs; recording them keeps the profiler's per-site hot spots
        instead of one opaque mega-site per resumed label
        (``_obs_dispatch`` passes 0 instructions in this mode so sites
        are not double-counted).  A ``$finish``/``$error`` that
        unwinds mid-block retires only a prefix of it; the
        ``stats.instructions`` delta (blocks flush inclusively before
        any unwinding call) picks the exact prefix of ``site_seq`` to
        attribute, so profiler totals equal ``stats.instructions`` on
        every path — same invariant as the interpreter.
        """
        profiler = self._profiler
        tables = self._ctables
        stats = self.stats
        index = frame.process.index
        blocks = tables.tables[index]
        pc = frame.pc
        block = blocks[pc] or tables.ensure(index, pc)
        try:
            while True:
                before = stats.instructions
                next_pc = block(self, frame)
                profiler.record_block(block.sites)
                if next_pc is None:
                    return
                frame.pc = next_pc
                block = blocks[next_pc] or tables.ensure(index, next_pc)
        except _PathFinish:
            profiler.record_block_partial(
                block.site_seq, stats.instructions - before)
            return
        except _FinishSignal:
            profiler.record_block_partial(
                block.site_seq, stats.instructions - before)
            raise

    def compile_tier_stats(self) -> Optional[dict]:
        """Compiled-tier counters, or ``None`` when interpreting:
        blocks built, instructions they cover, runtime fast-path
        hits/misses, and codegen wall time."""
        if self._ctables is None:
            return None
        payload = self._ctables.stats()
        payload["tier_hits"] = self._ctier[0]
        payload["tier_misses"] = self._ctier[1]
        return payload

    # ------------------------------------------------------------------
    # observability (repro.obs) — instrumented twins of the hot paths.
    # __init__ swaps these in as instance attributes when an
    # Observability bundle is configured; otherwise the plain methods
    # above run with zero added work.
    # ------------------------------------------------------------------

    def _obs_dispatch(self, event: Event) -> None:
        tracer = self._tracer
        profiler = self._profiler
        if tracer is None and profiler is None:
            # metrics-only bundles need no per-event timing
            Kernel._dispatch(self, event)
            return
        if (tracer is not None and event.kind == "nba"
                and self.now != self._last_nba_flush):
            # first NBA update of this time step — region transition
            self._last_nba_flush = self.now
            tracer.instant("nba-flush", "sched", sim_time=self.now)
        nodes_before = len(self.mgr._level)
        insns_before = self.stats.instructions
        started = _time.perf_counter()
        try:
            Kernel._dispatch(self, event)
        finally:
            # finally: a $finish unwind must still record its pop
            elapsed = _time.perf_counter() - started
            if profiler is not None:
                # Under the compiled tier the per-site instruction
                # counts come from record_block attribution instead.
                profiler.record_pop(
                    event, elapsed, len(self.mgr._level) - nodes_before,
                    0 if self._ctables is not None
                    else self.stats.instructions - insns_before,
                )
            if tracer is not None:
                tracer.complete(
                    f"pop:{event.kind}", "pop", tracer.to_us(started),
                    elapsed * 1e6, lane=LANE_EVENT,
                    site=event_label(event), sim_time=self.now,
                )

    def _obs_run_frame(self, frame: Frame) -> None:
        tracer = self._tracer
        started = _time.perf_counter()
        try:
            self._frame_impl(frame)
        finally:
            tracer.complete(
                f"resume:{frame.process.name}", "resume",
                tracer.to_us(started),
                (_time.perf_counter() - started) * 1e6,
                lane=LANE_EVENT, sim_time=self.now, pc=frame.pc,
            )

    def _init_metrics(self) -> None:
        metrics = self._metrics
        self.mgr.attach_metrics(metrics)
        self._m_events = metrics.series(
            "sim.timeline.events",
            "cumulative processed events by simulation time")
        self._m_cpu = metrics.series(
            "sim.timeline.cpu_seconds",
            "cumulative kernel CPU seconds by simulation time")
        self._m_nodes = metrics.series(
            "sim.timeline.bdd_nodes",
            "BDD arena size by simulation time (drops show GC)")

    def _sample_series(self) -> None:
        self._m_events.sample(self.now, self.stats.events_processed)
        self._m_cpu.sample(self.now, self._cpu_accum)
        self._m_nodes.sample(self.now, self.mgr.total_nodes)

    def _publish_metrics(self) -> None:
        metrics = self._metrics
        stats = self.stats
        for name, help_, value in (
            ("sim.time", "final simulation time", self.now),
            ("sim.cpu_seconds", "kernel CPU seconds", self._cpu_accum),
            ("sim.events_processed", "events popped", stats.events_processed),
            ("sim.events_scheduled", "events enqueued",
             stats.events_scheduled),
            ("sim.events_merged", "accumulation merges",
             stats.events_merged),
            ("sim.process_events", "process resume events",
             stats.process_events),
            ("sim.nba_events", "non-blocking update events",
             stats.nba_events),
            ("sim.assign_events", "continuous-assign events",
             stats.assign_events),
            ("sim.instructions", "micro-instructions retired",
             stats.instructions),
            ("sim.symbols_injected", "symbolic BDD variables injected",
             stats.symbols_injected),
        ):
            metrics.gauge(name, help_).set(value)
        mgr = self.mgr
        fp_total = mgr.fastpath_word_ops + mgr.fastpath_symbolic_ops
        for name, help_, value in (
            ("sim.fastpath.word_ops",
             "operators evaluated word-level on concrete operands",
             mgr.fastpath_word_ops),
            ("sim.fastpath.bit_shortcuts",
             "per-bit constant-cofactor short-circuits on mixed operands",
             mgr.fastpath_bit_shortcuts),
            ("sim.fastpath.symbolic_ops",
             "operators that fell back to the generic BDD construction",
             mgr.fastpath_symbolic_ops),
            ("sim.fastpath.concrete_ratio",
             "word_ops / (word_ops + symbolic_ops)",
             mgr.fastpath_word_ops / fp_total if fp_total else 0.0),
        ):
            metrics.gauge(name, help_).set(value)
        if self._ctables is not None:
            hits, misses = self._ctier
            total = hits + misses
            for name, help_, value in (
                ("sim.compile.blocks",
                 "fused blocks built by the compiled tier",
                 self._ctables.blocks_built),
                ("sim.compile.fused_instructions",
                 "micro-instructions covered by fused blocks",
                 self._ctables.fused_instructions),
                ("sim.compile.tier_hits",
                 "compile-time fast-path dispatches taken",
                 hits),
                ("sim.compile.tier_misses",
                 "specialized dispatches that fell back to generic eval",
                 misses),
                ("sim.compile.hit_ratio",
                 "tier_hits / (tier_hits + tier_misses)",
                 hits / total if total else 0.0),
                ("sim.compile.build_seconds",
                 "codegen wall time (cached per Program)",
                 self._ctables.build_seconds),
            ):
                metrics.gauge(name, help_).set(value)

    def profile_document(self) -> dict:
        """The run's hot-spot profile (``repro.obs.profile/1``).

        Requires a profiler in the attached Observability bundle; the
        CLI saves this via ``--profile-out`` and ``symsim report``
        renders it.
        """
        if self._profiler is None:
            raise SimulationError(
                "no profiler attached; run with "
                "SimOptions(obs=Observability(profiler=HotSpotProfiler()))"
            )
        meta = {
            "design": self.design.top,
            "sim_time": self.now,
            "events_processed": self.stats.events_processed,
            "events_merged": self.stats.events_merged,
            "cpu_seconds": self._cpu_accum,
        }
        return self._profiler.to_dict(meta=meta, bdd=self.mgr.cache_stats(),
                                      compile_stats=self.compile_tier_stats())

    # ------------------------------------------------------------------
    # end of time step: NBA already drained by region order; here we run
    # $strobe, $monitor and the paper's end-of-step assertion checks.
    # ------------------------------------------------------------------

    def _end_of_step(self) -> None:
        for args, control in self._strobes:
            self._emit(self._format(args, control))
        self._strobes.clear()
        if self._monitor is not None:
            args, control = self._monitor
            text = self._format(args, control)
            if text != self._monitor_last:
                self._monitor_last = text
                self._emit(text)
        self._check_assertions()

    def _check_assertions(self) -> None:
        for assertion in self._assertions.values():
            if assertion.armed == FALSE:
                continue
            cond = assertion.cond
            if self._cspec and cond.word is not None:
                # Compiled-tier word fast path.  A raw int means the
                # condition is fully known, so both pass/fail verdicts
                # (``truthy``/``_falsy``) collapse to terminals; mirror
                # the skipped generic evaluation's word-op count.
                raw = cond.word(self, cond.width)
                if raw is not None:
                    self.mgr._fp_word += cond.word_cost
                    if raw:
                        continue
                    violating = assertion.armed
                    self._record_violation("$assert", violating,
                                           assertion.where, "")
                    # Same op sequence as the generic arm (armed may be
                    # symbolic; and_/not_ cache traffic must match).
                    assertion.armed = self.mgr.and_(
                        assertion.armed, self.mgr.not_(violating))
                    if self.options.stop_on_violation:
                        self.finished = True
                    continue
            value = cond.eval(self, None, TRUE, cond.width)
            if self.options.check_unknown_assert:
                bad = self.mgr.not_(value.truthy())
            else:
                bad = _falsy(self.mgr, value)
            violating = self.mgr.and_(assertion.armed, bad)
            if violating == FALSE:
                continue
            self._record_violation("$assert", violating, assertion.where, "")
            assertion.armed = self.mgr.and_(assertion.armed,
                                            self.mgr.not_(violating))
            if self.options.stop_on_violation:
                self.finished = True

    # ------------------------------------------------------------------
    # scheduling services (called from instructions)
    # ------------------------------------------------------------------

    def schedule(
        self,
        process: CompiledProcess,
        pc: int,
        delay: int,
        control: int,
        prio: int,
        region: int = REGION_ACTIVE,
    ) -> None:
        """Schedule a process resume; zero-control events are dropped."""
        if control == FALSE:
            return
        self.sched.push(Event(time=self.now + delay, region=region, prio=prio,
                              kind="proc", process=process, pc=pc,
                              control=control))

    def schedule_nba(self, apply: Callable, delay: int = 0) -> None:
        self.sched.push(Event(time=self.now + delay, region=REGION_NBA,
                              prio=0, kind="nba", apply=apply))

    def schedule_assign(self, index: int, delay: int = 0) -> None:
        self.sched.push(Event(time=self.now + delay, region=REGION_ACTIVE,
                              prio=0, kind="assign", index=index))

    def eval_delay(self, delay_cexpr, frame: Frame) -> int:
        value = delay_cexpr.eval(self, None, frame.control, delay_cexpr.width)
        concrete = value.as_signed(False).to_int_or_none()
        if concrete is None:
            raise SymbolicDelayError(
                f"delay expression in {frame.process.name} is symbolic or "
                "unknown; delays must evaluate to concrete values"
            )
        return concrete

    #: After the hang watchdog trips, keep running for up to this many
    #: further events/iterations (capped at the watchdog limit itself)
    #: to sample *which* sites are spinning before raising.
    HANG_SAMPLE_WINDOW = 1000

    def note_activity(self) -> None:
        self._step_activity += 1
        limit = self.options.max_step_activity
        if self._step_activity <= limit:
            return
        if self._hang_sites is None:
            # Watchdog tripped: open a short diagnostic window instead
            # of raising blind — the extra events identify the loop.
            self._hang_sites = {}
            self._hang_support = 0
        elif self._step_activity > limit + min(self.HANG_SAMPLE_WINDOW,
                                               limit):
            self._raise_hang()

    def _note_hang_site(self, label: str, control: int) -> None:
        sites = self._hang_sites
        sites[label] = sites.get(label, 0) + 1
        if control not in (FALSE, TRUE):
            support = len(self.mgr.support(control))
            if support > self._hang_support:
                self._hang_support = support

    def _raise_hang(self) -> None:
        top = sorted(self._hang_sites.items(),
                     key=lambda item: (-item[1], item[0]))[:3]
        hot = ", ".join(f"{label} ({count}x)" for label, count in top)
        raise SimulationHang(
            f"more than {self.options.max_step_activity} events/iterations "
            f"in one time step (time {self.now}) — zero-delay loop? "
            f"hottest sites: {hot or 'n/a'}; "
            f"max active control support: {self._hang_support} vars",
            sim_time=self.now,
            top_sites=top,
            control_support=self._hang_support,
        )

    def note_loop_iteration(self, frame: Frame) -> None:
        self.note_activity()
        if self._hang_sites is not None:
            line = frame.process.instructions[frame.pc].line
            self._note_hang_site(f"{frame.process.name}:{line}",
                                 frame.control)

    # ------------------------------------------------------------------
    # state writes + change notification
    # ------------------------------------------------------------------

    def write_net(self, name: str, value: FourVec, control: int) -> None:
        """Guarded write: ``name := ite(control, value, name)``."""
        if control == FALSE:
            return
        old = self.state.value(name)
        if value.width != old.width:
            value = value.resize(old.width)
        # Store with the declared signedness, whatever the RHS carried.
        value = value.as_signed(old.signed)
        new = value if control == TRUE else value.ite(control, old)
        if new.bits == old.bits:
            return
        self.state.set_value(name, new)
        if self._vcd is not None:
            self._vcd.record(self.now, name, new)
        self._notify(name, old, new)

    def write_net_raw(self, name: str, raw: int) -> None:
        """Compiled-tier write of a fully-known word under TRUE control.

        Equivalent to ``write_net(name, from_int(raw, declared_width),
        TRUE)`` — ``raw`` must already be masked to the declared width.
        The word stays an unmaterialized ``int`` in the store until a
        consumer needs bits; the no-change early-out matches the
        generic path exactly (a fully-known old value equals the new
        vector iff its ``known_int`` equals ``raw``).
        """
        state = self.state
        old = state.peek(name)
        if type(old) is int:
            if old == raw:
                return
        elif old.known_int() == raw:
            return
        state.store_raw(name, raw)
        if self._vcd is not None:
            self._vcd.record(self.now, name, state.value(name))
        self._wake_waiters(name)
        self._schedule_subscribers(name)

    def write_array(
        self, name: str, index: FourVec, value: FourVec, control: int,
        low: int, high: int,
    ) -> None:
        change = self.state.write_array(name, index, value, control, low, high)
        if change != FALSE:
            self._wake_waiters(name)
            self._schedule_subscribers(name)

    # ------------------------------------------------------------------
    # BDD memory management: the kernel is its manager's root provider.
    # GC and reordering renumber node ids, so they only run at *safe
    # points* — between time steps (``_maintain``) or between ``run()``
    # calls — never while raw ids live in event-loop locals.
    # ------------------------------------------------------------------

    def reorder(self, order: Sequence[int]) -> None:
        """Re-pack every live BDD under a new static variable order.

        ``order`` is a permutation of the existing levels.  The paper
        ran with dynamic reordering disabled, but order still dominates
        BDD size; this lets a caller re-pack the space between ``run()``
        phases — e.g. interleaving related variables once their
        relationship is known.  The manager reorders in place and the
        kernel's root-provider hooks translate the value store,
        memories, net drivers, waiters, pending events (including
        delayed non-blocking updates), assertions, invocation logs,
        recorded violations and the finish control.  Simulation then
        continues unchanged (asserted by tests/integration/
        test_reorder.py).

        Raises :class:`SimulationError` when invoked from inside the
        event loop (e.g. from an instruction callback): mid-step, raw
        node ids live in Python locals that no root provider can see,
        and a reorder would silently corrupt them.
        """
        self._require_safe_point("reorder()")
        self.mgr.reorder(order)

    def collect_garbage(self) -> int:
        """Explicitly run a BDD collection (safe between ``run()`` calls)."""
        self._require_safe_point("collect_garbage()")
        return self.mgr.collect()

    def _require_safe_point(self, what: str) -> None:
        if self._busy:
            raise SimulationError(
                f"{what} is only legal at a safe point — between run() "
                "calls or time steps — not from inside the event loop; "
                "raw BDD node ids held by in-flight instructions would "
                "be corrupted"
            )

    def _maintain(self) -> None:
        """End-of-step BDD housekeeping: GC, then dynamic sifting."""
        mgr = self.mgr
        tracer = self._tracer
        if mgr.gc_due():
            started = _time.perf_counter()
            reclaimed = mgr.collect()
            if tracer is not None:
                tracer.complete(
                    "bdd-gc", "bdd", tracer.to_us(started),
                    (_time.perf_counter() - started) * 1e6,
                    lane=LANE_EVENT, sim_time=self.now,
                    reclaimed=reclaimed,
                )
        if mgr.sift_due():
            started = _time.perf_counter()
            saved = mgr.sift()
            if tracer is not None:
                tracer.complete(
                    "bdd-reorder", "bdd", tracer.to_us(started),
                    (_time.perf_counter() - started) * 1e6,
                    lane=LANE_EVENT, sim_time=self.now,
                    nodes_saved=saved,
                )

    def _iter_waiters(self):
        """Each live waiter exactly once (they appear per watched net)."""
        seen = set()
        for waiters in self._waiters.values():
            for waiter in waiters:
                if id(waiter) not in seen:
                    seen.add(id(waiter))
                    yield waiter

    def bdd_roots(self):
        """Root-provider hook: every node id the kernel holds."""
        yield from self.state.bdd_roots()
        yield from self.sched.bdd_roots()
        for drivers in self._drivers.values():
            for vec in drivers.values():
                for a, b in vec.bits:
                    yield a
                    yield b
        for waiter in self._iter_waiters():
            yield waiter.control
            for ts in waiter.triggers:
                for a, b in ts.last.bits:
                    yield a
                    yield b
        for assertion in self._assertions.values():
            yield assertion.armed
        for invocation in self.random_log:
            yield invocation.control
            for a, b in invocation.vector.bits:
                yield a
                yield b
        for violation in self.violations:
            yield violation.condition
        if self._monitor is not None:
            yield self._monitor[1]
        for _, control in self._strobes:
            yield control
        yield self._finish_control

    def bdd_remap(self, lookup, level_map) -> None:
        """Root-provider hook: rewrite all held ids after GC/reorder."""
        self.state.bdd_remap(lookup, level_map)
        self.sched.bdd_remap(lookup, level_map)
        for drivers in self._drivers.values():
            for key, vec in drivers.items():
                drivers[key] = vec.remap(lookup)
        for waiter in self._iter_waiters():
            waiter.control = lookup(waiter.control)
            for ts in waiter.triggers:
                ts.last = ts.last.remap(lookup)
        for assertion in self._assertions.values():
            assertion.armed = lookup(assertion.armed)
        for invocation in self.random_log:
            invocation.control = lookup(invocation.control)
            invocation.vector = invocation.vector.remap(lookup)
            if level_map is not None and invocation.levels:
                invocation.levels = tuple(
                    level_map[level] for level in invocation.levels
                )
        for violation in self.violations:
            violation.condition = lookup(violation.condition)
            if level_map is not None:
                # error-trace witness cubes are keyed by variable level
                violation.trace.witness = {
                    level_map[level]: value
                    for level, value in violation.trace.witness.items()
                }
        if self._monitor is not None:
            self._monitor = (self._monitor[0], lookup(self._monitor[1]))
        self._strobes = [(args, lookup(control))
                         for args, control in self._strobes]
        self._finish_control = lookup(self._finish_control)

    # ------------------------------------------------------------------
    # VCD dumping
    # ------------------------------------------------------------------

    def set_vcd_path(self, path: str) -> None:
        """``$dumpfile`` — remember where ``$dumpvars`` should write."""
        self._vcd_path = path

    def enable_vcd(self) -> None:
        """``$dumpvars`` — start dumping every named (non-shadow) net."""
        if self._vcd is not None:
            return
        from repro.sim.vcd import VcdWriter

        self._vcd_stream = open(self._vcd_path or "dump.vcd", "w",
                                encoding="ascii")
        self._vcd = VcdWriter(self._vcd_stream)
        for name, info in self.design.nets.items():
            if info.array is None and not name.startswith("$shadow"):
                self._vcd.declare(name, info.width)
        self._vcd.write_header(self.design.top)
        self._vcd.dump_all(
            self.now,
            lambda name: self.state.value(name),
        )

    def _close_vcd(self) -> None:
        if self._vcd is not None:
            self._vcd.close()
            self._vcd_stream.close()
            self._vcd = None
            self._vcd_stream = None

    def set_mask(self, name: str, mask: int) -> None:
        """Overwrite a fork-completion mask shadow (no notifications)."""
        self.state.set_value(name, FourVec(self.mgr, [(mask, FALSE)]))

    def accumulate_mask(self, name: str, control: int) -> None:
        """OR a path control into a fork-completion mask shadow."""
        current = self.state.value(name).bits[0][0]
        self.set_mask(name, self.mgr.or_(current, control))

    def _notify(self, name: str, old: FourVec, new: FourVec) -> None:
        # write_net already established ``new.bits != old.bits``; BDDs
        # are canonical, so some rail pair differs as *functions* and
        # the change condition cannot be FALSE — no need to build it.
        self._wake_waiters(name)
        self._schedule_subscribers(name)

    def _schedule_subscribers(self, name: str) -> None:
        for index in self._assign_subs.get(name, ()):
            self.schedule_assign(index)

    # ------------------------------------------------------------------
    # event-control waiters
    # ------------------------------------------------------------------

    def register_waiter(self, frame: Frame, pc: int, triggers) -> None:
        states = [
            _TriggerState(
                trigger=t,
                last=t.cexpr.eval(self, None, TRUE, t.cexpr.width),
            )
            for t in triggers
        ]
        nets = frozenset().union(*[t.cexpr.support for t in triggers]) \
            if triggers else frozenset()
        waiter = _Waiter(kind="event", process=frame.process, pc=pc,
                         control=frame.control, prio=frame.prio,
                         triggers=states)
        for net in nets:
            self._waiters.setdefault(net, []).append(waiter)

    def register_level_waiter(self, frame: Frame, pc: int, cond,
                              control: int) -> None:
        waiter = _Waiter(kind="level", process=frame.process, pc=pc,
                         control=control, prio=frame.prio, cond=cond)
        for net in cond.support:
            self._waiters.setdefault(net, []).append(waiter)

    def _wake_waiters(self, name: str) -> None:
        waiters = self._waiters.get(name)
        if not waiters:
            return
        any_dead = False
        for waiter in list(waiters):
            if waiter.dead:
                any_dead = True
                continue
            self._check_waiter(waiter)
            any_dead = any_dead or waiter.dead
        if any_dead:
            self._waiters[name] = [w for w in waiters if not w.dead]

    def _check_waiter(self, waiter: _Waiter) -> None:
        mgr = self.mgr
        if waiter.kind == "level":
            value = waiter.cond.eval(self, None, TRUE, waiter.cond.width)
            fire = value.truthy()
        else:
            fire = FALSE
            for ts in waiter.triggers:
                new = ts.trigger.cexpr.eval(self, None, TRUE,
                                            ts.trigger.cexpr.width)
                if ts.trigger.edge == "posedge":
                    cond = ops.posedge_condition(ts.last, new)
                elif ts.trigger.edge == "negedge":
                    cond = ops.negedge_condition(ts.last, new)
                else:
                    cond = ts.last.change_condition(new)
                ts.last = new
                fire = mgr.or_(fire, cond)
        wake = mgr.and_(waiter.control, fire)
        if wake == FALSE:
            return
        self.schedule(waiter.process, waiter.pc, 0, wake, waiter.prio)
        waiter.control = mgr.and_(waiter.control, mgr.not_(fire))
        if waiter.control == FALSE:
            waiter.dead = True

    # ------------------------------------------------------------------
    # continuous assigns / net resolution
    # ------------------------------------------------------------------

    def _eval_assign(self, assign: CompiledContAssign) -> None:
        rhs = assign.rhs
        if self._cspec and rhs.word is not None:
            # Compiled-tier word fast path: the rhs promises that when
            # it returns a raw int, generic evaluation would have
            # produced exactly that fully-known vector while bumping
            # the word-op counter ``word_cost`` times — mirror it so
            # metrics stay bit-identical with the interpreter tier.
            raw = rhs.word(self, assign.total_width)
            if raw is not None:
                self.mgr._fp_word += rhs.word_cost
                value = FourVec.from_int(self.mgr, raw, assign.total_width)
                if assign.delay:
                    self.sched.push(Event(
                        time=self.now + assign.delay, region=REGION_ACTIVE,
                        prio=0, kind="drive", index=assign.index,
                        payload=value))
                else:
                    self._commit_drive(assign, value)
                return
        value = rhs.eval(self, None, TRUE, assign.total_width)
        if assign.delay:
            self.sched.push(Event(time=self.now + assign.delay,
                                  region=REGION_ACTIVE, prio=0, kind="drive",
                                  index=assign.index, payload=value))
        else:
            self._commit_drive(assign, value)

    def _commit_drive(self, assign: CompiledContAssign, value: FourVec) -> None:
        offset = assign.total_width
        for target_index, target in enumerate(assign.targets):
            offset -= target.width
            piece = value.slice(offset, target.width)
            info = self.design.net(target.net)
            bits = [BIT_Z] * info.width
            for i in range(target.width):
                position = target.offset + i
                if 0 <= position < info.width:
                    bits[position] = piece.bits[i]
            padded = FourVec(self.mgr, bits)
            drivers = self._drivers.setdefault(target.net, {})
            key = (assign.index, target_index)
            if key in drivers and drivers[key].bits == padded.bits:
                continue
            drivers[key] = padded
            self._resolve_net(target.net)

    def _resolve_net(self, name: str) -> None:
        info = self.design.net(name)
        resolve = {
            "wand": ops.resolve_wand,
            "wor": ops.resolve_wor,
        }.get(info.kind, ops.resolve_wire)
        resolved: Optional[FourVec] = None
        for driver in self._drivers.get(name, {}).values():
            resolved = driver if resolved is None else resolve(
                resolved, driver
            )
        if resolved is None:
            resolved = FourVec.all_z(self.mgr, info.width)
        if info.kind in ("tri0", "tri1"):
            resolved = ops.pull_z(resolved, pull_to_one=info.kind == "tri1")
        self.write_net(name, resolved, TRUE)

    # ------------------------------------------------------------------
    # $random — symbolic variable injection (Sections 3.1 and 5)
    # ------------------------------------------------------------------

    def new_symbol(self, callsite, width: int, four_valued: bool,
                   control: int) -> FourVec:
        seq = self._callsite_seq.get(callsite.index, 0)
        self._callsite_seq[callsite.index] = seq + 1
        if self._rng is not None:
            return FourVec.from_int(self.mgr, self._rng.getrandbits(width),
                                    width)
        if self._concrete is not None:
            values = self._concrete.get(callsite.index)
            if not values:
                raise ResimulationError(
                    f"resimulation executed {callsite.where} more often than "
                    "the error trace recorded"
                )
            bits = values.popleft()
            return FourVec.from_verilog_bits(self.mgr, bits).resize(width)
        name = f"{callsite.kind[1:]}{callsite.index}.{seq}@t{self.now}"
        before = self.mgr.var_count
        vector = FourVec.fresh_symbol(self.mgr, width, name, four_valued)
        self.random_log.append(
            RandomInvocation(callsite_index=callsite.index, seq=seq,
                             time=self.now, vector=vector, control=control,
                             levels=tuple(range(before, self.mgr.var_count)))
        )
        self.stats.symbols_injected += width * (2 if four_valued else 1)
        return vector

    # ------------------------------------------------------------------
    # violations
    # ------------------------------------------------------------------

    def report_error(self, control: int, where: str, message: str) -> None:
        if control == FALSE:
            return
        self._record_violation("$error", control, where, message)
        if self.options.stop_on_violation:
            self.finish(stopped=False)

    def register_assertion(self, assertion_id: str, cond: CExpr, control: int,
                           where: str) -> None:
        existing = self._assertions.get(assertion_id)
        if existing is None:
            self._assertions[assertion_id] = _Assertion(cond=cond,
                                                        armed=control,
                                                        where=where)
        else:
            existing.armed = self.mgr.or_(existing.armed, control)

    def _record_violation(self, kind: str, condition: int, where: str,
                          message: str) -> None:
        where_map = {c.index: c.where for c in self.program.callsites}
        trace = build_error_trace(self.mgr, condition, self.random_log,
                                  where_map)
        self.violations.append(
            Violation(kind=kind, where=where, message=message, time=self.now,
                      condition=condition, trace=trace)
        )

    # ------------------------------------------------------------------
    # output tasks
    # ------------------------------------------------------------------

    def display(self, args, control: int, strobe: bool = False,
                newline: bool = True, env=None) -> None:
        if control == FALSE:
            return
        if strobe:
            self._strobes.append((args, control))
            return
        text = self._format(args, control, env)
        self._emit(text if newline else text, newline)

    def set_monitor(self, args, control: int,
                    key: Optional[str] = None) -> None:
        self._monitor = (args, control)
        self._monitor_key = key
        self._monitor_last = None

    def _format(self, args, control: int, env=None) -> str:
        def evaluate(cexpr):
            return cexpr.eval(self, env, control, cexpr.width)

        return systasks.format_display(args, evaluate,
                                       scope_name=self.design.top)

    def _emit(self, text: str, newline: bool = True) -> None:
        if self._line_open and self.output:
            self.output[-1] += text
        else:
            self.output.append(text)
        self._line_open = not newline
        if self.options.echo_output:
            print(text, end="\n" if newline else "", flush=True)

    def finish(self, stopped: bool = False, control: int = TRUE) -> None:
        """Handle ``$finish``/``$stop`` under a path condition.

        Simulation as a whole ends only once *every* execution path has
        finished (the finish controls OR up to TRUE); until then only
        the current path dies, so slower symbolic paths keep running to
        their own checks — without this, the first path to reach
        ``$finish`` would silently discard the coverage of all others.
        """
        self._finish_control = self.mgr.or_(self._finish_control, control)
        self.stopped = self.stopped or stopped
        if self._finish_control == TRUE:
            self.finished = True
            raise _FinishSignal()
        raise _PathFinish()


def _falsy(mgr: BddManager, value: FourVec) -> int:
    """BDD: the value is *known* false (every bit a known 0)."""
    result = TRUE
    for a, b in value.bits:
        result = mgr.and_(result, mgr.nor(a, b))
    return result
