"""Simulation statistics — the raw data behind Fig. 11 and Table 1.

The kernel counts processed events (every queue pop: process resumes,
non-blocking updates, continuous-assign evaluations) and, when
``SimOptions.trace_stats`` is on, snapshots a cumulative
(sim-time, events, CPU-seconds) series on every simulation-time
advance.  ``benchmarks/bench_fig11.py`` prints these series for runs
with and without event accumulation, reproducing both panels of
Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class TimePoint:
    """Cumulative counters sampled when simulation time advances."""

    sim_time: int
    events: int
    cpu_seconds: float


@dataclass
class SimStats:
    """Aggregate counters for one simulation run."""

    events_processed: int = 0
    events_scheduled: int = 0
    events_merged: int = 0
    process_events: int = 0
    nba_events: int = 0
    assign_events: int = 0
    instructions: int = 0
    symbols_injected: int = 0
    timeline: List[TimePoint] = field(default_factory=list)
    #: BDD manager cache/arena counters — populated by the kernel at
    #: the end of every ``run()`` from ``BddManager.cache_stats()``
    #: (the paper's memory story: node growth and cache behaviour).
    bdd: Dict[str, float] = field(default_factory=dict)

    def snapshot(self, sim_time: int, cpu_seconds: float) -> None:
        self.timeline.append(
            TimePoint(sim_time=sim_time, events=self.events_processed,
                      cpu_seconds=cpu_seconds)
        )

    def summary(self) -> str:
        text = (
            f"events processed={self.events_processed} "
            f"(proc={self.process_events}, nba={self.nba_events}, "
            f"assign={self.assign_events}), scheduled={self.events_scheduled}, "
            f"merged={self.events_merged}, "
            f"instructions={self.instructions}, "
            f"symbols={self.symbols_injected}"
        )
        if self.bdd:
            ite_total = self.bdd["ite_hits"] + self.bdd["ite_misses"]
            not_total = self.bdd["not_hits"] + self.bdd["not_misses"]

            def pct(hits: float, total: float) -> str:
                return f"{100.0 * hits / total:.1f}%" if total else "n/a"

            text += (
                f"; bdd: nodes={int(self.bdd['nodes'])} "
                f"(peak {int(self.bdd['peak_nodes'])}), "
                f"vars={int(self.bdd['var_count'])}, "
                f"ite-cache {pct(self.bdd['ite_hits'], ite_total)} hit, "
                f"not-cache {pct(self.bdd['not_hits'], not_total)} hit"
            )
        return text
