"""Concrete resimulation of error traces (paper Section 5).

``resimulate`` replays a design conventionally: a fresh kernel is
built over the *same compiled program*, but every ``$random`` call
site pops the explicit values the error trace recorded for it instead
of creating symbolic variables.  Invocations whose control evaluated
to 0 under the witness were removed from the lists when the trace was
built, so the pop order matches the concrete execution order — the
paper's key observation that executed/skipped entries interleave and
must be filtered by control value first (Fig. 10).

A successful resimulation re-triggers the violation; if it does not,
:class:`ResimulationError` is raised — that would mean the symbolic
and concrete semantics disagree, which is a simulator bug by
construction.
"""

from __future__ import annotations

from typing import Optional

from repro.compile.compiler import Program
from repro.errors import ResimulationError
from repro.sim.kernel import Kernel, SimOptions, SimResult
from repro.sim.trace import ErrorTrace, Violation


def resimulate(
    program: Program,
    trace: ErrorTrace,
    options: Optional[SimOptions] = None,
    until: Optional[int] = None,
    expect_violation: bool = True,
) -> SimResult:
    """Replay ``program`` concretely with the values of ``trace``.

    Returns the concrete :class:`SimResult`.  With
    ``expect_violation`` (the default) the run must reproduce at least
    one ``$error``/``$assert`` hit, otherwise
    :class:`ResimulationError` is raised.
    """
    opts = options or SimOptions()
    kernel = Kernel(program, options=opts,
                    concrete_values=trace.callsite_values())
    result = kernel.run(until=until)
    if expect_violation and not result.violations:
        raise ResimulationError(
            "concrete resimulation did not reproduce the violation "
            f"(ran to time {result.time})"
        )
    return result


def resimulate_violation(
    program: Program,
    violation: Violation,
    options: Optional[SimOptions] = None,
    until: Optional[int] = None,
) -> SimResult:
    """Convenience wrapper: resimulate a :class:`Violation`'s trace."""
    return resimulate(program, violation.trace, options=options, until=until)
