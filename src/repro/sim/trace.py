"""Error traces and their extraction (paper Section 5).

Symbolic simulation reports a violation as a BDD over the variables
injected by ``$random``.  To let the user *resimulate* with explicit
values, each call site keeps an ordered invocation list of
(vector, control, time) records.  Given a satisfying witness of the
violation condition:

* an invocation was actually *executed* on the chosen trace iff its
  ``control`` evaluates to 1 under the witness (entries evaluating to 0
  are dropped — the paper stresses that executed/skipped entries can
  interleave arbitrarily, Fig. 10);
* the explicit value each executed call must return is the invocation
  vector evaluated under the witness (don't-care bits default to 0).

The resulting :class:`ErrorTrace` feeds
:func:`repro.sim.resim.resimulate`, which replays the design with a
conventional (concrete) run and checks the assertion fires again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bdd import BddManager
from repro.fourval import FourVec


@dataclass
class RandomInvocation:
    """One dynamic execution of a ``$random``/``$randomxz`` statement.

    ``levels`` records the arena levels of the fresh BDD variables this
    invocation injected (empty for concrete/x-z bits).  The resource
    guard uses it to map a blow-up-causing variable level back to the
    ``$random`` call that introduced it when picking a concretization
    victim; levels are remapped alongside the vectors when the manager
    reorders.
    """

    callsite_index: int
    seq: int
    time: int
    vector: FourVec
    control: int  # BDD
    levels: tuple = ()


@dataclass
class TraceEntry:
    """One invocation as seen by a specific error trace."""

    callsite_index: int
    where: str
    seq: int
    time: int
    executed: bool
    value: Optional[str]  # MSB-first 0/1/x/z string when executed


@dataclass
class ErrorTrace:
    """A concrete witness for one violation, ready for resimulation."""

    witness: Dict[int, bool]
    entries: List[TraceEntry] = field(default_factory=list)

    def values_for(self, callsite_index: int) -> List[str]:
        """Ordered concrete return values for one call site."""
        return [
            entry.value
            for entry in self.entries
            if entry.callsite_index == callsite_index and entry.executed
        ]

    def callsite_values(self) -> Dict[int, List[str]]:
        """All call sites' ordered return values (resimulation input)."""
        values: Dict[int, List[str]] = {}
        for entry in self.entries:
            if entry.executed:
                values.setdefault(entry.callsite_index, []).append(entry.value)
        return values

    def describe(self) -> str:
        """Human-readable rendering of the trace."""
        lines = []
        for entry in self.entries:
            status = (
                f"= {entry.value}" if entry.executed else "(not executed)"
            )
            lines.append(
                f"  t={entry.time:<6} {entry.where} "
                f"call #{entry.seq} {status}"
            )
        return "\n".join(lines) if lines else "  (no $random invocations)"


@dataclass
class Violation:
    """One ``$error`` hit or ``$assert`` failure."""

    kind: str  # '$error' | '$assert'
    where: str
    message: str
    time: int
    condition: int  # BDD of assignments that trigger the violation
    trace: ErrorTrace

    def __str__(self) -> str:
        label = self.message or self.kind
        return (
            f"{self.kind} at {self.where}, time {self.time}: {label}\n"
            f"{self.trace.describe()}"
        )


def build_error_trace(
    mgr: BddManager,
    condition: int,
    invocations: List[RandomInvocation],
    callsite_where: Dict[int, str],
) -> ErrorTrace:
    """Concretize ``condition`` into an :class:`ErrorTrace`.

    ``sat_one`` yields a partial cube; unmentioned variables are
    don't-cares and default to 0 — exactly the completion the paper's
    resimulation step performs.
    """
    witness = mgr.sat_one(condition)
    if witness is None:
        raise ValueError("violation condition is unsatisfiable")
    trace = ErrorTrace(witness=dict(witness))
    for invocation in invocations:
        executed = mgr.eval(invocation.control, witness)
        value = None
        if executed:
            value = _concretize(mgr, invocation.vector, witness)
        trace.entries.append(
            TraceEntry(
                callsite_index=invocation.callsite_index,
                where=callsite_where.get(invocation.callsite_index, "?"),
                seq=invocation.seq,
                time=invocation.time,
                executed=executed,
                value=value,
            )
        )
    return trace


def _concretize(mgr: BddManager, vector: FourVec, witness: Dict[int, bool]) -> str:
    """Evaluate a symbolic vector to an MSB-first 0/1/x/z string."""
    chars = []
    for a, b in reversed(vector.bits):
        b_val = mgr.eval(b, witness)
        a_val = mgr.eval(a, witness)
        if b_val:
            chars.append("x" if a_val else "z")
        else:
            chars.append("1" if a_val else "0")
    return "".join(chars)
